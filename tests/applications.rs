//! Integration tests for the §5.3 applications over a shared simulation.

use probase::apps::{
    bow_vector, concept_vector, harvest_attributes, infer_header, kmeans, pages_from_corpus,
    probase_seeds, purity, rewrite_query, Association, Column, FeatureSpace, MiniIndex,
};
use probase::corpus::attributes::{generate_attribute_corpus, AttributeCorpusConfig};
use probase::corpus::{CorpusConfig, WorldConfig, WorldIndex};
use probase::eval::workloads::{table_columns, tweets};
use probase::{ProbaseConfig, Simulation};
use std::sync::OnceLock;

fn sim() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| {
        Simulation::run(
            &WorldConfig::small(201),
            &CorpusConfig {
                seed: 201,
                sentences: 10_000,
                ..CorpusConfig::default()
            },
            &ProbaseConfig::paper(),
        )
    })
}

#[test]
fn semantic_rewrites_use_real_instances() {
    let s = sim();
    let model = &s.probase.model;
    let rewrites = rewrite_query(
        model,
        &Association::default(),
        "famous actors in big companies",
        3,
        6,
    );
    assert!(rewrites.len() > 1, "expected concrete rewrites");
    // The top rewrite replaces both concepts with known instances.
    assert_eq!(rewrites[0].substitutions.len(), 2);
    for sub in &rewrites[0].substitutions {
        assert!(model.knows(sub), "substitution {sub} unknown to model");
    }
}

#[test]
fn semantic_search_finds_pages_keyword_misses() {
    let s = sim();
    let model = &s.probase.model;
    let docs = pages_from_corpus(&s.corpus);
    let index = MiniIndex::build(docs);
    // A concept-only query: keyword search finds nothing (concept words
    // appear in text only rarely as plain words), semantic search finds
    // pages about typical instances.
    let query = "best actors";
    let semantic =
        probase::apps::semantic_search(model, &Association::default(), &index, query, 10);
    assert!(
        !semantic.is_empty(),
        "semantic search should find instance pages"
    );
}

#[test]
fn table_headers_inferred_correctly() {
    let s = sim();
    let model = &s.probase.model;
    let gold = table_columns(&s.world, 40, 5, 0.0, 11);
    let mut correct = 0;
    let mut answered = 0;
    for g in &gold {
        let col = Column {
            cells: g.cells.clone(),
        };
        if let Some(h) = infer_header(model, &col, 4) {
            answered += 1;
            // Accept the gold label or a descendant/ancestor label match.
            if h.concept == g.concept {
                correct += 1;
            }
        }
    }
    assert!(answered >= 20, "answered only {answered}");
    let precision = correct as f64 / answered as f64;
    assert!(precision >= 0.5, "header precision {precision:.2}");
}

#[test]
fn concept_clustering_beats_bag_of_words() {
    let s = sim();
    let model = &s.probase.model;
    let idx = WorldIndex::new(&s.world);
    let topics: Vec<_> = ["country", "dish", "film", "animal"]
        .iter()
        .filter_map(|l| idx.senses(l).first().copied())
        .collect();
    assert!(topics.len() >= 3);
    let tws = tweets(&s.world, &topics, 40, 7);
    let gold: Vec<usize> = tws.iter().map(|t| t.topic).collect();

    let mut cs = FeatureSpace::default();
    let cv: Vec<_> = tws
        .iter()
        .map(|t| concept_vector(model, &mut cs, &t.text, 3))
        .collect();
    let concept_purity = purity(&kmeans(&cv, topics.len(), 25, 3), &gold);

    let mut ws = FeatureSpace::default();
    let wv: Vec<_> = tws.iter().map(|t| bow_vector(&mut ws, &t.text)).collect();
    let bow_purity = purity(&kmeans(&wv, topics.len(), 25, 3), &gold);

    assert!(
        concept_purity > bow_purity,
        "concept {concept_purity:.3} must beat bow {bow_purity:.3}"
    );
}

#[test]
fn attribute_seeds_from_typicality_work() {
    let s = sim();
    let model = &s.probase.model;
    let idx = WorldIndex::new(&s.world);
    let country = idx.senses("country")[0];
    let mentions = generate_attribute_corpus(
        &s.world,
        &[country],
        &AttributeCorpusConfig {
            mentions_per_attribute: 10,
            ..Default::default()
        },
    );
    let seeds = probase_seeds(model, "country", 5);
    assert!(!seeds.is_empty());
    let ranked = harvest_attributes(&mentions, &seeds);
    assert!(!ranked.is_empty(), "no attributes harvested");
    // Real attributes should dominate the top ranks.
    let truth = &s.world.concept(country).attributes;
    let top_valid = ranked
        .iter()
        .take(3)
        .filter(|r| truth.contains(&r.attribute))
        .count();
    assert!(
        top_valid >= 2,
        "top-3 {:?} vs truth {truth:?}",
        &ranked[..3.min(ranked.len())]
    );
}
