//! Integration tests: snapshot persistence of a built taxonomy, the Urns
//! pipeline variant, and the table-enrichment feedback loop.

use probase::apps::{apply_enrichments, understand_tables, Column};
use probase::corpus::{CorpusConfig, WorldConfig};
use probase::eval::workloads::table_columns;
use probase::prob::ProbaseModel;
use probase::store::snapshot;
use probase::{PlausibilityKind, ProbaseConfig, Simulation};

fn sim(seed: u64) -> Simulation {
    Simulation::run(
        &WorldConfig::small(seed),
        &CorpusConfig {
            seed,
            sentences: 5_000,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    )
}

#[test]
fn snapshot_roundtrip_preserves_model_answers() {
    let s = sim(301);
    let graph = s.probase.model.graph();
    let bytes = snapshot::to_bytes(&graph.materialize()).expect("snapshot encodes");
    assert!(!bytes.is_empty());

    let mut restored = snapshot::from_bytes(bytes).expect("snapshot decodes");
    restored.rebuild_indexes();
    assert_eq!(restored.node_count(), graph.node_count());
    assert_eq!(restored.edge_count(), graph.edge_count());

    // Typicality answers must be identical after a round-trip.
    let restored_model = ProbaseModel::new(restored);
    for concept in ["country", "company", "animal"] {
        let a = s.probase.model.typical_instances(concept, 5);
        let b = restored_model.typical_instances(concept, 5);
        assert_eq!(a.len(), b.len(), "{concept}");
        for ((ia, ta), (ib, tb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib, "{concept}");
            assert!((ta - tb).abs() < 1e-12);
        }
    }
}

#[test]
fn urns_pipeline_variant_works_end_to_end() {
    let cfg = ProbaseConfig {
        plausibility_kind: PlausibilityKind::Urns,
        ..ProbaseConfig::paper()
    };
    let s = Simulation::run(
        &WorldConfig::small(302),
        &CorpusConfig {
            seed: 302,
            sentences: 5_000,
            ..CorpusConfig::default()
        },
        &cfg,
    );
    let g = s.probase.model.graph();
    // Urns annotates every edge from its count; higher-count edges must
    // not be less plausible.
    let mut by_count: Vec<(u32, f64)> = g
        .edges()
        .map(|(_, _, e)| (e.count, e.plausibility))
        .collect();
    assert!(by_count.iter().any(|(_, p)| *p < 1.0), "urns must annotate");
    by_count.sort_by_key(|(c, _)| *c);
    for w in by_count.windows(2) {
        if w[0].0 < w[1].0 {
            assert!(
                w[0].1 <= w[1].1 + 1e-9,
                "urns plausibility must be monotone in count"
            );
        }
    }
    // The model still answers queries.
    assert!(!s.probase.model.typical_instances("country", 3).is_empty());
}

#[test]
fn enrichment_loop_grows_the_model() {
    let s = sim(303);
    let model = &s.probase.model;
    // Columns with unknown cells drawn from the world's tail.
    let gold = table_columns(&s.world, 50, 6, 0.25, 5);
    let columns: Vec<Column> = gold
        .iter()
        .map(|g| Column {
            cells: g.cells.clone(),
        })
        .collect();
    let (_, enrichments) = understand_tables(model, &columns, 0.05);
    assert!(!enrichments.is_empty(), "expected enrichment proposals");

    let mut graph = model.graph().materialize();
    let before = graph.edge_count();
    let added = apply_enrichments(&mut graph, &enrichments, 0.75);
    assert!(added > 0);
    assert_eq!(graph.edge_count(), before + added);

    // Rebuilt model now knows at least one previously unknown cell.
    let rebuilt = ProbaseModel::new(graph);
    let newly_known = enrichments
        .iter()
        .flat_map(|e| e.new_instances.iter())
        .filter(|i| rebuilt.knows(i))
        .count();
    assert!(newly_known >= added.min(1));
}
