//! The load-bearing claim of the open-loop harness: latency is measured
//! from each request's *intended* send time, so a server stall surfaces
//! as the queueing delay it inflicts on every request scheduled behind
//! it. A closed-loop generator — which only sends the next request after
//! the previous one returns — records the same stall as a single slow
//! sample and buries it (coordinated omission).
//!
//! The test boots a stub TCP server that answers the wire protocol
//! instantly except for one injected 400ms stall, then drives it with
//! both modes at the same seed and compares p99s.

use probase::loadgen::{engine, run, HarnessConfig, Mode, Profile, SeededRng, Vocab};
use probase_serve::json;
use probase_serve::proto::ok_envelope;
use probase_serve::Json;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A stub server speaking the newline-delimited envelope protocol: it
/// echoes an empty ok-envelope for every request, instantly — except
/// the `stall_at`-th request overall, which sleeps `stall` first.
/// Answers from a fixed fake store version; the loadgen only reads the
/// envelope frame, never the payload.
fn stub_server(stall_at: usize, stall: Duration) -> (String, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub server");
    let addr = listener.local_addr().expect("local addr").to_string();
    let served = Arc::new(AtomicUsize::new(0));
    let served_out = Arc::clone(&served);
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(conn) = conn else { break };
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                let mut reader = BufReader::new(conn.try_clone().expect("clone stream"));
                let mut writer = conn;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    let id = json::parse(&line)
                        .ok()
                        .and_then(|req| req.get("id").and_then(Json::as_u64))
                        .unwrap_or(0);
                    let n = served.fetch_add(1, Ordering::SeqCst) + 1;
                    if n == stall_at {
                        std::thread::sleep(stall);
                    }
                    let reply = ok_envelope(id, 1, Json::obj(vec![])).to_string();
                    if writer.write_all(format!("{reply}\n").as_bytes()).is_err() {
                        break;
                    }
                }
            });
        }
    });
    // Wait until the listener actually accepts.
    for _ in 0..50 {
        if TcpStream::connect(&addr).is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    (addr, served_out)
}

fn vocab() -> Vocab {
    Vocab {
        concepts: (0..4).map(|i| format!("concept-{i}")).collect(),
        instances: (0..4).map(|i| format!("instance-{i}")).collect(),
    }
}

fn p99_ms(stats: &probase::loadgen::RunStats) -> f64 {
    stats
        .registry
        .histogram("loadgen.overall.latency_us")
        .quantile(0.99) as f64
        / 1000.0
}

/// The acceptance-criteria test: with an injected server stall, the
/// open-loop p99 reflects the backlog the stall created, while the
/// closed-loop p99 — same server behavior, same stall — stays near the
/// per-request service time. If someone "simplifies" the engine to
/// measure from actual send time, this fails.
#[test]
fn open_loop_surfaces_a_stall_that_closed_loop_hides() {
    let stall = Duration::from_millis(400);

    // Open-loop: 400 req/s for 1.2s, one worker. The ~200th request
    // (≈0.5s in) stalls 400ms; every arrival scheduled during the stall
    // queues behind it, and their latency is charged from the schedule.
    let (addr, _) = stub_server(200, stall);
    let open_cfg = HarnessConfig {
        addr,
        mode: Mode::Open { rate: 400.0 },
        profile: Profile::Mixed,
        threads: 1,
        duration: Duration::from_millis(1200),
        seed: 7,
        ..HarnessConfig::default()
    };
    let open = run(&open_cfg, &vocab()).expect("open-loop run");
    assert!(
        open.completed >= 300,
        "stub should answer most of ~480 scheduled: {open:?}"
    );
    let open_p99 = p99_ms(&open);

    // Closed-loop against an identical fresh server: the stall hits the
    // ~200th request again, but the worker simply waits it out and the
    // thousands of fast requests drown the one slow sample.
    let (addr, _) = stub_server(200, stall);
    let closed_cfg = HarnessConfig {
        addr,
        mode: Mode::Closed,
        profile: Profile::Mixed,
        threads: 1,
        duration: Duration::from_millis(1200),
        seed: 7,
        ..HarnessConfig::default()
    };
    let closed = run(&closed_cfg, &vocab()).expect("closed-loop run");
    assert!(
        closed.completed >= 1000,
        "closed loop against an instant stub should rip: {closed:?}"
    );
    let closed_p99 = p99_ms(&closed);

    assert!(
        open_p99 >= 60.0,
        "open-loop p99 must carry the stall backlog, got {open_p99:.2}ms \
         (closed {closed_p99:.2}ms)"
    );
    assert!(
        closed_p99 < 50.0,
        "closed-loop p99 should hide the stall, got {closed_p99:.2}ms"
    );
    assert!(
        open_p99 >= 4.0 * closed_p99,
        "open-loop p99 ({open_p99:.2}ms) should dwarf closed-loop \
         ({closed_p99:.2}ms)"
    );
}

/// Same seed ⇒ same schedule and request stream ⇒ identical request
/// counts against a deterministic server.
#[test]
fn open_loop_run_is_seed_deterministic() {
    let (addr, served) = stub_server(usize::MAX, Duration::ZERO);
    let cfg = HarnessConfig {
        addr,
        mode: Mode::Open { rate: 300.0 },
        profile: Profile::ReadHeavy,
        threads: 2,
        duration: Duration::from_millis(500),
        seed: 1234,
        ..HarnessConfig::default()
    };
    let one = run(&cfg, &vocab()).expect("first run");
    let after_one = served.load(Ordering::SeqCst);
    let two = run(&cfg, &vocab()).expect("second run");
    let after_two = served.load(Ordering::SeqCst);
    assert_eq!(one.scheduled, two.scheduled, "same seed, same schedule");
    assert_eq!(one.completed, two.completed);
    assert_eq!(
        after_one, one.completed as usize,
        "server saw every completed request"
    );
    assert_eq!(after_two - after_one, two.completed as usize);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Poisson arrivals: over a long horizon the mean inter-arrival gap
    /// must converge to `1/rate` (±10%), for arbitrary rates and seeds.
    /// This is the property the offered-rate claim in BENCH_SERVE.json
    /// rests on.
    #[test]
    fn poisson_mean_inter_arrival_matches_rate(
        rate in 50.0f64..2000.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SeededRng::new(seed);
        let horizon = Duration::from_secs(20);
        let offsets = engine::poisson_offsets(rate, horizon, &mut rng);
        // Expected arrivals: rate × 20; Poisson sd is sqrt of that.
        let expected = rate * 20.0;
        let sd = expected.sqrt();
        prop_assert!(
            (offsets.len() as f64 - expected).abs() < 6.0 * sd,
            "arrivals {} vs expected {expected}", offsets.len()
        );
        // Mean gap over ≥1000 samples: within 20% of 1/rate (the
        // standard error of the mean is under 1/(rate·√1000), so this
        // is a ≥6-sigma bound — tight enough to catch a wrong rate
        // constant, loose enough to never flake).
        let gaps: Vec<f64> = offsets
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        prop_assert!(
            (mean - 1.0 / rate).abs() < 0.2 / rate,
            "mean gap {mean} vs 1/rate {}", 1.0 / rate
        );
    }

    /// Offsets are sorted and within the horizon for any rate/seed.
    #[test]
    fn poisson_offsets_sorted_and_bounded(
        rate in 1.0f64..500.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = SeededRng::new(seed);
        let horizon = Duration::from_secs(2);
        let offsets = engine::poisson_offsets(rate, horizon, &mut rng);
        prop_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(offsets.iter().all(|o| *o < horizon));
    }
}
