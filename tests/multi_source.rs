//! Integration test: heterogeneous knowledge-source integration (paper
//! §4.1 — "plausibility is useful for detecting errors and integrating
//! heterogeneous knowledge sources").
//!
//! Two corpora over the same world — a clean encyclopedia profile and a
//! noisy forum profile — are extracted separately, their Γs merged with
//! `Knowledge::absorb`, and the union checked to cover more truth than
//! either source alone without giving up the separately-extracted counts.

use probase::corpus::{CorpusConfig, CorpusGenerator, WorldConfig};
use probase::eval::{Judge, Precision};
use probase::extract::{extract, knowledge_from_bytes, knowledge_to_bytes, ExtractorConfig};

#[test]
fn merging_sources_grows_coverage_and_keeps_counts() {
    let world = probase::corpus::generate(&WorldConfig::small(401));
    let enc = CorpusGenerator::new(&world, CorpusConfig::encyclopedia(401, 4_000)).generate_all();
    let forum = CorpusGenerator::new(&world, CorpusConfig::forum(402, 4_000)).generate_all();

    let out_enc = extract(&enc, &world.lexicon, &ExtractorConfig::paper());
    let out_forum = extract(&forum, &world.lexicon, &ExtractorConfig::paper());

    let mut merged = out_enc.knowledge.clone();
    merged.absorb(&out_forum.knowledge);

    // Mass adds exactly.
    assert_eq!(
        merged.total(),
        out_enc.knowledge.total() + out_forum.knowledge.total()
    );
    // Coverage grows (deduplicated pairs, so <= sum).
    assert!(merged.pair_count() >= out_enc.knowledge.pair_count());
    assert!(merged.pair_count() >= out_forum.knowledge.pair_count());
    assert!(
        merged.pair_count() <= out_enc.knowledge.pair_count() + out_forum.knowledge.pair_count()
    );

    // Per-pair counts add: spot-check a head pair.
    let check = |g: &probase::extract::Knowledge, x: &str, y: &str| -> u32 {
        match (g.lookup(x), g.lookup(y)) {
            (Some(xs), Some(ys)) => g.count(xs, ys),
            _ => 0,
        }
    };
    let (e, f, m) = (
        check(&out_enc.knowledge, "country", "China"),
        check(&out_forum.knowledge, "country", "China"),
        check(&merged, "country", "China"),
    );
    assert_eq!(m, e + f, "counts must add: {e} + {f} != {m}");

    // The merged store's precision sits between the clean and noisy
    // sources (or above the noisy one, at worst).
    let judge = Judge::new(&world);
    let precision_of = |g: &probase::extract::Knowledge| -> f64 {
        let mut p = Precision::default();
        for (x, y, _) in g.pairs() {
            p.add(judge.pair_valid(g.resolve(x), g.resolve(y)));
        }
        p.ratio()
    };
    let (pe, pf, pm) = (
        precision_of(&out_enc.knowledge),
        precision_of(&out_forum.knowledge),
        precision_of(&merged),
    );
    assert!(pe >= pf, "encyclopedia {pe:.3} must beat forum {pf:.3}");
    assert!(
        pm >= pf - 0.02 && pm <= pe + 0.02,
        "merged {pm:.3} outside [{pf:.3}, {pe:.3}]"
    );

    // And the merged knowledge survives a persistence round-trip.
    let restored =
        knowledge_from_bytes(knowledge_to_bytes(&merged).expect("encodes")).expect("roundtrip");
    assert_eq!(restored.total(), merged.total());
    assert_eq!(restored.pair_count(), merged.pair_count());
    assert_eq!(check(&restored, "country", "China"), m);
}
