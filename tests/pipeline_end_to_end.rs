//! Cross-crate integration tests: the full pipeline against ground truth.

use probase::corpus::{CorpusConfig, WorldConfig};
use probase::eval::Judge;
use probase::{ProbaseConfig, Simulation};

fn sim(seed: u64, sentences: usize) -> Simulation {
    Simulation::run(
        &WorldConfig::small(seed),
        &CorpusConfig {
            seed,
            sentences,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    )
}

#[test]
fn extraction_precision_is_high() {
    let s = sim(101, 6_000);
    let judge = Judge::new(&s.world);
    let g = &s.probase.extraction.knowledge;
    let mut p = probase::eval::Precision::default();
    for (x, y, _) in g.pairs() {
        p.add(judge.pair_valid(g.resolve(x), g.resolve(y)));
    }
    assert!(p.total > 500, "too few pairs extracted: {}", p.total);
    assert!(
        p.ratio() > 0.85,
        "precision {:.3} below paper-like range",
        p.ratio()
    );
}

#[test]
fn second_iteration_gains_most() {
    // Figure 10's shape: the biggest jump is in round 2, because round 1
    // leaves ambiguous sentences unresolved.
    let s = sim(102, 6_000);
    let iters = &s.probase.extraction.iterations;
    assert!(iters.len() >= 3);
    assert!(
        iters[1].new_occurrences > iters[0].new_occurrences,
        "round2 {} vs round1 {}",
        iters[1].new_occurrences,
        iters[0].new_occurrences
    );
}

#[test]
fn taxonomy_separates_plant_senses() {
    let s = sim(103, 8_000);
    let g = s.probase.model.graph();
    let senses: Vec<_> = g
        .senses_of("plant")
        .into_iter()
        .filter(|&n| !g.is_instance(n) && g.child_count(n) >= 2)
        .collect();
    assert!(
        senses.len() >= 2,
        "expected two populated plant senses, got {}",
        senses.len()
    );
    // No sense mixes flora with equipment.
    for s_node in senses {
        let kids: Vec<&str> = g.children(s_node).map(|(c, _)| g.label(c)).collect();
        let flora = kids
            .iter()
            .any(|k| ["tree", "grass", "herb", "flower"].contains(k));
        let equipment = kids
            .iter()
            .any(|k| ["steam turbine", "pump", "boiler", "generator"].contains(k));
        assert!(!(flora && equipment), "mixed senses: {kids:?}");
    }
}

#[test]
fn typicality_ranks_curated_heads_first() {
    let s = sim(104, 8_000);
    let m = &s.probase.model;
    // Curated order is the world's typicality order; the corpus samples by
    // it, so the model's top instances must be drawn from the curated head.
    let top: Vec<String> = m
        .typical_instances("country", 5)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    assert!(!top.is_empty());
    let head = [
        "China", "India", "Brazil", "Russia", "USA", "Germany", "Japan", "France",
    ];
    let overlap = top.iter().filter(|t| head.contains(&t.as_str())).count();
    assert!(
        overlap >= 2,
        "top countries {top:?} should overlap curated head"
    );
}

#[test]
fn conceptualization_matches_paper_example() {
    let s = sim(105, 10_000);
    let cs = s
        .probase
        .model
        .conceptualize(&["China", "India", "Brazil"], 6);
    assert!(!cs.is_empty());
    let labels: Vec<&str> = cs.iter().map(|(c, _)| c.as_str()).collect();
    assert!(
        labels
            .iter()
            .any(|l| l.contains("country") || *l == "emerging market"),
        "{labels:?}"
    );
}

#[test]
fn knowledge_monotone_and_fixpoint() {
    let s = sim(106, 4_000);
    let iters = &s.probase.extraction.iterations;
    for w in iters.windows(2) {
        assert!(w[1].distinct_pairs >= w[0].distinct_pairs);
        assert!(w[1].evidence_len >= w[0].evidence_len);
    }
    assert_eq!(
        iters.last().unwrap().new_occurrences,
        0,
        "must terminate at a fixpoint"
    );
}

#[test]
fn graph_is_dag_with_sane_stats() {
    let s = sim(107, 6_000);
    let stats = s.probase.graph_stats;
    // LevelMap::compute (inside GraphStats) panics on cycles, so arriving
    // here proves acyclicity; check the Table 4-style ranges.
    assert!(stats.avg_level >= 1.0 && stats.avg_level < 3.0, "{stats:?}");
    assert!(stats.avg_parents >= 1.0, "{stats:?}");
    assert!(
        stats.concept_instance_pairs > stats.concept_subconcept_pairs,
        "{stats:?}"
    );
}
