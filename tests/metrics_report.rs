//! End-to-end observability: the default pipeline entry points record
//! into the process-global registry, and its snapshot — exactly what
//! `probase-cli --metrics-out` writes — carries the per-iteration extract
//! spans, all three taxonomy merge phases, and the store swap count.

use probase::corpus::{CorpusConfig, WorldConfig};
use probase::obs::{global, Json};
use probase::store::SharedStore;
use probase::{ProbaseConfig, Simulation};

#[test]
fn global_snapshot_carries_the_full_pipeline_report() {
    let sim = Simulation::run(
        &WorldConfig::small(7),
        &CorpusConfig {
            seed: 7,
            sentences: 2_000,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    );
    // The CLI hosts the graph in the shared store before reporting.
    let store = SharedStore::new(sim.probase.model.graph().clone());
    store.read(|g| g.node_count());

    let text = global().snapshot().to_string();
    let report = probase::obs::json::parse(&text).expect("snapshot is valid JSON");

    let stages = report.get("stages").expect("stages section");
    for name in [
        "pipeline.extract",
        "pipeline.taxonomy",
        "pipeline.plausibility",
        "extract.iteration",
        "taxonomy.local_build",
        "taxonomy.horizontal_merge",
        "taxonomy.vertical_merge",
    ] {
        let stage = stages.get(name).unwrap_or_else(|| panic!("missing {name}"));
        assert!(
            stage.get("calls").and_then(Json::as_u64) >= Some(1),
            "{name} has no recorded spans"
        );
        assert!(
            stage
                .get("spans_us")
                .and_then(Json::as_arr)
                .is_some_and(|s| !s.is_empty()),
            "{name} has no span samples"
        );
    }

    let counters = report.get("counters").expect("counters section");
    for name in [
        "extract.sentences_parsed",
        "extract.pairs_committed",
        "prob.evidence_scored",
        "prob.noisyor_evaluations",
        "taxonomy.similarity_calls",
        "store.queries",
        "store.snapshot_swaps",
    ] {
        assert!(
            counters.get(name).and_then(Json::as_u64) >= Some(1),
            "counter {name} missing or zero"
        );
    }
}
