//! Golden regression test: the standard small simulation must keep
//! reproducing the paper's headline shapes. If a change to any stage
//! moves these guardrails, the reproduction has regressed — this is the
//! canary for the whole repository.

use probase::corpus::{CorpusConfig, WorldConfig};
use probase::eval::{Judge, Precision};
use probase::{ProbaseConfig, Simulation};
use std::sync::OnceLock;

fn sim() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| {
        Simulation::run(
            &WorldConfig {
                seed: 2012,
                filler_concepts: 300,
                ..WorldConfig::default()
            },
            &CorpusConfig {
                seed: 2012,
                sentences: 12_000,
                ..CorpusConfig::default()
            },
            &ProbaseConfig::paper(),
        )
    })
}

#[test]
fn golden_extraction_precision() {
    let s = sim();
    let judge = Judge::new(&s.world);
    let g = &s.probase.extraction.knowledge;
    let mut p = Precision::default();
    for (x, y, _) in g.pairs() {
        p.add(judge.pair_valid(g.resolve(x), g.resolve(y)));
    }
    // Paper: 92.8%. Guardrail: ≥ 90% at this scale.
    assert!(p.ratio() >= 0.90, "precision regressed: {:.3}", p.ratio());
    assert!(p.total >= 3_000, "pair yield regressed: {}", p.total);
}

#[test]
fn golden_round2_spike() {
    let iters = &sim().probase.extraction.iterations;
    assert!(iters.len() >= 3);
    assert!(
        iters[1].new_occurrences as f64 >= 1.2 * iters[0].new_occurrences as f64,
        "round-2 spike regressed: {:?}",
        iters.iter().map(|i| i.new_occurrences).collect::<Vec<_>>()
    );
}

#[test]
fn golden_homograph_separation() {
    let s = sim();
    let g = s.probase.model.graph();
    let populated: Vec<_> = g
        .senses_of("plant")
        .into_iter()
        .filter(|&n| !g.is_instance(n) && g.child_count(n) >= 2)
        .collect();
    assert!(
        populated.len() >= 2,
        "plant senses regressed: {}",
        populated.len()
    );
}

#[test]
fn golden_typicality_heads() {
    let s = sim();
    // Each curated benchmark concept's top instance must be from its
    // curated head (the world's most typical members).
    let m = &s.probase.model;
    let mut hits = 0;
    let mut total = 0;
    for label in ["country", "company", "city", "actor", "film", "university"] {
        let Some((top, _)) = m.typical_instances(label, 1).into_iter().next() else {
            continue;
        };
        total += 1;
        let idx = probase::corpus::WorldIndex::new(&s.world);
        let cid = idx.senses(label)[0];
        let head: Vec<&str> = s.world.concept(cid).instances
            [..8.min(s.world.concept(cid).instances.len())]
            .iter()
            .map(|mem| s.world.instance(mem.instance).surface.as_str())
            .collect();
        hits += usize::from(head.contains(&top.as_str()));
    }
    assert!(total >= 5);
    assert!(
        hits * 3 >= total * 2,
        "typicality heads regressed: {hits}/{total}"
    );
}

#[test]
fn golden_plausibility_separates() {
    use probase::prob::{compute_plausibility, EvidenceModel, PlausibilityConfig};
    use probase::seed_from_world;
    let s = sim();
    let judge = Judge::new(&s.world);
    let g = &s.probase.extraction.knowledge;
    let nb = EvidenceModel::fit(&s.probase.extraction.evidence, &seed_from_world(&s.world));
    let table = compute_plausibility(
        &s.probase.extraction.evidence,
        g,
        &nb,
        &PlausibilityConfig::default(),
    );
    let (mut v_sum, mut v_n, mut i_sum, mut i_n) = (0.0, 0usize, 0.0, 0usize);
    for (x, y, _) in g.pairs() {
        let (xs, ys) = (g.resolve(x), g.resolve(y));
        let p = table.get(xs, ys);
        if judge.pair_valid(xs, ys) {
            v_sum += p;
            v_n += 1;
        } else {
            i_sum += p;
            i_n += 1;
        }
    }
    let (v_avg, i_avg) = (v_sum / v_n.max(1) as f64, i_sum / i_n.max(1) as f64);
    assert!(
        v_avg > i_avg + 0.05,
        "plausibility no longer separates truth from noise: valid {v_avg:.3} vs invalid {i_avg:.3}"
    );
}
