//! Edge-case tests for the applications layer.

use probase_apps::{
    bow_vector, infer_header, kmeans, parse_attribute_mention, rewrite_query, spot_terms,
    tag_entities, Association, Column, FeatureSpace, MiniIndex, NerConfig, SparseVector,
    TaxonomyIndex, TermKind,
};
use probase_prob::ProbaseModel;
use probase_store::ConceptGraph;

fn model() -> ProbaseModel {
    let mut g = ConceptGraph::new();
    let country = g.ensure_node("country", 0);
    for (i, n) in ["France", "Spain", "Japan"].iter().enumerate() {
        let node = g.ensure_node(n, 0);
        g.add_evidence(country, node, 9 - i as u32);
    }
    ProbaseModel::new(g)
}

#[test]
fn mini_index_edge_cases() {
    let index = MiniIndex::build(vec![]);
    assert!(index.is_empty());
    assert!(index.search("anything", 5).is_empty());
    let index = MiniIndex::build(vec![probase_apps::Document {
        page_id: 0,
        text: "France and Spain".into(),
    }]);
    assert!(index.search("", 5).is_empty());
    assert_eq!(index.search("france", 5).len(), 1); // case-insensitive
    assert!(index.search("france germany", 5).is_empty()); // AND semantics
}

#[test]
fn association_is_symmetric_and_zero_default() {
    let docs = vec![probase_apps::Document {
        page_id: 0,
        text: "France met Spain".into(),
    }];
    let assoc = Association::from_pages(&docs, &["France".into(), "Spain".into(), "Japan".into()]);
    assert_eq!(
        assoc.score("France", "Spain"),
        assoc.score("Spain", "France")
    );
    assert_eq!(assoc.score("France", "Japan"), 0);
}

#[test]
fn rewrite_query_respects_limits() {
    let m = model();
    let rewrites = rewrite_query(&m, &Association::default(), "best countries", 2, 1);
    assert_eq!(rewrites.len(), 1);
    assert_eq!(rewrites[0].substitutions.len(), 1);
    // per_concept = 2 caps the candidate instances.
    let all = rewrite_query(&m, &Association::default(), "best countries", 2, 10);
    assert!(all.len() <= 2);
}

#[test]
fn spot_terms_prefers_concept_reading_over_instance() {
    let mut g = ConceptGraph::new();
    // "apple" exists both as a concept (with children) and would match as
    // an instance string; the spotter prefers the concept reading.
    let apple = g.ensure_node("apple", 0);
    let gala = g.ensure_node("Gala", 0);
    g.add_evidence(apple, gala, 2);
    let m = ProbaseModel::new(g);
    let spans = spot_terms(&m, "apples");
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].kind, TermKind::Concept);
    assert_eq!(spans[0].canonical, "apple");
}

#[test]
fn ner_confidence_is_normalized() {
    let m = model();
    for tag in tag_entities(&m, "France against Spain", &NerConfig::default()) {
        assert!((0.0..=1.0).contains(&tag.confidence));
    }
}

#[test]
fn kmeans_more_clusters_than_points() {
    let mut space = FeatureSpace::default();
    let vecs: Vec<SparseVector> = ["a b", "c d"]
        .iter()
        .map(|t| bow_vector(&mut space, t))
        .collect();
    let assignment = kmeans(&vecs, 5, 10, 1);
    assert_eq!(assignment.len(), 2);
    assert!(assignment.iter().all(|&c| c < 5));
}

#[test]
fn infer_header_single_cell() {
    let m = model();
    let h = infer_header(
        &m,
        &Column {
            cells: vec!["France".into()],
        },
        3,
    )
    .unwrap();
    assert_eq!(h.concept, "country");
}

#[test]
fn attribute_parser_rejects_malformed() {
    assert_eq!(parse_attribute_mention("the of nothing"), None);
    assert_eq!(parse_attribute_mention(""), None);
    assert_eq!(parse_attribute_mention("the a b c d of X"), None); // too long
}

#[test]
fn taxonomy_search_dedupes_witnesses_per_keyword() {
    let m = model();
    let idx = TaxonomyIndex::build(&m);
    let hits = idx.search(&["france", "france"], 3);
    // Two identical keywords: coverage counts positions, both witnessed.
    assert!(!hits.is_empty());
    assert_eq!(hits[0].covered, 2);
}
