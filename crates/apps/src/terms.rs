//! Term spotting: find taxonomy terms inside free text.
//!
//! Every §5.3 application starts the same way — locate the concepts and
//! instances a piece of text mentions. The spotter does greedy
//! longest-match over token n-grams against the model's vocabulary,
//! normalizing candidate concept phrases to canonical form (so the query
//! word "conferences" hits the concept "conference").

use probase_prob::ProbaseModel;
use probase_text::{normalize_concept, tokenize};
use serde::{Deserialize, Serialize};

/// What a spotted term is in the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TermKind {
    /// A concept label ("tropical country").
    Concept,
    /// An instance ("Singapore").
    Instance,
    /// Out-of-taxonomy filler.
    Keyword,
}

/// One spotted span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpottedTerm {
    /// The canonical form stored in the taxonomy.
    pub canonical: String,
    /// The surface text matched.
    pub surface: String,
    pub kind: TermKind,
}

/// Maximum n-gram length tried.
const MAX_NGRAM: usize = 4;

/// Spot taxonomy terms in `text`, greedy longest-match left to right.
/// Unmatched words come back as keywords.
pub fn spot_terms(model: &ProbaseModel, text: &str) -> Vec<SpottedTerm> {
    let tokens = tokenize(text);
    let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < words.len() {
        let mut matched = None;
        for len in (1..=MAX_NGRAM.min(words.len() - i)).rev() {
            let surface = words[i..i + len].join(" ");
            // Try concept form first (canonical singular), then verbatim.
            let concept_form = normalize_concept(&surface);
            if model.is_concept(&concept_form) {
                matched = Some((
                    len,
                    SpottedTerm {
                        canonical: concept_form,
                        surface: surface.clone(),
                        kind: TermKind::Concept,
                    },
                ));
                break;
            }
            if model.knows(&surface) {
                matched = Some((
                    len,
                    SpottedTerm {
                        canonical: surface.clone(),
                        surface,
                        kind: TermKind::Instance,
                    },
                ));
                break;
            }
        }
        match matched {
            Some((len, term)) => {
                out.push(term);
                i += len;
            }
            None => {
                if words[i].chars().any(|c| c.is_alphanumeric()) {
                    out.push(SpottedTerm {
                        canonical: words[i].to_lowercase(),
                        surface: words[i].to_string(),
                        kind: TermKind::Keyword,
                    });
                }
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    fn model() -> ProbaseModel {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("asian country", 0);
        let conf = g.ensure_node("database conference", 0);
        let sg = g.ensure_node("Singapore", 0);
        let sigmod = g.ensure_node("SIGMOD", 0);
        g.add_evidence(country, sg, 5);
        g.add_evidence(conf, sigmod, 5);
        ProbaseModel::new(g)
    }

    #[test]
    fn spots_plural_concepts() {
        let m = model();
        let spans = spot_terms(&m, "database conferences in asian countries");
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].canonical, "database conference");
        assert_eq!(spans[0].kind, TermKind::Concept);
        assert_eq!(spans[1].kind, TermKind::Keyword);
        assert_eq!(spans[2].canonical, "asian country");
    }

    #[test]
    fn spots_instances_verbatim() {
        let m = model();
        let spans = spot_terms(&m, "flights to Singapore");
        let inst = spans.iter().find(|s| s.kind == TermKind::Instance).unwrap();
        assert_eq!(inst.canonical, "Singapore");
    }

    #[test]
    fn longest_match_wins() {
        let m = model();
        let spans = spot_terms(&m, "asian countries");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].canonical, "asian country");
    }

    #[test]
    fn unknown_text_is_keywords() {
        let m = model();
        let spans = spot_terms(&m, "hello world");
        assert!(spans.iter().all(|s| s.kind == TermKind::Keyword));
    }
}
