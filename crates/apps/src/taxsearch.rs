//! Taxonomy keyword search (paper §5.3, \[9\] — Ding et al., "Optimizing
//! index for taxonomy keyword search", SIGMOD 2012).
//!
//! Given a set of keywords, find the concepts that *cover* them: the
//! tightest nodes of the taxonomy whose closure contains (instances
//! matching) all the keywords. "sigmod beijing" should surface concepts
//! like *database conference* and *asian city* rather than the root. The
//! implementation builds an inverted keyword → node index over instance
//! labels and scores candidate concepts by keyword coverage, typicality
//! mass, and tightness (smaller closures win ties — the paper's "best
//! abstraction" intuition from §1).

use probase_prob::ProbaseModel;
use probase_store::{FxHashMap, NodeId};
use serde::{Deserialize, Serialize};

/// A concept hit for a keyword query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConceptHit {
    pub concept: String,
    /// How many query keywords the concept's instances cover.
    pub covered: usize,
    /// Combined score (coverage, typicality, tightness).
    pub score: f64,
    /// The matching instances, one per covered keyword.
    pub witnesses: Vec<String>,
}

/// An inverted keyword index over a model's instances: lowercase word →
/// instance nodes whose label contains it.
pub struct TaxonomyIndex<'m> {
    model: &'m ProbaseModel,
    word_to_instances: FxHashMap<String, Vec<NodeId>>,
}

impl<'m> TaxonomyIndex<'m> {
    /// Build the index (O(instances × words-per-label)).
    pub fn build(model: &'m ProbaseModel) -> Self {
        let mut word_to_instances: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
        let g = model.graph();
        for inst in g.instances() {
            for w in g.label(inst).split_whitespace() {
                let w = w.to_lowercase();
                if w.len() < 2 {
                    continue;
                }
                word_to_instances.entry(w).or_default().push(inst);
            }
        }
        Self {
            model,
            word_to_instances,
        }
    }

    /// Search for concepts covering the keywords, best first.
    pub fn search(&self, keywords: &[&str], k: usize) -> Vec<ConceptHit> {
        let g = self.model.graph();
        let tmodel = self.model.typicality_model();
        // Per keyword: the set of instances matching it.
        let matches: Vec<&[NodeId]> = keywords
            .iter()
            .map(|kw| {
                self.word_to_instances
                    .get(&kw.to_lowercase())
                    .map(|v| v.as_slice())
                    .unwrap_or(&[])
            })
            .collect();
        // Candidate concepts: any concept with typicality mass on a
        // matching instance, scored by which keywords it covers.
        struct Cand {
            covered: Vec<Option<(NodeId, f64)>>,
        }
        let mut cands: FxHashMap<NodeId, Cand> = FxHashMap::default();
        for (ki, insts) in matches.iter().enumerate() {
            for &inst in insts.iter() {
                for &(concept, t) in tmodel.concepts_of(inst) {
                    let c = cands.entry(concept).or_insert_with(|| Cand {
                        covered: vec![None; keywords.len()],
                    });
                    let better = match c.covered[ki] {
                        None => true,
                        Some((_, prev)) => t > prev,
                    };
                    if better {
                        c.covered[ki] = Some((inst, t));
                    }
                }
            }
        }
        let mut hits: Vec<ConceptHit> = cands
            .into_iter()
            .map(|(concept, c)| {
                let covered = c.covered.iter().flatten().count();
                let mass: f64 = c.covered.iter().flatten().map(|(_, t)| t).sum();
                // Tightness: smaller concepts rank above giant ones at
                // equal coverage (the §1 "BRIC beats country" intuition).
                let size = g.child_count(concept).max(1) as f64;
                let score = covered as f64 * 10.0 + mass - size.ln() * 0.1;
                ConceptHit {
                    concept: g.display(concept),
                    covered,
                    score,
                    witnesses: c
                        .covered
                        .iter()
                        .flatten()
                        .map(|(i, _)| g.label(*i).to_string())
                        .collect(),
                }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.covered
                .cmp(&a.covered)
                .then(b.score.partial_cmp(&a.score).expect("finite"))
                .then(a.concept.cmp(&b.concept))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    fn model() -> ProbaseModel {
        let mut g = ConceptGraph::new();
        let conf = g.ensure_node("database conference", 0);
        let city = g.ensure_node("asian city", 0);
        let place = g.ensure_node("place", 0);
        for (i, n) in ["SIGMOD", "VLDB", "ICDE"].iter().enumerate() {
            let node = g.ensure_node(n, 0);
            g.add_evidence(conf, node, 9 - i as u32);
        }
        for (i, n) in ["Beijing", "Tokyo", "Singapore"].iter().enumerate() {
            let node = g.ensure_node(n, 0);
            g.add_evidence(city, node, 8 - i as u32);
            g.add_evidence(place, node, 2);
        }
        // place is a huge generic concept (tightness should demote it).
        for i in 0..30 {
            let node = g.ensure_node(&format!("Somewhere{i}"), 0);
            g.add_evidence(place, node, 1);
        }
        ProbaseModel::new(g)
    }

    #[test]
    fn single_keyword_finds_owning_concept() {
        let m = model();
        let idx = TaxonomyIndex::build(&m);
        let hits = idx.search(&["sigmod"], 3);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].concept, "database conference");
        assert_eq!(hits[0].covered, 1);
        assert_eq!(hits[0].witnesses, vec!["SIGMOD".to_string()]);
    }

    #[test]
    fn tight_concept_beats_generic_at_equal_coverage() {
        let m = model();
        let idx = TaxonomyIndex::build(&m);
        let hits = idx.search(&["beijing"], 3);
        let city_rank = hits.iter().position(|h| h.concept == "asian city");
        let place_rank = hits.iter().position(|h| h.concept == "place");
        assert!(city_rank < place_rank, "{hits:?}");
    }

    #[test]
    fn coverage_dominates_ranking() {
        let m = model();
        let idx = TaxonomyIndex::build(&m);
        // No single concept covers both; coverage 1 hits appear for each.
        let hits = idx.search(&["sigmod", "beijing"], 5);
        assert!(hits.iter().any(|h| h.concept == "database conference"));
        assert!(hits.iter().any(|h| h.concept == "asian city"));
        assert!(hits.iter().all(|h| h.covered == 1));
    }

    #[test]
    fn multiword_instance_words_indexed() {
        let mut g = ConceptGraph::new();
        let company = g.ensure_node("company", 0);
        let pg = g.ensure_node("Proctor and Gamble", 0);
        g.add_evidence(company, pg, 3);
        let m = ProbaseModel::new(g);
        let idx = TaxonomyIndex::build(&m);
        let hits = idx.search(&["gamble"], 2);
        assert_eq!(hits[0].concept, "company");
        assert_eq!(hits[0].witnesses[0], "Proctor and Gamble");
    }

    #[test]
    fn unknown_keywords_yield_empty() {
        let m = model();
        let idx = TaxonomyIndex::build(&m);
        assert!(idx.search(&["zorblax"], 3).is_empty());
        assert!(idx.search(&[], 3).is_empty());
    }
}
