//! Semantic web search (paper §5.3.1).
//!
//! Keyword engines fail on queries like *"database conferences in asian
//! cities"* because no page contains those exact words. The Probase
//! prototype rewrites the query: each spotted concept is replaced by its
//! most typical instances, and instance pairs are ranked by a word
//! association score mined from page co-occurrence before the rewritten
//! queries hit an ordinary keyword index.
//!
//! This module ships all three pieces: a small inverted keyword index
//! over simulated pages ([`MiniIndex`]), the co-occurrence association
//! model ([`Association`]), and the rewriter ([`semantic_search`]). The
//! keyword baseline is the same index queried with the original text.

use crate::terms::{spot_terms, TermKind};
use probase_corpus::SentenceRecord;
use probase_prob::ProbaseModel;
use probase_text::tokenize;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A searchable document (one simulated web page).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    pub page_id: u64,
    pub text: String,
}

/// Assemble page documents from a sentence corpus.
pub fn pages_from_corpus(records: &[SentenceRecord]) -> Vec<Document> {
    let mut by_page: HashMap<u64, String> = HashMap::new();
    for r in records {
        let entry = by_page.entry(r.meta.page_id).or_default();
        if !entry.is_empty() {
            entry.push(' ');
        }
        entry.push_str(&r.text);
    }
    let mut docs: Vec<Document> = by_page
        .into_iter()
        .map(|(page_id, text)| Document { page_id, text })
        .collect();
    docs.sort_by_key(|d| d.page_id);
    docs
}

/// Inverted keyword index with AND semantics and term-frequency scoring.
#[derive(Debug, Default)]
pub struct MiniIndex {
    docs: Vec<Document>,
    postings: HashMap<String, Vec<u32>>,
}

impl MiniIndex {
    pub fn build(docs: Vec<Document>) -> Self {
        let mut postings: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, d) in docs.iter().enumerate() {
            let mut seen = HashSet::new();
            for t in tokenize(&d.text) {
                let w = t.text.to_lowercase();
                if seen.insert(w.clone()) {
                    postings.entry(w).or_default().push(i as u32);
                }
            }
        }
        Self { docs, postings }
    }

    pub fn len(&self) -> usize {
        self.docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    pub fn doc(&self, i: u32) -> &Document {
        &self.docs[i as usize]
    }

    /// Documents containing *all* query words (AND), best-first by the
    /// number of distinct query word positions (crude TF).
    pub fn search(&self, query: &str, k: usize) -> Vec<u32> {
        let words: Vec<String> = tokenize(query)
            .into_iter()
            .map(|t| t.text.to_lowercase())
            .collect();
        if words.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&Vec<u32>> = Vec::new();
        for w in &words {
            match self.postings.get(w) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<u32> = lists[0].clone();
        for l in &lists[1..] {
            let set: HashSet<u32> = l.iter().copied().collect();
            result.retain(|d| set.contains(d));
        }
        result.truncate(k);
        result
    }
}

/// Word association mined from page-level co-occurrence (paper \[39\]).
#[derive(Debug, Default)]
pub struct Association {
    /// (term a, term b) sorted → pages co-mentioning both.
    counts: HashMap<(String, String), u32>,
}

impl Association {
    /// Count how often two taxonomy terms share a page. Terms are matched
    /// by simple containment against a provided vocabulary.
    pub fn from_pages(docs: &[Document], vocabulary: &[String]) -> Self {
        let mut counts = HashMap::new();
        for d in docs {
            let lower = d.text.to_lowercase();
            let mentioned: Vec<&String> = vocabulary
                .iter()
                .filter(|v| lower.contains(&v.to_lowercase()))
                .collect();
            for (i, a) in mentioned.iter().enumerate() {
                for b in &mentioned[i + 1..] {
                    let key = if a <= b {
                        ((*a).clone(), (*b).clone())
                    } else {
                        ((*b).clone(), (*a).clone())
                    };
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        Self { counts }
    }

    pub fn score(&self, a: &str, b: &str) -> u32 {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        self.counts.get(&key).copied().unwrap_or(0)
    }
}

/// A rewritten query: instances substituted for concepts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewrittenQuery {
    pub text: String,
    /// Instance chosen per concept slot, in slot order.
    pub substitutions: Vec<String>,
    /// Combined typicality × association score used for ranking.
    pub score: f64,
}

/// Rewrite a semantic query into concrete keyword queries (paper §5.3.1:
/// "database conferences in asian cities" → "SIGMOD in Beijing", …).
///
/// Each spotted concept contributes its top-`per_concept` typical
/// instances; combinations are ranked by the product of typicalities
/// times (1 + association between the chosen instances).
pub fn rewrite_query(
    model: &ProbaseModel,
    assoc: &Association,
    query: &str,
    per_concept: usize,
    max_rewrites: usize,
) -> Vec<RewrittenQuery> {
    let spans = spot_terms(model, query);
    let concept_slots: Vec<(usize, Vec<(String, f64)>)> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == TermKind::Concept)
        .map(|(i, s)| (i, model.typical_instances(&s.canonical, per_concept)))
        .collect();
    if concept_slots.is_empty() {
        return vec![RewrittenQuery {
            text: query.to_string(),
            substitutions: vec![],
            score: 1.0,
        }];
    }
    // Cartesian product over slots (bounded: per_concept^slots).
    let mut combos: Vec<(Vec<(usize, String)>, f64)> = vec![(Vec::new(), 1.0)];
    for (slot, instances) in &concept_slots {
        let mut next = Vec::new();
        for (chosen, score) in &combos {
            for (inst, t) in instances {
                let mut c = chosen.clone();
                c.push((*slot, inst.clone()));
                next.push((c, score * t.max(1e-6)));
            }
        }
        combos = next;
    }
    // Association bonus between chosen instances.
    let mut rewrites: Vec<RewrittenQuery> = combos
        .into_iter()
        .map(|(chosen, tscore)| {
            let mut bonus = 1.0;
            for (i, (_, a)) in chosen.iter().enumerate() {
                for (_, b) in &chosen[i + 1..] {
                    bonus += assoc.score(a, b) as f64;
                }
            }
            let mut words: Vec<String> = spans.iter().map(|s| s.surface.clone()).collect();
            let mut subs = Vec::new();
            for (slot, inst) in &chosen {
                words[*slot] = inst.clone();
                subs.push(inst.clone());
            }
            RewrittenQuery {
                text: words.join(" "),
                substitutions: subs,
                score: tscore * bonus,
            }
        })
        .collect();
    rewrites.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite"));
    rewrites.truncate(max_rewrites);
    rewrites
}

/// Full semantic search: rewrite, run each rewrite against the index,
/// merge results best-rewrite-first. Returns document indexes.
pub fn semantic_search(
    model: &ProbaseModel,
    assoc: &Association,
    index: &MiniIndex,
    query: &str,
    k: usize,
) -> Vec<u32> {
    let rewrites = rewrite_query(model, assoc, query, 8, 48);
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for rw in &rewrites {
        for d in index.search(&rw.text, k) {
            if seen.insert(d) {
                out.push(d);
                if out.len() >= k {
                    return out;
                }
            }
        }
    }
    // Fallback: the full rewrite keeps the query's glue words; retry with
    // the substituted instances alone ("SIGMOD Beijing").
    for rw in &rewrites {
        if rw.substitutions.is_empty() {
            continue;
        }
        let bare = rw.substitutions.join(" ");
        for d in index.search(&bare, k) {
            if seen.insert(d) {
                out.push(d);
                if out.len() >= k {
                    return out;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    fn model() -> ProbaseModel {
        let mut g = ConceptGraph::new();
        let conf = g.ensure_node("database conference", 0);
        let city = g.ensure_node("asian city", 0);
        for (i, name) in ["SIGMOD", "VLDB", "ICDE"].iter().enumerate() {
            let n = g.ensure_node(name, 0);
            g.add_evidence(conf, n, 10 - i as u32 * 2);
        }
        for (i, name) in ["Beijing", "Singapore", "Tokyo"].iter().enumerate() {
            let n = g.ensure_node(name, 0);
            g.add_evidence(city, n, 9 - i as u32 * 2);
        }
        ProbaseModel::new(g)
    }

    fn docs() -> Vec<Document> {
        vec![
            Document {
                page_id: 0,
                text: "SIGMOD in Beijing was memorable".into(),
            },
            Document {
                page_id: 1,
                text: "VLDB in Singapore attracted many".into(),
            },
            Document {
                page_id: 2,
                text: "a cooking blog about noodles".into(),
            },
        ]
    }

    #[test]
    fn keyword_search_finds_exact_words_only() {
        let index = MiniIndex::build(docs());
        assert!(index
            .search("database conferences in asian cities", 10)
            .is_empty());
        assert_eq!(index.search("SIGMOD Beijing", 10), vec![0]);
    }

    #[test]
    fn rewrite_substitutes_typical_instances() {
        let m = model();
        let assoc = Association::default();
        let rewrites = rewrite_query(&m, &assoc, "database conferences in asian cities", 3, 9);
        assert!(!rewrites.is_empty());
        assert!(
            rewrites.iter().any(|r| r.text == "SIGMOD in Beijing"),
            "{rewrites:?}"
        );
        // Typicality ordering: top rewrite uses the most typical instances.
        assert_eq!(
            rewrites[0].substitutions,
            vec!["SIGMOD".to_string(), "Beijing".to_string()]
        );
    }

    #[test]
    fn association_breaks_ties_toward_cooccurring_pairs() {
        let m = model();
        let d = docs();
        let vocab: Vec<String> = ["SIGMOD", "VLDB", "ICDE", "Beijing", "Singapore", "Tokyo"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let assoc = Association::from_pages(&d, &vocab);
        assert_eq!(assoc.score("VLDB", "Singapore"), 1);
        assert_eq!(assoc.score("VLDB", "Beijing"), 0);
        let rewrites = rewrite_query(&m, &assoc, "database conferences in asian cities", 3, 9);
        // VLDB+Singapore must outrank VLDB+anything-else.
        let vldb_first = rewrites
            .iter()
            .find(|r| {
                r.substitutions
                    .first()
                    .map(|s| s == "VLDB")
                    .unwrap_or(false)
            })
            .unwrap();
        assert_eq!(vldb_first.substitutions[1], "Singapore");
    }

    #[test]
    fn semantic_search_beats_keyword_on_semantic_query() {
        let m = model();
        let d = docs();
        let vocab: Vec<String> = ["SIGMOD", "VLDB", "Beijing", "Singapore"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let assoc = Association::from_pages(&d, &vocab);
        let index = MiniIndex::build(d);
        let hits = semantic_search(
            &m,
            &assoc,
            &index,
            "database conferences in asian cities",
            5,
        );
        assert!(!hits.is_empty());
        assert!(hits.contains(&0) || hits.contains(&1));
        assert!(index
            .search("database conferences in asian cities", 5)
            .is_empty());
    }

    #[test]
    fn non_semantic_query_passes_through() {
        let m = model();
        let rewrites = rewrite_query(&m, &Association::default(), "noodle recipe", 3, 9);
        assert_eq!(rewrites.len(), 1);
        assert_eq!(rewrites[0].text, "noodle recipe");
    }

    #[test]
    fn pages_group_sentences() {
        use probase_corpus::sentence::{SentenceTruth, SourceMeta};
        let recs = vec![
            SentenceRecord {
                id: 0,
                text: "a".into(),
                meta: SourceMeta {
                    page_id: 7,
                    page_rank: 0.1,
                    source_quality: 0.5,
                },
                truth: SentenceTruth::default(),
            },
            SentenceRecord {
                id: 1,
                text: "b".into(),
                meta: SourceMeta {
                    page_id: 7,
                    page_rank: 0.1,
                    source_quality: 0.5,
                },
                truth: SentenceTruth::default(),
            },
        ];
        let docs = pages_from_corpus(&recs);
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].text, "a b");
    }
}
