//! Short-text understanding and clustering (paper §5.3.2, \[34\]).
//!
//! Bag-of-words models have too little signal in a tweet-sized text.
//! Probase conceptualizes the text instead: spot the known terms, abstract
//! them to typical concepts via `T(x|i)`, and represent the text as a
//! sparse concept vector. K-means over concept vectors then groups
//! "visited Beijing and Tokyo" with "a week in Singapore" even though the
//! two share no words — they share *concepts*.

use crate::terms::{spot_terms, TermKind};
use probase_prob::ProbaseModel;
use probase_text::tokenize;
use std::collections::HashMap;

/// A sparse feature vector (feature id → weight), L2-normalized.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    pub weights: HashMap<u32, f64>,
}

impl SparseVector {
    pub fn normalize(&mut self) {
        let norm: f64 = self.weights.values().map(|w| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for w in self.weights.values_mut() {
                *w /= norm;
            }
        }
    }

    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (small, large) = if self.weights.len() <= other.weights.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .weights
            .iter()
            .filter_map(|(k, w)| large.weights.get(k).map(|v| v * w))
            .sum()
    }

    pub fn add_scaled(&mut self, other: &SparseVector, scale: f64) {
        for (&k, &w) in &other.weights {
            *self.weights.entry(k).or_insert(0.0) += w * scale;
        }
    }
}

/// A shared feature vocabulary (string features → dense ids).
#[derive(Debug, Default)]
pub struct FeatureSpace {
    ids: HashMap<String, u32>,
}

impl FeatureSpace {
    pub fn id(&mut self, feature: &str) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(feature.to_string()).or_insert(next)
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Conceptualize a short text: spot known terms, abstract the instance
/// terms jointly, and return the top concepts with scores.
pub fn conceptualize_text(model: &ProbaseModel, text: &str, k: usize) -> Vec<(String, f64)> {
    let spans = spot_terms(model, text);
    let instance_terms: Vec<&str> = spans
        .iter()
        .filter(|s| s.kind == TermKind::Instance)
        .map(|s| s.canonical.as_str())
        .collect();
    let mut concepts = if instance_terms.is_empty() {
        Vec::new()
    } else {
        model.conceptualize(&instance_terms, k)
    };
    // Concept mentions contribute themselves directly.
    for s in spans.iter().filter(|s| s.kind == TermKind::Concept) {
        if !concepts.iter().any(|(c, _)| c == &s.canonical) {
            concepts.push((s.canonical.clone(), 1.0));
        }
    }
    concepts.truncate(k.max(1));
    concepts
}

/// Concept-vector representation of a text (Probase featurization).
pub fn concept_vector(
    model: &ProbaseModel,
    space: &mut FeatureSpace,
    text: &str,
    top_concepts: usize,
) -> SparseVector {
    let mut v = SparseVector::default();
    for (c, score) in conceptualize_text(model, text, top_concepts) {
        let id = space.id(&format!("c:{c}"));
        *v.weights.entry(id).or_insert(0.0) += score;
    }
    v.normalize();
    v
}

/// Bag-of-words representation (the baseline the paper beats).
pub fn bow_vector(space: &mut FeatureSpace, text: &str) -> SparseVector {
    let mut v = SparseVector::default();
    for t in tokenize(text) {
        let w = t.text.to_lowercase();
        if w.len() < 2 {
            continue;
        }
        let id = space.id(&format!("w:{w}"));
        *v.weights.entry(id).or_insert(0.0) += 1.0;
    }
    v.normalize();
    v
}

/// Deterministic spherical k-means (cosine similarity).
/// Returns the cluster assignment per vector.
pub fn kmeans(vectors: &[SparseVector], k: usize, iterations: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 1);
    if vectors.is_empty() {
        return Vec::new();
    }
    // Deterministic seeding: spread initial centers over the input.
    let mut centers: Vec<SparseVector> = (0..k)
        .map(|i| {
            let idx = ((seed as usize).wrapping_add(i * vectors.len() / k)) % vectors.len();
            vectors[idx].clone()
        })
        .collect();
    let mut assignment = vec![0usize; vectors.len()];
    for _ in 0..iterations {
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let best = (0..k)
                .max_by(|&a, &b| {
                    centers[a]
                        .dot(v)
                        .partial_cmp(&centers[b].dot(v))
                        .expect("finite")
                        .then(b.cmp(&a))
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centers.
        let mut next: Vec<SparseVector> = vec![SparseVector::default(); k];
        let mut counts = vec![0usize; k];
        for (i, v) in vectors.iter().enumerate() {
            next[assignment[i]].add_scaled(v, 1.0);
            counts[assignment[i]] += 1;
        }
        for (c, n) in next.iter_mut().zip(&counts) {
            if *n > 0 {
                c.normalize();
            }
        }
        // Re-seed empty clusters deterministically.
        for (ci, n) in counts.iter().enumerate() {
            if *n == 0 {
                next[ci] = vectors[(ci * 7 + seed as usize) % vectors.len()].clone();
            }
        }
        centers = next;
        if !changed {
            break;
        }
    }
    assignment
}

/// Clustering purity against gold labels: fraction of points whose
/// cluster's majority label matches their own.
pub fn purity(assignment: &[usize], gold: &[usize]) -> f64 {
    assert_eq!(assignment.len(), gold.len());
    if assignment.is_empty() {
        return 0.0;
    }
    let mut per_cluster: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for (&c, &g) in assignment.iter().zip(gold) {
        *per_cluster.entry(c).or_default().entry(g).or_insert(0) += 1;
    }
    let correct: usize = per_cluster
        .values()
        .map(|m| m.values().copied().max().unwrap_or(0))
        .sum();
    correct as f64 / assignment.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    fn model() -> ProbaseModel {
        let mut g = ConceptGraph::new();
        let city = g.ensure_node("asian city", 0);
        let dish = g.ensure_node("dish", 0);
        for (i, name) in ["Beijing", "Tokyo", "Singapore"].iter().enumerate() {
            let n = g.ensure_node(name, 0);
            g.add_evidence(city, n, 9 - i as u32);
        }
        for (i, name) in ["pizza", "sushi", "curry"].iter().enumerate() {
            let n = g.ensure_node(name, 0);
            g.add_evidence(dish, n, 9 - i as u32);
        }
        ProbaseModel::new(g)
    }

    #[test]
    fn conceptualize_finds_shared_concept() {
        let m = model();
        let cs = conceptualize_text(&m, "a trip to Beijing and Tokyo", 3);
        assert_eq!(cs[0].0, "asian city", "{cs:?}");
    }

    #[test]
    fn concept_vectors_bridge_disjoint_vocabulary() {
        let m = model();
        let mut space = FeatureSpace::default();
        let a = concept_vector(&m, &mut space, "visited Beijing last year", 3);
        let b = concept_vector(&m, &mut space, "Singapore is lovely", 3);
        let c = concept_vector(&m, &mut space, "pizza and curry tonight", 3);
        assert!(a.dot(&b) > 0.5, "same-concept texts must be close");
        assert!(a.dot(&c) < 0.1, "different-concept texts must be far");
        // Bag of words sees nothing in common.
        let mut ws = FeatureSpace::default();
        let aw = bow_vector(&mut ws, "visited Beijing last year");
        let bw = bow_vector(&mut ws, "Singapore is lovely");
        assert_eq!(aw.dot(&bw), 0.0);
    }

    #[test]
    fn kmeans_recovers_two_topics() {
        let m = model();
        let mut space = FeatureSpace::default();
        let texts = [
            "Beijing was crowded",
            "Tokyo in spring",
            "a week in Singapore",
            "pizza for dinner",
            "fresh sushi",
            "spicy curry",
        ];
        let gold = [0, 0, 0, 1, 1, 1];
        let vectors: Vec<SparseVector> = texts
            .iter()
            .map(|t| concept_vector(&m, &mut space, t, 3))
            .collect();
        let assignment = kmeans(&vectors, 2, 20, 3);
        assert!(purity(&assignment, &gold) >= 0.99, "{assignment:?}");
    }

    #[test]
    fn purity_bounds() {
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        assert_eq!(purity(&[0, 0, 0, 0], &[0, 1, 2, 3]), 0.25);
    }

    #[test]
    fn kmeans_deterministic() {
        let m = model();
        let mut space = FeatureSpace::default();
        let vecs: Vec<SparseVector> = ["Beijing", "Tokyo", "pizza", "sushi"]
            .iter()
            .map(|t| concept_vector(&m, &mut space, t, 3))
            .collect();
        assert_eq!(kmeans(&vecs, 2, 10, 5), kmeans(&vecs, 2, 10, 5));
    }

    #[test]
    fn empty_input() {
        assert!(kmeans(&[], 3, 5, 0).is_empty());
        assert_eq!(purity(&[], &[]), 0.0);
    }
}
