//! Mixed-evidence abstraction (paper §1, footnote 1).
//!
//! "Probase also supports abstraction from a mixture of instances,
//! attributes, and actions. For example, inferring from *headquarter,
//! apple* to *company*." An attribute term alone is ambiguous (many
//! concepts have a *population*), and an instance term alone may be too
//! (*apple* the fruit vs *Apple* the company); together they pin the
//! concept down. The [`MixedConceptualizer`] combines the instance-side
//! typicality `T(x|i)` with an attribute→concept index — either taken
//! from harvested attributes (see [`crate::attributes`]) or supplied
//! directly.

use probase_prob::ProbaseModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An attribute → concepts index with normalized weights.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AttributeIndex {
    map: HashMap<String, Vec<(String, f64)>>,
}

impl AttributeIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register that `concept` carries `attribute` with the given weight
    /// (e.g. harvest support). Weights are normalized per attribute at
    /// query time.
    pub fn add(&mut self, attribute: &str, concept: &str, weight: f64) {
        self.map
            .entry(attribute.to_lowercase())
            .or_default()
            .push((concept.to_string(), weight.max(0.0)));
    }

    /// Concepts typically carrying `attribute`, normalized.
    pub fn concepts_of(&self, attribute: &str) -> Vec<(String, f64)> {
        let Some(list) = self.map.get(&attribute.to_lowercase()) else {
            return Vec::new();
        };
        let total: f64 = list.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut out: Vec<(String, f64)> =
            list.iter().map(|(c, w)| (c.clone(), w / total)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }

    /// Is the term a known attribute?
    pub fn knows(&self, term: &str) -> bool {
        self.map.contains_key(&term.to_lowercase())
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Conceptualization over a mixture of instance and attribute terms.
pub struct MixedConceptualizer<'m> {
    model: &'m ProbaseModel,
    attributes: AttributeIndex,
}

/// How each input term was interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TermRole {
    Instance,
    Attribute,
    Unknown,
}

impl<'m> MixedConceptualizer<'m> {
    pub fn new(model: &'m ProbaseModel, attributes: AttributeIndex) -> Self {
        Self { model, attributes }
    }

    /// Classify a term: attribute if the index knows it and the taxonomy
    /// does not have it as an instance with stronger evidence.
    pub fn role_of(&self, term: &str) -> TermRole {
        let is_instance = self.model.knows(term);
        let is_attribute = self.attributes.knows(term);
        match (is_instance, is_attribute) {
            (true, false) => TermRole::Instance,
            (false, true) => TermRole::Attribute,
            (true, true) => TermRole::Instance, // instance evidence is direct
            (false, false) => TermRole::Unknown,
        }
    }

    /// Conceptualize a mixed term set: naive-Bayes combination of each
    /// term's concept distribution, whatever its role (paper's
    /// "headquarter, apple → company").
    pub fn conceptualize(&self, terms: &[&str], k: usize) -> Vec<(String, f64)> {
        const EPS: f64 = 1e-4;
        let mut per_term: Vec<HashMap<String, f64>> = Vec::new();
        for term in terms {
            let dist: Vec<(String, f64)> = match self.role_of(term) {
                TermRole::Instance => self.model.typical_concepts(term, usize::MAX),
                TermRole::Attribute => self.attributes.concepts_of(term),
                TermRole::Unknown => Vec::new(),
            };
            if !dist.is_empty() {
                per_term.push(dist.into_iter().collect());
            }
        }
        if per_term.is_empty() {
            return Vec::new();
        }
        let mut candidates: HashMap<String, f64> = HashMap::new();
        for m in &per_term {
            for c in m.keys() {
                candidates.entry(c.clone()).or_insert(0.0);
            }
        }
        let mut scored: Vec<(String, f64)> = candidates
            .into_keys()
            .map(|c| {
                let s: f64 = per_term
                    .iter()
                    .map(|m| m.get(&c).copied().unwrap_or(EPS).max(EPS).ln())
                    .sum();
                (c, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        scored.truncate(k);
        let m = scored.first().map(|(_, s)| *s).unwrap_or(0.0);
        let total: f64 = scored.iter().map(|(_, s)| (s - m).exp()).sum();
        scored
            .into_iter()
            .map(|(c, s)| (c, (s - m).exp() / total))
            .collect()
    }
}

/// Build an [`AttributeIndex`] from harvested attribute rankings per
/// concept (the output of [`crate::attributes::harvest_attributes`]).
pub fn index_from_harvest(
    per_concept: &[(String, Vec<crate::attributes::RankedAttribute>)],
) -> AttributeIndex {
    let mut idx = AttributeIndex::new();
    for (concept, ranked) in per_concept {
        for r in ranked {
            idx.add(&r.attribute, concept, r.support as f64);
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    fn model() -> ProbaseModel {
        let mut g = ConceptGraph::new();
        let fruit = g.ensure_node("fruit", 0);
        let company = g.ensure_node("company", 0);
        let apple_f = g.ensure_node("apple", 0);
        let apple_c = g.ensure_node("Apple", 0);
        let banana = g.ensure_node("banana", 0);
        let ibm = g.ensure_node("IBM", 0);
        g.add_evidence(fruit, apple_f, 9);
        g.add_evidence(fruit, banana, 6);
        g.add_evidence(company, apple_c, 7);
        g.add_evidence(company, ibm, 9);
        ProbaseModel::new(g)
    }

    fn attrs() -> AttributeIndex {
        let mut idx = AttributeIndex::new();
        idx.add("headquarter", "company", 10.0);
        idx.add("ceo", "company", 8.0);
        idx.add("vitamin", "fruit", 6.0);
        idx.add("population", "country", 9.0);
        idx.add("population", "city", 5.0);
        idx
    }

    #[test]
    fn headquarter_apple_is_a_company() {
        let m = model();
        let mc = MixedConceptualizer::new(&m, attrs());
        // Capitalized "Apple" + attribute "headquarter" → company.
        let out = mc.conceptualize(&["headquarter", "Apple"], 2);
        assert_eq!(out[0].0, "company", "{out:?}");
        // Lowercase "apple" + "vitamin" → fruit.
        let out = mc.conceptualize(&["vitamin", "apple"], 2);
        assert_eq!(out[0].0, "fruit", "{out:?}");
    }

    #[test]
    fn roles_are_classified() {
        let m = model();
        let mc = MixedConceptualizer::new(&m, attrs());
        assert_eq!(mc.role_of("IBM"), TermRole::Instance);
        assert_eq!(mc.role_of("headquarter"), TermRole::Attribute);
        assert_eq!(mc.role_of("zorblax"), TermRole::Unknown);
    }

    #[test]
    fn attribute_only_queries_work() {
        let m = model();
        let mc = MixedConceptualizer::new(&m, attrs());
        let out = mc.conceptualize(&["headquarter", "ceo"], 1);
        assert_eq!(out[0].0, "company");
    }

    #[test]
    fn unknown_terms_are_ignored() {
        let m = model();
        let mc = MixedConceptualizer::new(&m, attrs());
        assert!(mc.conceptualize(&["zorblax"], 3).is_empty());
        let out = mc.conceptualize(&["zorblax", "headquarter"], 1);
        assert_eq!(out[0].0, "company");
    }

    #[test]
    fn index_from_harvest_roundtrip() {
        use crate::attributes::RankedAttribute;
        let per = vec![(
            "country".to_string(),
            vec![RankedAttribute {
                attribute: "population".into(),
                support: 5,
            }],
        )];
        let idx = index_from_harvest(&per);
        assert!(idx.knows("population"));
        assert_eq!(idx.concepts_of("population")[0].0, "country");
    }
}
