//! Attribute extraction (paper §5.3.1, Figure 12; Pasca \[25\]).
//!
//! Pasca's weakly-supervised harvester mines `"the <attribute> of
//! <instance>"` constructions, but needs hand-picked *seed instances* per
//! concept. Probase removes the manual step: the seeds are simply the
//! concept's most typical instances by `T(i|x)`. Figure 12 shows the
//! automatic seeds match hand-picked seed quality (88.3% vs 86.2% top-20
//! precision).
//!
//! This module implements the shared harvester plus both seeding
//! strategies; the evaluation compares their top-k precision.

use probase_corpus::attributes::AttributeMention;
use probase_prob::ProbaseModel;
use probase_text::tokenize;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A ranked attribute for a concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedAttribute {
    pub attribute: String,
    /// Number of seed-instance mentions supporting it.
    pub support: u32,
}

/// Parse `"the <attr> of <Instance>"` out of a sentence, if present.
/// Returns `(attribute, instance)`.
pub fn parse_attribute_mention(text: &str) -> Option<(String, String)> {
    let tokens = tokenize(text);
    let words: Vec<String> = tokens.iter().map(|t| t.text.clone()).collect();
    let lower: Vec<String> = words.iter().map(|w| w.to_lowercase()).collect();
    // find "the X of Y": X = words between "the" and "of" (1–3 words),
    // Y = capitalized-or-lowercase run after "of" up to a verb-ish word.
    for i in 0..lower.len() {
        if lower[i] != "the" {
            continue;
        }
        let Some(of_rel) = lower[i + 1..].iter().position(|w| w == "of") else {
            continue;
        };
        let of_idx = i + 1 + of_rel;
        if of_rel == 0 || of_rel > 3 || of_idx + 1 >= words.len() {
            continue;
        }
        let attr = lower[i + 1..of_idx].join(" ");
        // Instance: run of words after "of" until punctuation or a stop
        // word; keep original case.
        let mut inst_words = Vec::new();
        for w in &words[of_idx + 1..] {
            let wl = w.to_lowercase();
            if !w.chars().next().is_some_and(|c| c.is_alphanumeric()) {
                break;
            }
            if ["is", "was", "changed", "for", "said", "has"].contains(&wl.as_str()) {
                break;
            }
            inst_words.push(w.clone());
            if inst_words.len() >= 4 {
                break;
            }
        }
        if inst_words.is_empty() {
            continue;
        }
        return Some((attr, inst_words.join(" ")));
    }
    None
}

/// Harvest attributes for one concept given its seed instances: count how
/// often each attribute appears with a seed, rank by support.
pub fn harvest_attributes(mentions: &[AttributeMention], seeds: &[String]) -> Vec<RankedAttribute> {
    let seed_set: HashSet<&str> = seeds.iter().map(|s| s.as_str()).collect();
    let mut support: HashMap<String, u32> = HashMap::new();
    for m in mentions {
        let Some((attr, inst)) = parse_attribute_mention(&m.text) else {
            continue;
        };
        if seed_set.contains(inst.as_str()) {
            *support.entry(attr).or_insert(0) += 1;
        }
    }
    let mut out: Vec<RankedAttribute> = support
        .into_iter()
        .map(|(attribute, support)| RankedAttribute { attribute, support })
        .collect();
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(a.attribute.cmp(&b.attribute))
    });
    out
}

/// Probase seeding: the concept's most typical instances (automatic —
/// the paper's contribution over Pasca's manual seeds).
pub fn probase_seeds(model: &ProbaseModel, concept: &str, k: usize) -> Vec<String> {
    model
        .typical_instances(concept, k)
        .into_iter()
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    #[test]
    fn parses_attribute_constructions() {
        assert_eq!(
            parse_attribute_mention("the population of China is well known."),
            Some(("population".to_string(), "China".to_string()))
        );
        assert_eq!(
            parse_attribute_mention("what is the capital of France?"),
            Some(("capital".to_string(), "France".to_string()))
        );
        assert_eq!(
            parse_attribute_mention("see the fleet size of British Airways for details."),
            Some(("fleet size".to_string(), "British Airways".to_string()))
        );
        assert_eq!(parse_attribute_mention("no construction here"), None);
    }

    fn mention(text: &str, valid: bool) -> AttributeMention {
        AttributeMention {
            text: text.to_string(),
            instance: String::new(),
            attribute: String::new(),
            valid,
        }
    }

    #[test]
    fn harvest_counts_seed_mentions_only() {
        let mentions = vec![
            mention("the population of China is well known.", true),
            mention("the population of China is well known.", true),
            mention("the capital of China is well known.", true),
            mention("the rest of Narnia is well known.", false),
        ];
        let ranked = harvest_attributes(&mentions, &["China".to_string()]);
        assert_eq!(ranked[0].attribute, "population");
        assert_eq!(ranked[0].support, 2);
        assert!(!ranked.iter().any(|r| r.attribute == "rest"));
    }

    #[test]
    fn probase_seeds_are_typical_instances() {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        for (i, n) in ["China", "India", "Brazil"].iter().enumerate() {
            let node = g.ensure_node(n, 0);
            g.add_evidence(country, node, 9 - i as u32 * 2);
        }
        let m = ProbaseModel::new(g);
        let seeds = probase_seeds(&m, "country", 2);
        assert_eq!(seeds, vec!["China".to_string(), "India".to_string()]);
    }
}
