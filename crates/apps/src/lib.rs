//! # probase-apps
//!
//! The text-understanding applications of SIGMOD 2012 §5.3, all built on
//! the probabilistic query API of `probase-prob`:
//!
//! * [`search`] — **semantic web search** (§5.3.1): rewrite concept-
//!   bearing queries ("database conferences in asian cities") into
//!   typical-instance keyword queries ("SIGMOD in Beijing"), ranked by
//!   typicality and page-co-occurrence association.
//! * [`attributes`] — **attribute extraction** (§5.3.1, Fig. 12):
//!   Pasca-style harvesting with automatic typicality-ranked seeds
//!   instead of manual ones.
//! * [`shorttext`] — **short-text understanding** (§5.3.2): conceptualize
//!   tweet-sized text and cluster by concept vectors, beating bag-of-words.
//! * [`tables`] — **web-table understanding** (§5.3.2): infer column
//!   headers by abstraction voting and feed unknown cells back as
//!   enrichment.
//! * [`ner`] — **fine-grained NER** (§1's motivating task): tag entity
//!   mentions with specific concepts, using document context to pick the
//!   right sense.
//! * [`mixed`] — **mixed abstraction** (§1 footnote 1): conceptualize a
//!   mixture of instances and attributes ("headquarter, apple → company").
//! * [`taxsearch`] — **taxonomy keyword search** (§5.3 \[9\]): find the
//!   tightest concepts covering a keyword set.
//! * [`terms`] — the shared term spotter all of the above use.

pub mod attributes;
pub mod mixed;
pub mod ner;
pub mod search;
pub mod shorttext;
pub mod tables;
pub mod taxsearch;
pub mod terms;

pub use attributes::{harvest_attributes, parse_attribute_mention, probase_seeds, RankedAttribute};
pub use mixed::{index_from_harvest, AttributeIndex, MixedConceptualizer, TermRole};
pub use ner::{tag_entities, EntityTag, NerConfig};
pub use search::{
    pages_from_corpus, rewrite_query, semantic_search, Association, Document, MiniIndex,
    RewrittenQuery,
};
pub use shorttext::{
    bow_vector, concept_vector, conceptualize_text, kmeans, purity, FeatureSpace, SparseVector,
};
pub use tables::{
    apply_enrichments, infer_header, understand_tables, Column, Enrichment, HeaderInference,
};
pub use taxsearch::{ConceptHit, TaxonomyIndex};
pub use terms::{spot_terms, SpottedTerm, TermKind};
