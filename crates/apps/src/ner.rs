//! Fine-grained named-entity recognition (paper §1).
//!
//! The introduction motivates Probase with exactly this task: "it is
//! generally agreed that fine-grained NER (i.e., by using more specific
//! subcategories) is more beneficial for a wide range of web
//! applications". With a taxonomy in hand, NER is abstraction applied to
//! spans: spot the known terms, tag each with its most typical concept —
//! and, because `T(x|i)` is context-free, refine the pick with the other
//! entities in the same text (an entity surrounded by *countries* is more
//! likely tagged with its country sense than its city sense).

use crate::terms::{spot_terms, SpottedTerm, TermKind};
use probase_prob::ProbaseModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One tagged entity mention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityTag {
    /// Surface form as matched.
    pub surface: String,
    /// Fine-grained concept label.
    pub concept: String,
    /// Normalized confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Configuration for the NER tagger.
#[derive(Debug, Clone)]
pub struct NerConfig {
    /// Candidate concepts considered per entity.
    pub candidates_per_entity: usize,
    /// Weight of document-context agreement vs standalone typicality.
    pub context_weight: f64,
}

impl Default for NerConfig {
    fn default() -> Self {
        Self {
            candidates_per_entity: 6,
            context_weight: 0.5,
        }
    }
}

/// Tag the entities of `text` with fine-grained concepts.
pub fn tag_entities(model: &ProbaseModel, text: &str, cfg: &NerConfig) -> Vec<EntityTag> {
    let spans = spot_terms(model, text);
    let entities: Vec<&SpottedTerm> = spans
        .iter()
        .filter(|s| s.kind == TermKind::Instance)
        .collect();
    if entities.is_empty() {
        return Vec::new();
    }

    // Per-entity candidate concepts with standalone typicality.
    let candidates: Vec<Vec<(String, f64)>> = entities
        .iter()
        .map(|e| model.typical_concepts(&e.canonical, cfg.candidates_per_entity))
        .collect();

    // Document context: summed typicality of each concept over all
    // entities — the crowd votes on what this text is about.
    let mut context: HashMap<&str, f64> = HashMap::new();
    for cand in &candidates {
        for (c, t) in cand {
            *context.entry(c.as_str()).or_insert(0.0) += t;
        }
    }

    entities
        .iter()
        .zip(&candidates)
        .filter_map(|(e, cand)| {
            if cand.is_empty() {
                return None;
            }
            let scored: Vec<(&str, f64)> = cand
                .iter()
                .map(|(c, t)| {
                    let ctx = context.get(c.as_str()).copied().unwrap_or(0.0) - t;
                    (c.as_str(), t + cfg.context_weight * ctx)
                })
                .collect();
            let total: f64 = scored.iter().map(|(_, s)| s).sum();
            let (best, score) = scored
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .copied()?;
            Some(EntityTag {
                surface: e.surface.clone(),
                concept: best.to_string(),
                confidence: if total > 0.0 {
                    (score / total).clamp(0.0, 1.0)
                } else {
                    0.0
                },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    /// "Georgia"-style ambiguity: Paris is a city and a celebrity name.
    fn model() -> ProbaseModel {
        let mut g = ConceptGraph::new();
        let city = g.ensure_node("city", 0);
        let celeb = g.ensure_node("celebrity", 0);
        let country = g.ensure_node("country", 0);
        let paris = g.ensure_node("Paris", 0);
        g.add_evidence(city, paris, 6);
        g.add_evidence(celeb, paris, 5);
        for (i, n) in ["London", "Tokyo", "Berlin"].iter().enumerate() {
            let node = g.ensure_node(n, 0);
            g.add_evidence(city, node, 8 - i as u32);
        }
        for (i, n) in ["France", "Japan"].iter().enumerate() {
            let node = g.ensure_node(n, 0);
            g.add_evidence(country, node, 9 - i as u32);
        }
        let hilton = g.ensure_node("Nicky Hilton", 0);
        g.add_evidence(celeb, hilton, 7);
        ProbaseModel::new(g)
    }

    #[test]
    fn tags_unambiguous_entities() {
        let m = model();
        let tags = tag_entities(&m, "flights from London to Tokyo", &NerConfig::default());
        assert_eq!(tags.len(), 2);
        assert!(tags.iter().all(|t| t.concept == "city"), "{tags:?}");
        assert!(tags.iter().all(|t| t.confidence > 0.3));
    }

    #[test]
    fn context_disambiguates_paris() {
        let m = model();
        // Among cities, Paris is a city…
        let city_ctx = tag_entities(&m, "London, Paris and Tokyo", &NerConfig::default());
        let paris = city_ctx.iter().find(|t| t.surface == "Paris").unwrap();
        assert_eq!(paris.concept, "city", "{city_ctx:?}");
        // …next to a celebrity, the celebrity reading wins.
        let celeb_ctx = tag_entities(&m, "Paris and Nicky Hilton arrived", &NerConfig::default());
        let paris = celeb_ctx.iter().find(|t| t.surface == "Paris").unwrap();
        assert_eq!(paris.concept, "celebrity", "{celeb_ctx:?}");
    }

    #[test]
    fn unknown_text_yields_nothing() {
        let m = model();
        assert!(tag_entities(&m, "nothing to see here", &NerConfig::default()).is_empty());
    }

    #[test]
    fn zero_context_weight_uses_pure_typicality() {
        let m = model();
        let cfg = NerConfig {
            context_weight: 0.0,
            ..Default::default()
        };
        let tags = tag_entities(&m, "Paris and Nicky Hilton arrived", &cfg);
        let paris = tags.iter().find(|t| t.surface == "Paris").unwrap();
        // Standalone, the city sense has more evidence mass.
        assert_eq!(paris.concept, "city");
    }
}
