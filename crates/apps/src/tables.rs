//! Web-table understanding (paper §5.3.2, \[37\]).
//!
//! Given a column of cell values, infer the concept that should head it:
//! each cell votes for its typical concepts by `T(x|i)`, the concept with
//! the highest summed vote wins. Cells the taxonomy does not know yet can
//! then be *enriched back* into the taxonomy under the inferred concept —
//! the virtuous cycle the paper describes ("the information, once
//! understood, is used to enrich Probase").

use probase_prob::ProbaseModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A column of cell strings (header unknown).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    pub cells: Vec<String>,
}

/// The inferred header for a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeaderInference {
    /// Winning concept label.
    pub concept: String,
    /// Normalized vote share in `[0, 1]`.
    pub confidence: f64,
    /// Cells unknown to the taxonomy (candidates for enrichment).
    pub unknown_cells: Vec<String>,
}

/// Infer the concept heading a column. Returns `None` when no cell is
/// known to the taxonomy.
pub fn infer_header(
    model: &ProbaseModel,
    column: &Column,
    per_cell: usize,
) -> Option<HeaderInference> {
    let mut votes: HashMap<String, f64> = HashMap::new();
    let mut unknown = Vec::new();
    let mut known_cells = 0usize;
    for cell in &column.cells {
        let concepts = model.typical_concepts(cell, per_cell);
        if concepts.is_empty() {
            unknown.push(cell.clone());
            continue;
        }
        known_cells += 1;
        for (c, t) in concepts {
            *votes.entry(c).or_insert(0.0) += t;
        }
    }
    if known_cells == 0 {
        return None;
    }
    let (concept, best) = votes
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))?;
    Some(HeaderInference {
        concept,
        confidence: (best / known_cells as f64).clamp(0.0, 1.0),
        unknown_cells: unknown,
    })
}

/// Enrichment proposals: unknown cells to add under the inferred concept
/// (paper: "Instances that are not already in Probase are then added in
/// under the inferred concept").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Enrichment {
    pub concept: String,
    pub new_instances: Vec<String>,
}

/// Understand a batch of columns, producing header inferences and
/// enrichment proposals for confident columns.
pub fn understand_tables(
    model: &ProbaseModel,
    columns: &[Column],
    min_confidence: f64,
) -> (Vec<Option<HeaderInference>>, Vec<Enrichment>) {
    let mut inferences = Vec::with_capacity(columns.len());
    let mut enrichments = Vec::new();
    for col in columns {
        let inf = infer_header(model, col, 4);
        if let Some(h) = &inf {
            if h.confidence >= min_confidence && !h.unknown_cells.is_empty() {
                enrichments.push(Enrichment {
                    concept: h.concept.clone(),
                    new_instances: h.unknown_cells.clone(),
                });
            }
        }
        inferences.push(inf);
    }
    (inferences, enrichments)
}

/// Apply enrichment proposals back into a taxonomy graph: each new
/// instance is attached under the concept's largest sense with one unit
/// of evidence and the column's confidence as plausibility — the
/// "understand tables, then enrich Probase" loop of §5.3.2. Returns the
/// number of edges added.
pub fn apply_enrichments(
    graph: &mut probase_store::ConceptGraph,
    enrichments: &[Enrichment],
    confidence: f64,
) -> usize {
    let mut added = 0;
    for e in enrichments {
        let senses = graph.senses_of(&e.concept);
        let Some(&target) = senses.iter().find(|&&n| !graph.is_instance(n)) else {
            continue;
        };
        for inst in &e.new_instances {
            let node = graph.ensure_node(inst, 0);
            if node == target || !graph.is_instance(node) {
                continue; // never attach a concept as a table cell
            }
            if graph.edge(target, node).is_none() {
                graph.add_evidence(target, node, 1);
                graph.set_plausibility(target, node, confidence.clamp(0.0, 1.0));
                added += 1;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::ConceptGraph;

    fn model() -> ProbaseModel {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        let city = g.ensure_node("city", 0);
        for (i, name) in ["China", "India", "Brazil", "France"].iter().enumerate() {
            let n = g.ensure_node(name, 0);
            g.add_evidence(country, n, 10 - i as u32);
        }
        for (i, name) in ["Paris", "Tokyo", "Beijing"].iter().enumerate() {
            let n = g.ensure_node(name, 0);
            g.add_evidence(city, n, 8 - i as u32);
        }
        ProbaseModel::new(g)
    }

    fn col(cells: &[&str]) -> Column {
        Column {
            cells: cells.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn infers_country_column() {
        let m = model();
        let h = infer_header(&m, &col(&["China", "India", "Brazil"]), 3).unwrap();
        assert_eq!(h.concept, "country");
        assert!(h.confidence > 0.5);
        assert!(h.unknown_cells.is_empty());
    }

    #[test]
    fn unknown_cells_reported_for_enrichment() {
        let m = model();
        let h = infer_header(&m, &col(&["China", "India", "Wakanda"]), 3).unwrap();
        assert_eq!(h.concept, "country");
        assert_eq!(h.unknown_cells, vec!["Wakanda".to_string()]);
    }

    #[test]
    fn fully_unknown_column_is_none() {
        let m = model();
        assert!(infer_header(&m, &col(&["Wakanda", "Narnia"]), 3).is_none());
    }

    #[test]
    fn mixed_column_majority_wins() {
        let m = model();
        let h = infer_header(&m, &col(&["Paris", "Tokyo", "China"]), 3).unwrap();
        assert_eq!(h.concept, "city");
    }

    #[test]
    fn enrichment_feeds_back_into_the_graph() {
        let m = model();
        let cols = vec![col(&["China", "India", "Wakanda"])];
        let (_, enrichments) = understand_tables(&m, &cols, 0.2);
        // Rebuild a graph and apply.
        let mut g = probase_store::ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        for n in ["China", "India"] {
            let node = g.ensure_node(n, 0);
            g.add_evidence(country, node, 5);
        }
        let added = apply_enrichments(&mut g, &enrichments, 0.8);
        assert_eq!(added, 1);
        let wakanda = g.find_node("Wakanda", 0).expect("enriched node");
        let e = g.edge(country, wakanda).expect("enriched edge");
        assert_eq!(e.count, 1);
        assert!((e.plausibility - 0.8).abs() < 1e-12);
        // Idempotent: applying again adds nothing.
        assert_eq!(apply_enrichments(&mut g, &enrichments, 0.8), 0);
        // The model now knows the new instance.
        let m2 = probase_prob::ProbaseModel::new(g);
        assert!(m2.knows("Wakanda"));
    }

    #[test]
    fn understand_tables_produces_enrichments() {
        let m = model();
        let cols = vec![
            col(&["China", "India", "Wakanda"]),
            col(&["Paris", "Tokyo"]),
        ];
        let (inferences, enrichments) = understand_tables(&m, &cols, 0.2);
        assert_eq!(inferences.len(), 2);
        assert_eq!(enrichments.len(), 1);
        assert_eq!(enrichments[0].concept, "country");
        assert_eq!(enrichments[0].new_instances, vec!["Wakanda".to_string()]);
    }
}
