//! The stage-timing pipeline report behind `BENCH_PIPELINE.json`.
//!
//! [`scaling_profiles`] reruns the full pipeline at several corpus sizes,
//! each against its own isolated [`Registry`], and bundles the per-size
//! metric snapshots into one JSON document. CI's bench-smoke job writes
//! it as an artifact and runs [`validate_pipeline`] over it: the gate
//! fails the build if the report is structurally broken — a stage that
//! stopped being recorded, sizes out of order, or a pipeline that no
//! longer sees the sentences it was given — which is how an accidentally
//! deleted span or a silently skipped phase surfaces in CI rather than
//! three PRs later.

use crate::common::{eval_corpus, eval_world};
use probase_core::{ProbaseConfig, Simulation};
use probase_obs::{Json, Registry};

/// Stages that must appear (with at least one recorded span) in every
/// profile for the report to be considered healthy.
pub const REQUIRED_STAGES: &[&str] = &[
    "pipeline.extract",
    "pipeline.taxonomy",
    "pipeline.plausibility",
    "extract.iteration",
    "taxonomy.local_build",
    "taxonomy.horizontal_merge",
    "taxonomy.vertical_merge",
];

/// Run the pipeline once per corpus size and collect per-size metric
/// snapshots. Sizes are profiled in the order given; the gate requires
/// them strictly increasing.
pub fn scaling_profiles(sizes: &[usize]) -> Json {
    let profiles = sizes
        .iter()
        .map(|&n| {
            let registry = Registry::new();
            let sim = Simulation::run_observed(
                &eval_world(),
                &eval_corpus(n),
                &ProbaseConfig::paper(),
                &registry,
            );
            Json::obj(vec![
                ("sentences", Json::num(n as f64)),
                (
                    "distinct_pairs",
                    Json::num(sim.probase.extraction.knowledge.pair_count() as f64),
                ),
                ("report", registry.snapshot()),
            ])
        })
        .collect();
    Json::obj(vec![("profiles", Json::Arr(profiles))])
}

/// The CI gate over a [`scaling_profiles`] report. Checks:
///
/// 1. at least one profile exists;
/// 2. `sentences` is strictly increasing across profiles;
/// 3. every profile's report records ≥1 span for each of
///    [`REQUIRED_STAGES`];
/// 4. each profile's `extract.sentences_parsed` counter equals its
///    `sentences` (the pipeline actually saw the corpus it was given).
pub fn validate_pipeline(report: &Json) -> Result<(), String> {
    let profiles = report
        .get("profiles")
        .and_then(Json::as_arr)
        .ok_or("report has no 'profiles' array")?;
    if profiles.is_empty() {
        return Err("report has zero profiles".into());
    }
    let mut prev_sentences = 0u64;
    for (i, profile) in profiles.iter().enumerate() {
        let sentences = profile
            .get("sentences")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("profile {i}: missing 'sentences'"))?;
        if sentences <= prev_sentences {
            return Err(format!(
                "profile {i}: sentence counts must be strictly increasing \
                 ({sentences} after {prev_sentences})"
            ));
        }
        prev_sentences = sentences;
        let snapshot = profile
            .get("report")
            .ok_or_else(|| format!("profile {i}: missing 'report'"))?;
        let stages = snapshot
            .get("stages")
            .ok_or_else(|| format!("profile {i}: report has no 'stages' section"))?;
        for name in REQUIRED_STAGES {
            let calls = stages
                .get(name)
                .and_then(|s| s.get("calls"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            if calls == 0 {
                return Err(format!("profile {i}: stage {name:?} recorded no spans"));
            }
        }
        let parsed = snapshot
            .get("counters")
            .and_then(|c| c.get("extract.sentences_parsed"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if parsed != sentences {
            return Err(format!(
                "profile {i}: extract.sentences_parsed = {parsed}, expected {sentences}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_pass_their_own_gate() {
        let report = scaling_profiles(&[1_000, 2_000]);
        validate_pipeline(&report).expect("fresh profiles must validate");
        let profiles = report.get("profiles").and_then(Json::as_arr).unwrap();
        assert_eq!(profiles.len(), 2);
        // Profiles are isolated: the small run's counters don't bleed
        // into the large run's.
        let parsed = |p: &Json| {
            p.get("report")
                .and_then(|r| r.get("counters"))
                .and_then(|c| c.get("extract.sentences_parsed"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(parsed(&profiles[0]), 1_000);
        assert_eq!(parsed(&profiles[1]), 2_000);
    }

    #[test]
    fn gate_rejects_broken_reports() {
        assert!(validate_pipeline(&Json::obj(vec![])).is_err());
        assert!(
            validate_pipeline(&Json::obj(vec![("profiles", Json::Arr(vec![]))])).is_err(),
            "empty profile list must fail"
        );
        // Non-increasing sentence counts.
        let mut report = scaling_profiles(&[1_000]);
        if let Json::Obj(pairs) = &mut report {
            if let Json::Arr(profiles) = &mut pairs[0].1 {
                let dup = profiles[0].clone();
                profiles.push(dup);
            }
        }
        let err = validate_pipeline(&report).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn gate_rejects_missing_stage() {
        let mut report = scaling_profiles(&[1_000]);
        // Drop the stages section of the only profile.
        if let Json::Obj(pairs) = &mut report {
            if let Json::Arr(profiles) = &mut pairs[0].1 {
                if let Json::Obj(fields) = &mut profiles[0] {
                    for (k, v) in fields.iter_mut() {
                        if k == "report" {
                            if let Json::Obj(sections) = v {
                                sections.retain(|(name, _)| name != "stages");
                            }
                        }
                    }
                }
            }
        }
        let err = validate_pipeline(&report).unwrap_err();
        assert!(err.contains("stages"), "{err}");
    }

    #[test]
    fn report_round_trips_through_text() {
        let report = scaling_profiles(&[1_000]);
        let text = report.to_string();
        let parsed = probase_obs::json::parse(&text).expect("self-emitted JSON parses");
        validate_pipeline(&parsed).expect("round-tripped report still validates");
    }
}
