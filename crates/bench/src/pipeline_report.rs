//! The stage-timing pipeline report behind `BENCH_PIPELINE.json`.
//!
//! [`scaling_profiles`] reruns the full pipeline at several corpus sizes,
//! each against its own isolated [`Registry`], and bundles the per-size
//! metric snapshots into one JSON document. CI's bench-smoke job writes
//! it as an artifact and runs [`validate_pipeline`] over it: the gate
//! fails the build if the report is structurally broken — a stage that
//! stopped being recorded, sizes out of order, or a pipeline that no
//! longer sees the sentences it was given — which is how an accidentally
//! deleted span or a silently skipped phase surfaces in CI rather than
//! three PRs later.
//!
//! [`compare_to_baseline`] is the second, stricter gate: it holds a fresh
//! report against the committed `BENCH_PIPELINE.json` at the repo root.
//! Absolute timings are machine-dependent and never compared; instead the
//! gate checks the machine-independent trajectory facts — the size sweep,
//! the deterministic `distinct_pairs` scalars, the recorded stage set,
//! and (loosely) the taxonomy stage's share of pipeline time.

use crate::common::{eval_corpus, eval_world};
use probase_core::{ProbaseConfig, Simulation};
use probase_extract::SentenceExtraction;
use probase_obs::{Json, Registry};
use probase_store::snapshot;
use probase_taxonomy::{build_taxonomy, TaxonomyConfig};

/// Stages that must appear (with at least one recorded span) in every
/// profile for the report to be considered healthy.
pub const REQUIRED_STAGES: &[&str] = &[
    "pipeline.extract",
    "pipeline.taxonomy",
    "pipeline.plausibility",
    "extract.iteration",
    "taxonomy.local_build",
    "taxonomy.horizontal_merge",
    "taxonomy.vertical_merge",
];

/// Thread counts profiled by the `thread_scaling` section of the report.
pub const THREAD_SCALING: &[usize] = &[1, 2, 4];

/// Run the pipeline once per corpus size and collect per-size metric
/// snapshots. Sizes are profiled in the order given; the gate requires
/// them strictly increasing. The largest size's extracted sentences are
/// additionally rebuilt at each [`THREAD_SCALING`] thread count, timing
/// the taxonomy stage and re-checking that every thread count produces
/// the serial build byte-for-byte.
pub fn scaling_profiles(sizes: &[usize]) -> Json {
    let mut profiles = Vec::with_capacity(sizes.len());
    let mut largest_sentences: Vec<SentenceExtraction> = Vec::new();
    for &n in sizes {
        let registry = Registry::new();
        let sim = Simulation::run_observed(
            &eval_world(),
            &eval_corpus(n),
            &ProbaseConfig::paper(),
            &registry,
        );
        profiles.push(Json::obj(vec![
            ("sentences", Json::num(n as f64)),
            (
                "distinct_pairs",
                Json::num(sim.probase.extraction.knowledge.pair_count() as f64),
            ),
            ("report", registry.snapshot()),
        ]));
        largest_sentences = sim.probase.extraction.sentences;
    }
    Json::obj(vec![
        ("profiles", Json::Arr(profiles)),
        ("thread_scaling", thread_scaling(&largest_sentences)),
    ])
}

/// Time `build_taxonomy` over one extracted corpus at each
/// [`THREAD_SCALING`] thread count. `build_us` is wall time (machine
/// dependent — reported for trajectory inspection, never gated);
/// `identical_to_serial` is the determinism contract (machine
/// independent — the gate requires it `true` for every run).
fn thread_scaling(sentences: &[SentenceExtraction]) -> Json {
    let base = ProbaseConfig::paper().taxonomy;
    let serial = build_taxonomy(
        sentences,
        &TaxonomyConfig {
            threads: 1,
            ..base.clone()
        },
    );
    let serial_bytes = snapshot::to_bytes(&serial.graph).expect("encode");
    let runs = THREAD_SCALING
        .iter()
        .map(|&t| {
            let cfg = TaxonomyConfig {
                threads: t,
                ..base.clone()
            };
            let start = std::time::Instant::now();
            let built = build_taxonomy(sentences, &cfg);
            let build_us = start.elapsed().as_micros();
            let identical = built.stats == serial.stats
                && snapshot::to_bytes(&built.graph).expect("encode") == serial_bytes;
            Json::obj(vec![
                ("threads", Json::num(t as f64)),
                ("build_us", Json::num(build_us as f64)),
                ("identical_to_serial", Json::Bool(identical)),
            ])
        })
        .collect();
    Json::obj(vec![("runs", Json::Arr(runs))])
}

/// The CI gate over a [`scaling_profiles`] report. Checks:
///
/// 1. at least one profile exists;
/// 2. `sentences` is strictly increasing across profiles;
/// 3. every profile's report records ≥1 span for each of
///    [`REQUIRED_STAGES`];
/// 4. each profile's `extract.sentences_parsed` counter equals its
///    `sentences` (the pipeline actually saw the corpus it was given);
/// 5. the `thread_scaling` section has ≥1 run, strictly increasing
///    thread counts, and `identical_to_serial: true` on every run (the
///    parallel builder's determinism contract, re-proven on the actual
///    evaluation corpus every CI run).
pub fn validate_pipeline(report: &Json) -> Result<(), String> {
    let profiles = report
        .get("profiles")
        .and_then(Json::as_arr)
        .ok_or("report has no 'profiles' array")?;
    if profiles.is_empty() {
        return Err("report has zero profiles".into());
    }
    let mut prev_sentences = 0u64;
    for (i, profile) in profiles.iter().enumerate() {
        let sentences = profile
            .get("sentences")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("profile {i}: missing 'sentences'"))?;
        if sentences <= prev_sentences {
            return Err(format!(
                "profile {i}: sentence counts must be strictly increasing \
                 ({sentences} after {prev_sentences})"
            ));
        }
        prev_sentences = sentences;
        let snapshot = profile
            .get("report")
            .ok_or_else(|| format!("profile {i}: missing 'report'"))?;
        let stages = snapshot
            .get("stages")
            .ok_or_else(|| format!("profile {i}: report has no 'stages' section"))?;
        for name in REQUIRED_STAGES {
            let calls = stages
                .get(name)
                .and_then(|s| s.get("calls"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            if calls == 0 {
                return Err(format!("profile {i}: stage {name:?} recorded no spans"));
            }
        }
        let parsed = snapshot
            .get("counters")
            .and_then(|c| c.get("extract.sentences_parsed"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if parsed != sentences {
            return Err(format!(
                "profile {i}: extract.sentences_parsed = {parsed}, expected {sentences}"
            ));
        }
    }
    let runs = report
        .get("thread_scaling")
        .and_then(|t| t.get("runs"))
        .and_then(Json::as_arr)
        .ok_or("report has no 'thread_scaling.runs' array")?;
    if runs.is_empty() {
        return Err("thread_scaling has zero runs".into());
    }
    let mut prev_threads = 0u64;
    for (i, run) in runs.iter().enumerate() {
        let threads = run
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("thread_scaling run {i}: missing 'threads'"))?;
        if threads <= prev_threads {
            return Err(format!(
                "thread_scaling run {i}: thread counts must be strictly increasing \
                 ({threads} after {prev_threads})"
            ));
        }
        prev_threads = threads;
        if run.get("identical_to_serial").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "thread_scaling run {i} ({threads} threads): parallel build \
                 diverged from the serial build"
            ));
        }
    }
    Ok(())
}

/// The taxonomy stage's share of the three top-level pipeline stages'
/// total time, if the profile carries usable timings.
fn taxonomy_share(profile: &Json) -> Option<f64> {
    let stages = profile.get("report")?.get("stages")?;
    let total_us = |name: &str| -> Option<f64> { stages.get(name)?.get("total_us")?.as_f64() };
    let taxonomy = total_us("pipeline.taxonomy")?;
    let total = total_us("pipeline.extract")? + taxonomy + total_us("pipeline.plausibility")?;
    if total > 0.0 {
        Some(taxonomy / total)
    } else {
        None
    }
}

/// Sentence counts of a profile list, for sweep comparison.
fn profile_sizes(profiles: &[Json]) -> Vec<Option<u64>> {
    profiles
        .iter()
        .map(|p| p.get("sentences").and_then(Json::as_u64))
        .collect()
}

/// The perf-trajectory gate: hold a fresh [`scaling_profiles`] report
/// against the committed baseline (`BENCH_PIPELINE.json` at the repo
/// root). Returns advisory warnings on success.
///
/// Absolute timings vary by machine and are never compared. What the
/// gate does compare is machine-independent:
///
/// 1. **Sweep shape** — the baseline and fresh reports must profile the
///    same sentence counts in the same order, so the trajectory stays
///    comparable commit to commit.
/// 2. **Deterministic scalars** — each profile's `distinct_pairs` must
///    match the baseline exactly. The pipeline is seeded and
///    deterministic; any drift means extraction behavior changed, which
///    must be a deliberate (baseline-regenerating) decision.
/// 3. **Instrumentation coverage** — every stage the baseline recorded
///    must still record ≥1 span. Deleting a span silently would blind
///    the trajectory from that commit forward.
/// 4. **Taxonomy stage share** — the taxonomy stage's fraction of total
///    pipeline time must not exceed `2 × baseline share + 10pp`. Shares
///    are far more machine-stable than absolute times; the generous
///    bound only trips on order-of-magnitude events such as an
///    accidental serial fallback or a quadratic regression.
///
/// A baseline with `meta.seeded: true` (the committed seed predates any
/// reference-hardware run) arms only check 1 and returns a warning
/// asking for regeneration.
pub fn compare_to_baseline(fresh: &Json, baseline: &Json) -> Result<Vec<String>, String> {
    let fresh_profiles = fresh
        .get("profiles")
        .and_then(Json::as_arr)
        .ok_or("fresh report has no 'profiles' array")?;
    let base_profiles = baseline
        .get("profiles")
        .and_then(Json::as_arr)
        .ok_or("baseline has no 'profiles' array")?;
    let fresh_sizes = profile_sizes(fresh_profiles);
    let base_sizes = profile_sizes(base_profiles);
    if fresh_sizes != base_sizes {
        return Err(format!(
            "size sweep diverged from baseline: fresh {fresh_sizes:?} vs \
             baseline {base_sizes:?} — rerun with the baseline's --sizes, or \
             regenerate BENCH_PIPELINE.json if the sweep change is deliberate"
        ));
    }
    let mut warnings = Vec::new();
    let seeded = baseline
        .get("meta")
        .and_then(|m| m.get("seeded"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    if seeded {
        warnings.push(
            "baseline is a structural seed (meta.seeded: true); scalar and \
             stage-share checks are unarmed — regenerate BENCH_PIPELINE.json \
             on reference hardware to arm them"
                .into(),
        );
        return Ok(warnings);
    }
    for (i, (fresh_p, base_p)) in fresh_profiles.iter().zip(base_profiles).enumerate() {
        let fresh_pairs = fresh_p.get("distinct_pairs").and_then(Json::as_u64);
        let base_pairs = base_p
            .get("distinct_pairs")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("baseline profile {i}: missing 'distinct_pairs'"))?;
        if fresh_pairs != Some(base_pairs) {
            return Err(format!(
                "profile {i}: distinct_pairs = {fresh_pairs:?}, baseline has \
                 {base_pairs} — the deterministic pipeline changed behavior; \
                 regenerate BENCH_PIPELINE.json if this is deliberate"
            ));
        }
        let base_stages = match base_p.get("report").and_then(|r| r.get("stages")) {
            Some(Json::Obj(pairs)) => pairs,
            _ => return Err(format!("baseline profile {i}: missing report.stages")),
        };
        let fresh_stages = fresh_p.get("report").and_then(|r| r.get("stages"));
        for (name, _) in base_stages {
            let calls = fresh_stages
                .and_then(|s| s.get(name))
                .and_then(|s| s.get("calls"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            if calls == 0 {
                return Err(format!(
                    "profile {i}: stage {name:?} is in the baseline but \
                     recorded no spans in the fresh report"
                ));
            }
        }
        match (taxonomy_share(fresh_p), taxonomy_share(base_p)) {
            (Some(fresh_share), Some(base_share)) => {
                let bound = 2.0 * base_share + 0.10;
                if fresh_share > bound {
                    return Err(format!(
                        "profile {i}: taxonomy stage share {:.1}% exceeds the \
                         trajectory bound {:.1}% (baseline {:.1}%)",
                        100.0 * fresh_share,
                        100.0 * bound,
                        100.0 * base_share
                    ));
                }
            }
            _ => warnings.push(format!(
                "profile {i}: stage timings too small to compare shares; \
                 skipping the share check"
            )),
        }
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_pass_their_own_gate() {
        let report = scaling_profiles(&[1_000, 2_000]);
        validate_pipeline(&report).expect("fresh profiles must validate");
        let profiles = report.get("profiles").and_then(Json::as_arr).unwrap();
        assert_eq!(profiles.len(), 2);
        // Profiles are isolated: the small run's counters don't bleed
        // into the large run's.
        let parsed = |p: &Json| {
            p.get("report")
                .and_then(|r| r.get("counters"))
                .and_then(|c| c.get("extract.sentences_parsed"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(parsed(&profiles[0]), 1_000);
        assert_eq!(parsed(&profiles[1]), 2_000);
    }

    #[test]
    fn gate_rejects_broken_reports() {
        assert!(validate_pipeline(&Json::obj(vec![])).is_err());
        assert!(
            validate_pipeline(&Json::obj(vec![("profiles", Json::Arr(vec![]))])).is_err(),
            "empty profile list must fail"
        );
        // Non-increasing sentence counts.
        let mut report = scaling_profiles(&[1_000]);
        if let Json::Obj(pairs) = &mut report {
            if let Json::Arr(profiles) = &mut pairs[0].1 {
                let dup = profiles[0].clone();
                profiles.push(dup);
            }
        }
        let err = validate_pipeline(&report).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn gate_rejects_missing_stage() {
        let mut report = scaling_profiles(&[1_000]);
        // Drop the stages section of the only profile.
        if let Json::Obj(pairs) = &mut report {
            if let Json::Arr(profiles) = &mut pairs[0].1 {
                if let Json::Obj(fields) = &mut profiles[0] {
                    for (k, v) in fields.iter_mut() {
                        if k == "report" {
                            if let Json::Obj(sections) = v {
                                sections.retain(|(name, _)| name != "stages");
                            }
                        }
                    }
                }
            }
        }
        let err = validate_pipeline(&report).unwrap_err();
        assert!(err.contains("stages"), "{err}");
    }

    #[test]
    fn report_round_trips_through_text() {
        let report = scaling_profiles(&[1_000]);
        let text = report.to_string();
        let parsed = probase_obs::json::parse(&text).expect("self-emitted JSON parses");
        validate_pipeline(&parsed).expect("round-tripped report still validates");
    }

    /// Navigate to a mutable object field, panicking on shape mismatch
    /// (tests construct the shapes they mutate).
    fn field_mut<'a>(j: &'a mut Json, key: &str) -> &'a mut Json {
        match j {
            Json::Obj(pairs) => {
                &mut pairs
                    .iter_mut()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("missing key {key:?}"))
                    .1
            }
            _ => panic!("not an object"),
        }
    }

    fn profile_mut(report: &mut Json, i: usize) -> &mut Json {
        match field_mut(report, "profiles") {
            Json::Arr(ps) => &mut ps[i],
            _ => panic!("profiles is not an array"),
        }
    }

    fn set_total_us(report: &mut Json, i: usize, stage: &str, us: f64) {
        let stages = field_mut(field_mut(profile_mut(report, i), "report"), "stages");
        *field_mut(field_mut(stages, stage), "total_us") = Json::num(us);
    }

    #[test]
    fn gate_rejects_diverged_thread_scaling_run() {
        let mut report = scaling_profiles(&[1_000]);
        let runs = field_mut(field_mut(&mut report, "thread_scaling"), "runs");
        if let Json::Arr(runs) = runs {
            *field_mut(&mut runs[1], "identical_to_serial") = Json::Bool(false);
        } else {
            panic!("runs is not an array");
        }
        let err = validate_pipeline(&report).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn baseline_gate_accepts_identical_run() {
        let report = scaling_profiles(&[1_000]);
        let warnings =
            compare_to_baseline(&report, &report).expect("a run must pass against itself");
        // Timings at this scale are real, so the share check is armed
        // and a self-comparison produces no warnings.
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn seeded_baseline_checks_sweep_shape_only() {
        let report = scaling_profiles(&[1_000]);
        let seeded = Json::obj(vec![
            ("meta", Json::obj(vec![("seeded", Json::Bool(true))])),
            (
                "profiles",
                Json::Arr(vec![Json::obj(vec![("sentences", Json::num(1_000.0))])]),
            ),
        ]);
        let warnings = compare_to_baseline(&report, &seeded).expect("seed baseline must pass");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("seed"), "{warnings:?}");
        // Even a seeded baseline pins the sweep itself.
        let wrong_sizes = Json::obj(vec![
            ("meta", Json::obj(vec![("seeded", Json::Bool(true))])),
            (
                "profiles",
                Json::Arr(vec![Json::obj(vec![("sentences", Json::num(2_000.0))])]),
            ),
        ]);
        let err = compare_to_baseline(&report, &wrong_sizes).unwrap_err();
        assert!(err.contains("size sweep"), "{err}");
    }

    #[test]
    fn baseline_gate_rejects_scalar_drift() {
        let baseline = scaling_profiles(&[1_000]);
        let mut fresh = baseline.clone();
        *field_mut(profile_mut(&mut fresh, 0), "distinct_pairs") = Json::num(1.0);
        let err = compare_to_baseline(&fresh, &baseline).unwrap_err();
        assert!(err.contains("distinct_pairs"), "{err}");
    }

    #[test]
    fn baseline_gate_rejects_dropped_stage() {
        let baseline = scaling_profiles(&[1_000]);
        let mut fresh = baseline.clone();
        let stages = field_mut(field_mut(profile_mut(&mut fresh, 0), "report"), "stages");
        if let Json::Obj(pairs) = stages {
            pairs.retain(|(name, _)| name != "extract.iteration");
        }
        let err = compare_to_baseline(&fresh, &baseline).unwrap_err();
        assert!(err.contains("extract.iteration"), "{err}");
    }

    #[test]
    fn baseline_gate_bounds_taxonomy_share() {
        let mut baseline = scaling_profiles(&[1_000]);
        // Pin both reports' timings so the shares are exact: baseline
        // taxonomy share ≈ 0.05% (bound ≈ 10.1%), fresh share ≈ 33%.
        for stage in ["pipeline.extract", "pipeline.plausibility"] {
            set_total_us(&mut baseline, 0, stage, 1_000.0);
        }
        set_total_us(&mut baseline, 0, "pipeline.taxonomy", 1.0);
        let mut fresh = baseline.clone();
        set_total_us(&mut fresh, 0, "pipeline.taxonomy", 1_000.0);
        let err = compare_to_baseline(&fresh, &baseline).unwrap_err();
        assert!(err.contains("share"), "{err}");
        // The baseline passing against itself shows the bound is not
        // trivially violated by equal shares.
        assert!(compare_to_baseline(&baseline, &baseline).is_ok());
    }
}
