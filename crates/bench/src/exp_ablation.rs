//! Ablation experiments (DESIGN.md AB1–AB3): the design choices the paper
//! argues for, measured.

use crate::common::banner;
use probase_baselines::{extract_syntactic, SyntacticConfig};
use probase_core::Simulation;
use probase_eval::{render_table, Judge, Precision};
use probase_taxonomy::{build_local_taxonomies, AbsoluteOverlap, Jaccard, MergeState, Similarity};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// AB1 — Theorem 2: horizontal-first minimizes merge operations.
/// Runs the operational engine on a subsample of real local taxonomies
/// under the optimal order and under random orders.
pub fn ablation_merge_order(sim: &Simulation, subsample: usize, random_runs: usize) -> String {
    let head = banner(
        "AB1",
        "Theorem 2 ablation — merge operation counts by schedule",
    );
    let (locals, _interner) = build_local_taxonomies(&sim.probase.extraction.sentences);
    // The generic engine is O(n²); subsample deterministically.
    let locals: Vec<_> = locals
        .into_iter()
        .filter(|l| l.children.len() >= 2)
        .take(subsample)
        .collect();
    let sim_fn = AbsoluteOverlap { delta: 2 };

    let mut hf = MergeState::from_locals(&locals);
    let hf_ops = hf.run_horizontal_first(&sim_fn);
    let hf_canon = hf.canonical();

    let mut rows = vec![vec![
        "horizontal-first (paper)".into(),
        hf_ops.to_string(),
        "reference".into(),
    ]];
    let mut all_equal = true;
    let mut worst = hf_ops;
    for seed in 0..random_runs as u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut st = MergeState::from_locals(&locals);
        let ops = st.run_with(&sim_fn, |ops| rng.gen_range(0..ops.len()));
        all_equal &= st.canonical() == hf_canon;
        worst = worst.max(ops);
        rows.push(vec![
            format!("random order (seed {seed})"),
            ops.to_string(),
            if ops >= hf_ops {
                "≥ optimal".into()
            } else {
                "VIOLATION".to_string()
            },
        ]);
    }
    let table = render_table(&["schedule", "operations", "vs Theorem 2"], &rows);
    format!(
        "{head}{table}({} local taxonomies)\n\
         Theorem 1 (order-independent result): {}\n\
         Theorem 2 (horizontal-first minimal, {hf_ops} vs worst {worst}): {}\n",
        locals.len(),
        if all_equal { "HOLDS" } else { "VIOLATED" },
        if worst >= hf_ops { "HOLDS" } else { "VIOLATED" },
    )
}

/// AB2 — the similarity-function choice (paper §3.5): absolute overlap
/// satisfies Property 4; Jaccard does not. Counts monotonicity violations
/// over random set pairs and reproduces the paper's worked example.
pub fn ablation_similarity(samples: usize) -> String {
    let head = banner(
        "AB2",
        "Similarity ablation — absolute overlap vs Jaccard (Property 4)",
    );
    let mut rng = SmallRng::seed_from_u64(35);
    let abs = AbsoluteOverlap { delta: 2 };
    let jac = Jaccard { threshold: 0.5 };
    let mut abs_viol = 0usize;
    let mut jac_viol = 0usize;
    for _ in 0..samples {
        let set = |rng: &mut SmallRng, n: usize| -> BTreeSet<probase_store::Symbol> {
            (0..n)
                .map(|_| probase_store::Symbol(rng.gen_range(0..18)))
                .collect()
        };
        let na = rng.gen_range(1..8);
        let a = set(&mut rng, na);
        let nb = rng.gen_range(1..8);
        let b = set(&mut rng, nb);
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        for _ in 0..rng.gen_range(1..6) {
            a2.insert(probase_store::Symbol(rng.gen_range(0..30)));
            b2.insert(probase_store::Symbol(rng.gen_range(0..30)));
        }
        if abs.similar(&a, &b) && !abs.similar(&a2, &b2) {
            abs_viol += 1;
        }
        if jac.similar(&a, &b) && !jac.similar(&a2, &b2) {
            jac_viol += 1;
        }
    }
    let table = render_table(
        &["similarity", "Property 4 violations", "rate"],
        &[
            vec![
                "absolute overlap (δ=2)".into(),
                abs_viol.to_string(),
                format!("{:.1}%", 100.0 * abs_viol as f64 / samples as f64),
            ],
            vec![
                "Jaccard (τ=0.5)".into(),
                jac_viol.to_string(),
                format!("{:.1}%", 100.0 * jac_viol as f64 / samples as f64),
            ],
        ],
    );
    format!(
        "{head}{table}({samples} random superset pairs)\n\
         paper's worked example: J(A,B)=0.5 similar but J(A,C)=0.43 not, with A ⊆ C — absurd\n\
         shape check: absolute overlap has zero violations = {}\n",
        if abs_viol == 0 && jac_viol > 0 {
            "YES"
        } else {
            "NO"
        }
    )
}

/// AB3 — semantic vs syntactic iteration (paper §2.1): precision and
/// true-pair yield of Probase against the syntactic family on the same
/// corpus.
pub fn ablation_iteration(sim: &Simulation) -> String {
    let head = banner(
        "AB3",
        "Semantic vs syntactic iteration — precision and true-pair yield",
    );
    let judge = Judge::new(&sim.world);
    let g = &sim.probase.extraction.knowledge;

    type PairIter<'a> = Box<dyn Iterator<Item = (String, String)> + 'a>;
    let judge_pairs = |pairs: PairIter<'_>| -> (Precision, usize) {
        let mut p = Precision::default();
        for (x, y) in pairs {
            p.add(judge.pair_valid(&x, &y));
        }
        let correct = p.correct;
        (p, correct)
    };

    let (probase_p, probase_true) =
        judge_pairs(Box::new(g.pairs().map(|(x, y, _)| {
            (g.resolve(x).to_string(), g.resolve(y).to_string())
        })));
    let mut rows = vec![vec![
        "Probase (semantic iteration)".into(),
        format!("{:.1}%", 100.0 * probase_p.ratio()),
        probase_p.total.to_string(),
        probase_true.to_string(),
    ]];
    for (name, cfg) in [
        (
            "syntactic closest-NP",
            SyntacticConfig {
                bootstrap_patterns: false,
                ..Default::default()
            },
        ),
        (
            "syntactic + proper-only",
            SyntacticConfig {
                proper_only: true,
                bootstrap_patterns: false,
                ..Default::default()
            },
        ),
        ("syntactic + bootstrapping", SyntacticConfig::default()),
    ] {
        let out = extract_syntactic(&sim.corpus, &sim.world.lexicon, &cfg);
        let (p, t) = judge_pairs(Box::new(out.pairs.keys().cloned()));
        rows.push(vec![
            name.into(),
            format!("{:.1}%", 100.0 * p.ratio()),
            p.total.to_string(),
            t.to_string(),
        ]);
    }
    let table = render_table(
        &["system", "precision", "distinct pairs", "true pairs found"],
        &rows,
    );
    format!(
        "{head}{table}shape check: semantic iteration dominates on precision = {}\n",
        if rows[1..].iter().all(|r| {
            let p: f64 = r[1].trim_end_matches('%').parse().unwrap_or(100.0);
            100.0 * probase_p.ratio() > p
        }) {
            "YES"
        } else {
            "NO"
        }
    )
}

/// AB4 — plausibility model comparison: Naive-Bayes + noisy-or (Eq. 1–2)
/// vs the unsupervised Urns redundancy model vs raw counts. Measures how
/// well each score separates ground-truth-valid from invalid pairs
/// (pairwise ranking accuracy, i.e. AUC).
pub fn ablation_plausibility(sim: &Simulation) -> String {
    use probase_core::seed_from_world;
    use probase_prob::{compute_plausibility, EvidenceModel, PlausibilityConfig, UrnsModel};

    let head = banner(
        "AB4",
        "Plausibility ablation — noisy-or (Eq. 1–2) vs Urns vs raw count",
    );
    let judge = Judge::new(&sim.world);
    let g = &sim.probase.extraction.knowledge;

    // Ground truth labels per distinct pair.
    let pairs: Vec<(String, String, u32, bool)> = g
        .pairs()
        .map(|(x, y, n)| {
            let (xs, ys) = (g.resolve(x).to_string(), g.resolve(y).to_string());
            let ok = judge.pair_valid(&xs, &ys);
            (xs, ys, n, ok)
        })
        .collect();

    // Model scores.
    let seed = seed_from_world(&sim.world);
    let nb = EvidenceModel::fit(&sim.probase.extraction.evidence, &seed);
    let noisy = compute_plausibility(
        &sim.probase.extraction.evidence,
        g,
        &nb,
        &PlausibilityConfig::default(),
    );
    let urns = UrnsModel::fit_knowledge(g, 200);

    type JudgedPair = (String, String, u32, bool);
    let auc = |score: &dyn Fn(&JudgedPair) -> f64| -> f64 {
        // Exact pairwise ranking accuracy over a deterministic sample.
        let valid: Vec<f64> = pairs
            .iter()
            .filter(|p| p.3)
            .take(2_000)
            .map(score)
            .collect();
        let invalid: Vec<f64> = pairs
            .iter()
            .filter(|p| !p.3)
            .take(2_000)
            .map(score)
            .collect();
        if valid.is_empty() || invalid.is_empty() {
            return 0.5;
        }
        let mut wins = 0.0;
        for v in &valid {
            for i in &invalid {
                wins += if v > i {
                    1.0
                } else if v == i {
                    0.5
                } else {
                    0.0
                };
            }
        }
        wins / (valid.len() * invalid.len()) as f64
    };

    let auc_noisy = auc(&|p| noisy.get(&p.0, &p.1));
    let auc_urns = auc(&|p| urns.plausibility(p.2));
    let auc_count = auc(&|p| p.2 as f64);

    let table = render_table(
        &["plausibility model", "ranking accuracy (AUC)", "notes"],
        &[
            vec![
                "Naive Bayes + noisy-or (paper Eq. 1-2)".into(),
                format!("{auc_noisy:.3}"),
                "supervised by seed taxonomy".into(),
            ],
            vec![
                "Urns (Poisson-mixture EM)".into(),
                format!("{auc_urns:.3}"),
                format!(
                    "π={:.2} λc={:.1} λe={:.1}",
                    urns.pi, urns.lambda_correct, urns.lambda_error
                ),
            ],
            vec![
                "raw evidence count".into(),
                format!("{auc_count:.3}"),
                "no model".into(),
            ],
        ],
    );
    let n_valid = pairs.iter().filter(|p| p.3).count();
    format!(
        "{head}{table}({} pairs judged: {} valid, {} invalid)\n\
         shape check: both probabilistic models beat chance (0.5) = {}\n",
        pairs.len(),
        n_valid,
        pairs.len() - n_valid,
        if auc_noisy > 0.6 && auc_urns > 0.6 {
            "YES"
        } else {
            "NO"
        }
    )
}

/// AB5 — similarity threshold δ sweep: sense separation vs fragmentation.
/// The paper fixes δ implicitly; this shows the trade-off it navigates.
pub fn ablation_delta(sim: &Simulation) -> String {
    use probase_taxonomy::{build_taxonomy, TaxonomyConfig};

    let head = banner(
        "AB5",
        "δ sweep — homograph separation vs sense fragmentation",
    );
    // Homograph labels with at least two populated senses in the world.
    let mut by_label: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for c in sim
        .world
        .concepts
        .iter()
        .filter(|c| !c.instances.is_empty())
    {
        *by_label.entry(c.label.as_str()).or_default() += 1;
    }
    let homographs: Vec<&str> = by_label
        .iter()
        .filter(|(_, &n)| n >= 2)
        .map(|(&l, _)| l)
        .collect();

    let mut rows = Vec::new();
    for delta in [1usize, 2, 3, 4] {
        let built = build_taxonomy(
            &sim.probase.extraction.sentences,
            &TaxonomyConfig {
                delta,
                ..Default::default()
            },
        );
        let graph = &built.graph;
        // Separation: homograph labels that kept >= 2 populated senses.
        let separated = homographs
            .iter()
            .filter(|l| {
                graph
                    .senses_of(l)
                    .iter()
                    .filter(|&&n| !graph.is_instance(n) && graph.child_count(n) >= 2)
                    .count()
                    >= 2
            })
            .count();
        // Fragmentation: mean concept senses per extracted label.
        let concepts = graph.concepts().count();
        let labels: std::collections::HashSet<&str> =
            graph.concepts().map(|n| graph.label(n)).collect();
        let frag = concepts as f64 / labels.len().max(1) as f64;
        rows.push(vec![
            delta.to_string(),
            format!("{separated}/{}", homographs.len()),
            format!("{frag:.3}"),
            built.stats.senses.to_string(),
            built.stats.vertical_links.to_string(),
        ]);
    }
    let table = render_table(
        &[
            "δ",
            "homographs separated",
            "senses per label",
            "total senses",
            "vertical links",
        ],
        &rows,
    );
    format!(
        "{head}{table}trade-off: δ=1 merges senses on one shared (possibly noisy) child;\n\
         large δ fragments concepts into many small senses. The shipped default is δ=2.\n"
    )
}

/// AB6 — corpus-cleanliness sweep: extraction precision and the value of
/// the probabilistic layer across encyclopedia-, web-, and forum-grade
/// corpora. The paper's robustness claim ("live with noisy data and make
/// the best use of it", §4) predicts precision degrades gracefully and
/// plausibility separates noise best exactly where noise is worst.
pub fn ablation_corpus_profiles(sentences: usize) -> String {
    use probase_core::{seed_from_world, ProbaseConfig, Simulation};
    use probase_corpus::{CorpusConfig, WorldConfig};
    use probase_prob::{compute_plausibility, EvidenceModel, PlausibilityConfig};

    let head = banner(
        "AB6",
        "Corpus-cleanliness sweep — precision and plausibility value by profile",
    );
    let world_cfg = WorldConfig {
        seed: 77,
        filler_concepts: 400,
        ..WorldConfig::default()
    };
    let profiles: Vec<(&str, CorpusConfig)> = vec![
        ("encyclopedia", CorpusConfig::encyclopedia(77, sentences)),
        (
            "web (default)",
            CorpusConfig {
                seed: 77,
                sentences,
                ..CorpusConfig::default()
            },
        ),
        ("forum", CorpusConfig::forum(77, sentences)),
    ];
    let mut rows = Vec::new();
    let mut precisions = Vec::new();
    for (name, corpus_cfg) in profiles {
        let sim = Simulation::run(&world_cfg, &corpus_cfg, &ProbaseConfig::paper());
        let judge = Judge::new(&sim.world);
        let g = &sim.probase.extraction.knowledge;
        let mut p = Precision::default();
        let mut judged: Vec<(f64, bool)> = Vec::new();
        let seed = seed_from_world(&sim.world);
        let nb = EvidenceModel::fit(&sim.probase.extraction.evidence, &seed);
        let table = compute_plausibility(
            &sim.probase.extraction.evidence,
            g,
            &nb,
            &PlausibilityConfig::default(),
        );
        for (x, y, _) in g.pairs() {
            let (xs, ys) = (g.resolve(x), g.resolve(y));
            let ok = judge.pair_valid(xs, ys);
            p.add(ok);
            judged.push((table.get(xs, ys), ok));
        }
        // AUC of plausibility on this profile.
        let valid: Vec<f64> = judged
            .iter()
            .filter(|(_, ok)| *ok)
            .map(|(s, _)| *s)
            .take(1500)
            .collect();
        let invalid: Vec<f64> = judged
            .iter()
            .filter(|(_, ok)| !*ok)
            .map(|(s, _)| *s)
            .take(1500)
            .collect();
        let auc = if valid.is_empty() || invalid.is_empty() {
            0.5
        } else {
            let mut wins = 0.0;
            for v in &valid {
                for i in &invalid {
                    wins += if v > i {
                        1.0
                    } else if v == i {
                        0.5
                    } else {
                        0.0
                    };
                }
            }
            wins / (valid.len() * invalid.len()) as f64
        };
        precisions.push(p.ratio());
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * p.ratio()),
            p.total.to_string(),
            format!("{auc:.3}"),
        ]);
    }
    let table = render_table(
        &[
            "corpus profile",
            "extraction precision",
            "distinct pairs",
            "plausibility AUC",
        ],
        &rows,
    );
    let graceful = precisions.windows(2).all(|w| w[0] >= w[1] - 0.02);
    format!(
        "{head}{table}shape check: precision degrades gracefully from encyclopedia to forum = {}\n",
        if graceful { "YES" } else { "NO" }
    )
}

/// AB7 — the plausibility dividend: filter Γ at increasing plausibility
/// thresholds and watch precision rise as recall falls. This is what
/// "living with noisy data" (§4) buys: the noise stays *in* the
/// knowledgebase, flagged, and each application picks its own trade-off.
pub fn ablation_pr_curve(sim: &Simulation) -> String {
    use probase_core::seed_from_world;
    use probase_eval::pr_curve;
    use probase_prob::{compute_plausibility, EvidenceModel, PlausibilityConfig};

    let head = banner(
        "AB7",
        "Plausibility thresholding — precision/recall trade-off",
    );
    let judge = Judge::new(&sim.world);
    let g = &sim.probase.extraction.knowledge;
    let seed = seed_from_world(&sim.world);
    let nb = EvidenceModel::fit(&sim.probase.extraction.evidence, &seed);
    let table = compute_plausibility(
        &sim.probase.extraction.evidence,
        g,
        &nb,
        &PlausibilityConfig::default(),
    );
    let scored: Vec<(f64, bool)> = g
        .pairs()
        .map(|(x, y, _)| {
            let (xs, ys) = (g.resolve(x), g.resolve(y));
            (table.get(xs, ys), judge.pair_valid(xs, ys))
        })
        .collect();
    let thresholds = [0.0, 0.5, 0.7, 0.9, 0.97, 0.995];
    let curve = pr_curve(&scored, &thresholds);
    let mut rows = Vec::new();
    for p in &curve {
        rows.push(vec![
            format!("{:.3}", p.threshold),
            format!("{:.1}%", 100.0 * p.precision),
            format!("{:.1}%", 100.0 * p.recall),
            p.kept.to_string(),
        ]);
    }
    let out = render_table(
        &[
            "plausibility ≥",
            "precision",
            "recall (of valid)",
            "pairs kept",
        ],
        &rows,
    );
    let monotone_p = curve
        .windows(2)
        .all(|w| w[1].precision >= w[0].precision - 0.02);
    let falling_r = curve.windows(2).all(|w| w[1].recall <= w[0].recall + 1e-9);
    format!(
        "{head}{out}shape check: precision rises while recall falls along the sweep = {}\n",
        if monotone_p && falling_r { "YES" } else { "NO" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{eval_corpus, eval_world};
    use probase_core::ProbaseConfig;

    fn small_sim() -> Simulation {
        let mut w = eval_world();
        w.filler_concepts = 100;
        Simulation::run(&w, &eval_corpus(2_500), &ProbaseConfig::paper())
    }

    #[test]
    fn theorem_ablation_holds() {
        let sim = small_sim();
        let r = ablation_merge_order(&sim, 60, 3);
        assert!(
            r.contains("Theorem 1 (order-independent result): HOLDS"),
            "{r}"
        );
        assert!(r.contains("Theorem 2"), "{r}");
        assert!(!r.contains("VIOLATION"), "{r}");
    }

    #[test]
    fn similarity_ablation_shows_jaccard_violations() {
        let r = ablation_similarity(3_000);
        assert!(r.contains("= YES"), "{r}");
    }

    #[test]
    fn iteration_ablation_probase_wins() {
        let sim = small_sim();
        let r = ablation_iteration(&sim);
        assert!(r.contains("= YES"), "{r}");
    }
}
