//! AB6: corpus-cleanliness sweep.
fn main() {
    print!(
        "{}",
        probase_bench::exp_ablation::ablation_corpus_profiles(40_000)
    );
}
