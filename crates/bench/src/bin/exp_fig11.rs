//! Regenerates paper Figure 11 (precision per iteration).
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_precision::fig11(&sim));
}
