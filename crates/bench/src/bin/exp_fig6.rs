//! Regenerates paper Figure 6 (taxonomy coverage of top-k queries).
use probase_bench::common::standard_simulation;
use probase_bench::exp_scale::{fig6, query_log};

fn main() {
    let sim = standard_simulation(80_000);
    let log = query_log(&sim, 100_000);
    print!("{}", fig6(&sim, &log));
}
