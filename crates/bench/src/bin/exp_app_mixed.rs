//! A5: mixed instance+attribute abstraction.
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_apps::app_mixed(&sim));
}
