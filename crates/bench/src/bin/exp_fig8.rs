//! Regenerates paper Figure 8 (concept size distributions).
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_scale::fig8(&sim));
}
