//! Regenerates paper Figure 5 (relevant concepts vs top-k queries).
use probase_bench::common::standard_simulation;
use probase_bench::exp_scale::{fig5, query_log};

fn main() {
    let sim = standard_simulation(80_000);
    let log = query_log(&sim, 100_000);
    print!("{}", fig5(&sim, &log));
}
