//! §5.3.2 web-table understanding case study.
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_apps::app_tables(&sim));
}
