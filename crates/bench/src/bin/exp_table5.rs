//! Regenerates paper Table 5 (benchmark concepts and typical instances).
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_precision::table5(&sim));
}
