//! AB4: plausibility model comparison (noisy-or vs Urns vs counts).
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!(
        "{}",
        probase_bench::exp_ablation::ablation_plausibility(&sim)
    );
}
