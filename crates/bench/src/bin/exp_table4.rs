//! Regenerates paper Table 4 (concept-subconcept space).
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_scale::table4(&sim));
}
