//! Regenerates every table and figure of the paper in one run, reusing a
//! single simulated deployment. Output is the raw material of
//! EXPERIMENTS.md. Pass `--pipeline-out <PATH>` to also write the
//! process-global stage-timing/metrics snapshot accumulated across the
//! whole run.
use probase_bench::common::standard_simulation;
use probase_bench::{exp_ablation, exp_apps, exp_precision, exp_scale};
use std::time::Instant;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut pipeline_out = None;
    let mut sentences: usize = 80_000;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        if arg == "--pipeline-out" {
            match it.next() {
                Some(path) => pipeline_out = Some(path.clone()),
                None => {
                    eprintln!("error: --pipeline-out needs a path");
                    std::process::exit(2);
                }
            }
        } else if let Ok(n) = arg.parse() {
            sentences = n;
        } else {
            eprintln!("error: unknown argument {arg:?}");
            std::process::exit(2);
        }
    }
    let t0 = Instant::now();
    eprintln!("building standard simulation ({sentences} sentences) ...");
    let sim = standard_simulation(sentences);
    eprintln!("built in {:?}", t0.elapsed());

    let log = exp_scale::query_log(&sim, 100_000);
    for report in [
        exp_scale::table1(&sim),
        exp_scale::table4(&sim),
        exp_precision::table5(&sim),
        exp_scale::fig5(&sim, &log),
        exp_scale::fig6(&sim, &log),
        exp_scale::fig7(&sim, &log),
        exp_scale::fig8(&sim),
        exp_precision::fig9(&sim),
        exp_precision::fig10(&sim),
        exp_precision::fig11(&sim),
        exp_apps::fig12(&sim),
        exp_apps::app_search(&sim),
        exp_apps::app_shorttext(&sim),
        exp_apps::app_tables(&sim),
        exp_apps::app_ner(&sim),
        exp_apps::app_mixed(&sim),
        exp_ablation::ablation_merge_order(&sim, 120, 5),
        exp_ablation::ablation_similarity(20_000),
        exp_ablation::ablation_iteration(&sim),
        exp_ablation::ablation_plausibility(&sim),
        exp_ablation::ablation_delta(&sim),
        exp_ablation::ablation_corpus_profiles(sentences / 2),
        exp_ablation::ablation_pr_curve(&sim),
        exp_scale::scaling_sweep(&[sentences / 8, sentences / 4, sentences / 2, sentences]),
    ] {
        println!("{report}");
    }
    if let Some(path) = &pipeline_out {
        let text = probase_core::obs::global().snapshot().to_string();
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote metrics snapshot ({} bytes) to {path}", text.len());
    }
    eprintln!("total wall time {:?}", t0.elapsed());
}
