//! AB2: similarity-function ablation (no simulation needed).
fn main() {
    print!(
        "{}",
        probase_bench::exp_ablation::ablation_similarity(20_000)
    );
}
