//! A4: fine-grained NER case study.
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_apps::app_ner(&sim));
}
