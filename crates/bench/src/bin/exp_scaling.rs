//! E1: corpus-size scaling sweep, plus the CI stage-timing report.
//!
//! ```sh
//! exp_scaling                                   # default sweep
//! exp_scaling --sizes 2000,4000,8000            # custom sizes
//! exp_scaling --sizes ... --pipeline-out BENCH_PIPELINE.json
//! exp_scaling --sizes ... --pipeline-out ... --gate   # fail on bad report
//! ```
//!
//! `--pipeline-out` writes the per-size stage-timing profiles (one
//! isolated metric registry per size); `--gate` additionally runs
//! `validate_pipeline` over the freshly written report and exits
//! non-zero if it is structurally broken — the CI bench-smoke job runs
//! with both.

use probase_bench::pipeline_report::{scaling_profiles, validate_pipeline};

const DEFAULT_SIZES: &[usize] = &[10_000, 20_000, 40_000, 80_000];

struct Args {
    sizes: Vec<usize>,
    pipeline_out: Option<String>,
    gate: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        sizes: DEFAULT_SIZES.to_vec(),
        pipeline_out: None,
        gate: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sizes" => {
                let v = it.next().ok_or("--sizes needs a comma-separated list")?;
                args.sizes = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("--sizes: not a number: {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.sizes.is_empty() {
                    return Err("--sizes: need at least one size".into());
                }
            }
            "--pipeline-out" => {
                args.pipeline_out = Some(it.next().ok_or("--pipeline-out needs a path")?.clone());
            }
            "--gate" => args.gate = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.gate && args.pipeline_out.is_none() {
        return Err("--gate requires --pipeline-out".into());
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    print!("{}", probase_bench::exp_scale::scaling_sweep(&args.sizes));
    if let Some(path) = &args.pipeline_out {
        let report = scaling_profiles(&args.sizes);
        let text = report.to_string();
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote pipeline report ({} bytes) to {path}", text.len());
        if args.gate {
            match validate_pipeline(&report) {
                Ok(()) => eprintln!("pipeline gate: OK"),
                Err(msg) => {
                    eprintln!("pipeline gate: FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }
}
