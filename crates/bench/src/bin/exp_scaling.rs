//! E1: corpus-size scaling sweep, plus the CI stage-timing report.
//!
//! ```sh
//! exp_scaling                                   # default sweep
//! exp_scaling --sizes 2000,4000,8000            # custom sizes
//! exp_scaling --sizes ... --pipeline-out BENCH_PIPELINE.json
//! exp_scaling --sizes ... --pipeline-out ... --gate   # fail on bad report
//! exp_scaling --sizes ... --pipeline-out out.json --baseline BENCH_PIPELINE.json
//! ```
//!
//! `--pipeline-out` writes the per-size stage-timing profiles (one
//! isolated metric registry per size); `--gate` additionally runs
//! `validate_pipeline` over the freshly written report and exits
//! non-zero if it is structurally broken; `--baseline` compares the
//! fresh report against a committed baseline with `compare_to_baseline`
//! and exits non-zero on a trajectory regression — the CI bench-smoke
//! job runs all three.

use probase_bench::pipeline_report::{compare_to_baseline, scaling_profiles, validate_pipeline};

const DEFAULT_SIZES: &[usize] = &[10_000, 20_000, 40_000, 80_000];

struct Args {
    sizes: Vec<usize>,
    pipeline_out: Option<String>,
    gate: bool,
    baseline: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        sizes: DEFAULT_SIZES.to_vec(),
        pipeline_out: None,
        gate: false,
        baseline: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sizes" => {
                let v = it.next().ok_or("--sizes needs a comma-separated list")?;
                args.sizes = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("--sizes: not a number: {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.sizes.is_empty() {
                    return Err("--sizes: need at least one size".into());
                }
            }
            "--pipeline-out" => {
                args.pipeline_out = Some(it.next().ok_or("--pipeline-out needs a path")?.clone());
            }
            "--gate" => args.gate = true,
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?.clone());
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if args.gate && args.pipeline_out.is_none() {
        return Err("--gate requires --pipeline-out".into());
    }
    if args.baseline.is_some() && args.pipeline_out.is_none() {
        return Err("--baseline requires --pipeline-out".into());
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    print!("{}", probase_bench::exp_scale::scaling_sweep(&args.sizes));
    if let Some(path) = &args.pipeline_out {
        let report = scaling_profiles(&args.sizes);
        let text = report.to_string();
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote pipeline report ({} bytes) to {path}", text.len());
        if args.gate {
            match validate_pipeline(&report) {
                Ok(()) => eprintln!("pipeline gate: OK"),
                Err(msg) => {
                    eprintln!("pipeline gate: FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(baseline_path) = &args.baseline {
            let text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {baseline_path:?}: {e}");
                    std::process::exit(1);
                }
            };
            let baseline = match probase_obs::json::parse(&text) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("error: baseline {baseline_path:?} is not valid JSON: {e}");
                    std::process::exit(1);
                }
            };
            match compare_to_baseline(&report, &baseline) {
                Ok(warnings) => {
                    for w in warnings {
                        eprintln!("baseline gate: warning: {w}");
                    }
                    eprintln!("baseline gate: OK (vs {baseline_path})");
                }
                Err(msg) => {
                    eprintln!("baseline gate: FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }
}
