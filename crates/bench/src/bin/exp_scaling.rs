//! E1: corpus-size scaling sweep.
fn main() {
    print!(
        "{}",
        probase_bench::exp_scale::scaling_sweep(&[10_000, 20_000, 40_000, 80_000])
    );
}
