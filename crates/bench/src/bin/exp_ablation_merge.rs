//! AB1: Theorem 1/2 merge-order ablation.
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!(
        "{}",
        probase_bench::exp_ablation::ablation_merge_order(&sim, 120, 5)
    );
}
