//! Regenerates paper Table 1 (taxonomy scale).
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_scale::table1(&sim));
}
