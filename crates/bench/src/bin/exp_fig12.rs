//! Regenerates paper Figure 12 (attribute extraction precision).
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_apps::fig12(&sim));
}
