//! Regenerates paper Figure 9 (extraction precision vs baselines).
use probase_bench::common::standard_simulation;

fn main() {
    let sim = standard_simulation(80_000);
    print!("{}", probase_bench::exp_precision::fig9(&sim));
}
