//! Regenerates paper Figure 7 (concept coverage of top-k queries).
use probase_bench::common::standard_simulation;
use probase_bench::exp_scale::{fig7, query_log};

fn main() {
    let sim = standard_simulation(80_000);
    let log = query_log(&sim, 100_000);
    print!("{}", fig7(&sim, &log));
}
