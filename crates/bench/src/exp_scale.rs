//! Scale and coverage experiments: Table 1, Table 4, Figures 5–8.

use crate::common::banner;
use probase_baselines::{sample_rival, GraphView, RivalConfig, RivalTaxonomy, TaxonomyView};
use probase_core::Simulation;
use probase_eval::{
    coverage_series, generate_query_log, head_concentration, relevant_concepts_series,
    render_table, Query, QueryLogConfig, SizeHistogram,
};
use probase_store::GraphStats;

/// Paper Table 1 numbers for the "paper" column.
const PAPER_TABLE1: &[(&str, &str)] = &[
    ("Freebase", "1,450"),
    ("WordNet", "25,229"),
    ("WikiTaxonomy", "111,654"),
    ("YAGO", "352,297"),
    ("Probase", "2,653,872"),
];

/// Build the rival panel once.
pub fn rivals(sim: &Simulation) -> Vec<RivalTaxonomy> {
    RivalConfig::panel()
        .iter()
        .map(|c| sample_rival(&sim.world, c))
        .collect()
}

/// Table 1: scale of open-domain taxonomies (concept counts).
pub fn table1(sim: &Simulation) -> String {
    let head = banner(
        "T1",
        "Table 1 — scale of open-domain taxonomies (concept space)",
    );
    let rivals = rivals(sim);
    let probase = GraphView {
        name: "Probase".into(),
        graph: sim.probase.model.graph(),
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut entries: Vec<(String, usize)> = rivals
        .iter()
        .map(|r| (r.name().to_string(), r.concept_count()))
        .collect();
    entries.push(("Probase".into(), probase.concept_count()));
    entries.sort_by_key(|(_, n)| *n);
    for (name, n) in &entries {
        let paper = PAPER_TABLE1
            .iter()
            .find(|(p, _)| p == name)
            .map(|(_, v)| *v)
            .unwrap_or("-");
        rows.push(vec![name.clone(), n.to_string(), paper.to_string()]);
    }
    let table = render_table(&["taxonomy", "concepts (ours)", "concepts (paper)"], &rows);
    let max = entries.last().expect("nonempty");
    let shape = format!(
        "shape check: Probase largest = {}\n",
        if max.0 == "Probase" {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    format!("{head}{table}{shape}")
}

/// Table 4: the concept-subconcept relationship space.
pub fn table4(sim: &Simulation) -> String {
    let head = banner("T4", "Table 4 — concept-subconcept relationship space");
    let rivals = rivals(sim);
    let mut rows = Vec::new();
    let fmt = |name: &str, s: &GraphStats| -> Vec<String> {
        vec![
            name.to_string(),
            s.concept_subconcept_pairs.to_string(),
            format!("{:.2}", s.avg_children),
            format!("{:.2}", s.avg_parents),
            format!("{:.3}", s.avg_level + 1.0), // paper counts levels from 1
            (s.max_level).to_string(),
        ]
    };
    for r in &rivals {
        rows.push(fmt(r.name(), &r.stats()));
    }
    rows.push(fmt("Probase", &sim.probase.graph_stats));
    let table = render_table(
        &[
            "taxonomy",
            "isA pairs",
            "avg children",
            "avg parents",
            "avg level",
            "max level",
        ],
        &rows,
    );
    let fb = rivals
        .iter()
        .find(|r| r.name() == "Freebase")
        .expect("freebase in panel");
    let shape = format!(
        "shape check: Freebase has zero concept-subconcept pairs = {}\n\
         paper row (Probase): 4,539,176 pairs, 7.53 children, 2.33 parents, level 1.086/7\n",
        if fb.concept_subconcept_pairs == 0 {
            "YES"
        } else {
            "NO"
        }
    );
    format!("{head}{table}{shape}")
}

/// The query log used by Figures 5–7, shared across them.
pub fn query_log(sim: &Simulation, n: usize) -> Vec<Query> {
    generate_query_log(
        &sim.world,
        &QueryLogConfig {
            queries: n,
            ..Default::default()
        },
    )
}

fn checkpoints(n: usize) -> Vec<usize> {
    (1..=5).map(|i| i * n / 5).collect()
}

fn series_table(
    sim: &Simulation,
    log: &[Query],
    f: impl Fn(&dyn TaxonomyView, &[usize]) -> Vec<usize>,
) -> String {
    let cps = checkpoints(log.len());
    let rivals = rivals(sim);
    let probase = GraphView {
        name: "Probase".into(),
        graph: sim.probase.model.graph(),
    };
    let mut rows = Vec::new();
    let mut views: Vec<&dyn TaxonomyView> = rivals.iter().map(|r| r as &dyn TaxonomyView).collect();
    views.push(&probase);
    for v in views {
        let series = f(v, &cps);
        let mut row = vec![v.name().to_string()];
        row.extend(series.iter().map(|s| s.to_string()));
        rows.push(row);
    }
    let header_cells: Vec<String> = std::iter::once("taxonomy".to_string())
        .chain(cps.iter().map(|c| format!("top {c}")))
        .collect();
    let headers: Vec<&str> = header_cells.iter().map(|s| s.as_str()).collect();
    render_table(&headers, &rows)
}

/// Figure 5: number of relevant concepts in each taxonomy over top-k
/// queries.
pub fn fig5(sim: &Simulation, log: &[Query]) -> String {
    let head = banner("F5", "Figure 5 — relevant concepts vs top-k queries");
    let t = series_table(sim, log, |v, cps| relevant_concepts_series(log, v, cps));
    let probase = GraphView {
        name: "Probase".into(),
        graph: sim.probase.model.graph(),
    };
    let final_cp = [log.len()];
    let p = relevant_concepts_series(log, &probase, &final_cp)[0];
    let best_rival = rivals(sim)
        .iter()
        .map(|r| relevant_concepts_series(log, r, &final_cp)[0])
        .max()
        .unwrap_or(0);
    format!(
        "{head}{t}shape check: Probase dominates every rival ({p} vs best rival {best_rival}; \
         paper: 664,775 vs YAGO 70,656) = {}\n",
        if p > best_rival { "YES" } else { "NO" }
    )
}

/// Figure 6: taxonomy coverage (any term) of top-k queries.
pub fn fig6(sim: &Simulation, log: &[Query]) -> String {
    let head = banner("F6", "Figure 6 — taxonomy coverage of top-k queries");
    let t = series_table(sim, log, |v, cps| coverage_series(log, v, cps, false));
    let probase = GraphView {
        name: "Probase".into(),
        graph: sim.probase.model.graph(),
    };
    let total = coverage_series(log, &probase, &[log.len()], false)[0];
    format!(
        "{head}{t}Probase covers {:.1}% of the log (paper: 81.04% of top 50M)\n",
        100.0 * total as f64 / log.len() as f64
    )
}

/// Figure 7: concept coverage of top-k queries.
pub fn fig7(sim: &Simulation, log: &[Query]) -> String {
    let head = banner("F7", "Figure 7 — concept coverage of top-k queries");
    let t = series_table(sim, log, |v, cps| coverage_series(log, v, cps, true));
    let probase = GraphView {
        name: "Probase".into(),
        graph: sim.probase.model.graph(),
    };
    let final_cp = [log.len()];
    let p = coverage_series(log, &probase, &final_cp, true)[0];
    let fb = rivals(sim)
        .into_iter()
        .find(|r| r.name() == "Freebase")
        .map(|r| coverage_series(log, &r, &final_cp, true)[0])
        .unwrap_or(0);
    format!(
        "{head}{t}shape check: Freebase trails Probase badly ({fb} vs {p}) despite similar \
         Figure 6 coverage = {}\n",
        if p > fb * 5 { "YES" } else { "NO" }
    )
}

/// Figure 8: concept-size distributions, Probase vs Freebase.
pub fn fig8(sim: &Simulation) -> String {
    let head = banner(
        "F8",
        "Figure 8 — concept size distributions (Probase vs Freebase)",
    );
    let probase = GraphView {
        name: "Probase".into(),
        graph: sim.probase.model.graph(),
    };
    let fb = sample_rival(&sim.world, &RivalConfig::freebase());
    let hp = SizeHistogram::compute(&probase.concept_sizes());
    let hf = SizeHistogram::compute(&fb.concept_sizes());
    let mut rows = Vec::new();
    for ((label, p), (_, f)) in hp.buckets.iter().zip(&hf.buckets) {
        rows.push(vec![label.clone(), p.to_string(), f.to_string()]);
    }
    let table = render_table(&["size bucket", "Probase", "Freebase"], &rows);
    let cp = head_concentration(&probase.concept_sizes(), 10);
    let cf = head_concentration(&fb.concept_sizes(), 10);
    format!(
        "{head}{table}top-10 concentration: Probase {:.1}% vs Freebase {:.1}% (paper: 4.5% vs 70%)\n",
        100.0 * cp,
        100.0 * cf
    )
}

/// E1 (extra) — corpus-size scaling: how knowledge grows with crawl size.
/// The paper's growth story (Figure 10 is per-iteration) implies pair and
/// concept counts grow sublinearly with corpus size while precision stays
/// flat; this sweep measures it directly.
pub fn scaling_sweep(sizes: &[usize]) -> String {
    use crate::common::{eval_corpus, eval_world};
    use probase_core::{ProbaseConfig, Simulation};
    use probase_eval::{Judge, Precision};

    let head = banner(
        "E1",
        "Corpus-size scaling — pairs, concepts, precision vs crawl size",
    );
    let mut rows = Vec::new();
    let mut precisions = Vec::new();
    for &n in sizes {
        let sim = Simulation::run(&eval_world(), &eval_corpus(n), &ProbaseConfig::paper());
        let judge = Judge::new(&sim.world);
        let g = &sim.probase.extraction.knowledge;
        let mut p = Precision::default();
        for (x, y, _) in g.pairs() {
            p.add(judge.pair_valid(g.resolve(x), g.resolve(y)));
        }
        precisions.push(p.ratio());
        rows.push(vec![
            n.to_string(),
            g.pair_count().to_string(),
            g.concept_count().to_string(),
            format!("{:.1}%", 100.0 * p.ratio()),
            sim.probase.extraction.iterations.len().to_string(),
        ]);
    }
    let table = render_table(
        &[
            "sentences",
            "distinct pairs",
            "concepts",
            "precision",
            "iterations",
        ],
        &rows,
    );
    let flat = precisions.windows(2).all(|w| (w[0] - w[1]).abs() < 0.08);
    format!(
        "{head}{table}shape check: precision roughly flat across scales = {}\n",
        if flat { "YES" } else { "NO" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{eval_corpus, eval_world};
    use probase_core::{ProbaseConfig, Simulation};

    fn small_sim() -> Simulation {
        let mut w = eval_world();
        w.filler_concepts = 120;
        Simulation::run(&w, &eval_corpus(3_000), &ProbaseConfig::paper())
    }

    #[test]
    fn scale_experiments_render() {
        let sim = small_sim();
        let log = query_log(&sim, 2_000);
        for report in [
            table1(&sim),
            table4(&sim),
            fig5(&sim, &log),
            fig6(&sim, &log),
            fig7(&sim, &log),
            fig8(&sim),
        ] {
            assert!(report.contains("Probase"), "{report}");
            assert!(report.lines().count() >= 4);
        }
    }

    #[test]
    fn probase_has_most_concepts() {
        let sim = small_sim();
        let report = table1(&sim);
        assert!(report.contains("YES"), "{report}");
    }
}
