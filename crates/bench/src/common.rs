//! Shared setup for the experiment binaries: one standard simulated
//! deployment (world + corpus + Probase) at the evaluation scale, plus
//! small helpers for printing paper-style output.

use probase_core::{ProbaseConfig, Simulation};
use probase_corpus::{CorpusConfig, WorldConfig};

/// The standard evaluation scale. Roughly 1/1000 of the paper's corpus;
/// EXPERIMENTS.md records the scaling factor next to every number.
pub fn eval_world() -> WorldConfig {
    // A slightly denser world than the library default: fewer filler
    // concepts relative to the corpus, so the corpus/world mention ratio
    // is closer to the paper's 1.68 B pages over its term space.
    WorldConfig {
        seed: 2012,
        filler_concepts: 700,
        filler_instances: (4, 24),
        ..WorldConfig::default()
    }
}

/// The standard corpus configuration for the evaluation scale.
pub fn eval_corpus(sentences: usize) -> CorpusConfig {
    CorpusConfig {
        seed: 2012,
        sentences,
        ..CorpusConfig::default()
    }
}

/// Build the standard simulation used by most experiments.
pub fn standard_simulation(sentences: usize) -> Simulation {
    Simulation::run(
        &eval_world(),
        &eval_corpus(sentences),
        &ProbaseConfig::paper(),
    )
}

/// Render an experiment banner.
pub fn banner(id: &str, title: &str) -> String {
    let line = "=".repeat(64);
    format!("{line}\n{id}: {title}\n{line}\n")
}
