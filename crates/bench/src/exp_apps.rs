//! Application experiments: Figure 12 and the §5.3 case studies
//! (semantic search, short-text clustering, web tables).

use crate::common::banner;
use probase_apps::{
    bow_vector, concept_vector, harvest_attributes, infer_header, kmeans, pages_from_corpus,
    probase_seeds, purity, semantic_search, Association, Column, FeatureSpace, MiniIndex,
};
use probase_core::Simulation;
use probase_corpus::attributes::{generate_attribute_corpus, AttributeCorpusConfig};
use probase_corpus::{ConceptId, WorldIndex};
use probase_eval::{precision_at_k, render_table, semantic_queries, table_columns, tweets};
use std::collections::HashSet;

/// Figure 12: top-20 attribute precision, Pasca-style manual seeds vs
/// Probase automatic seeds, over the benchmark concepts.
pub fn fig12(sim: &Simulation) -> String {
    let head = banner(
        "F12",
        "Figure 12 — precision of top-20 attributes (Pasca seeds vs Probase seeds)",
    );
    let idx = WorldIndex::new(&sim.world);
    // The paper evaluates 31 concepts; take the first 31 benchmark
    // concepts the model knows.
    let concepts: Vec<(&str, ConceptId)> = probase_corpus::benchmark::benchmark_labels()
        .into_iter()
        .filter_map(|l| idx.senses(l).first().map(|&c| (l, c)))
        .filter(|(l, _)| sim.probase.model.is_concept(l))
        .take(31)
        .collect();

    let mentions_cfg = AttributeCorpusConfig {
        mentions_per_attribute: 24,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let (mut pasca_sum, mut probase_sum, mut n) = (0.0, 0.0, 0usize);
    for (label, cid) in &concepts {
        let mentions = generate_attribute_corpus(&sim.world, &[*cid], &mentions_cfg);
        let truth: HashSet<&String> = sim.world.concept(*cid).attributes.iter().collect();
        // Pasca: manually curated seeds — the world's ground-truth most
        // typical instances (what a human would pick).
        let pasca_seeds: Vec<String> = sim
            .world
            .concept(*cid)
            .instances
            .iter()
            .take(5)
            .map(|m| sim.world.instance(m.instance).surface.clone())
            .collect();
        // Probase: automatic typicality seeds.
        let auto_seeds = probase_seeds(&sim.probase.model, label, 5);

        let p_pasca = precision_at_k(&harvest_attributes(&mentions, &pasca_seeds), 20, |r| {
            truth.contains(&r.attribute)
        });
        let p_auto = precision_at_k(&harvest_attributes(&mentions, &auto_seeds), 20, |r| {
            truth.contains(&r.attribute)
        });
        pasca_sum += p_pasca;
        probase_sum += p_auto;
        n += 1;
        rows.push(vec![
            label.to_string(),
            format!("{:.0}%", 100.0 * p_pasca),
            format!("{:.0}%", 100.0 * p_auto),
        ]);
    }
    let table = render_table(&["concept", "Pasca seeds", "Probase seeds"], &rows);
    let (pa, pb) = (
        100.0 * pasca_sum / n.max(1) as f64,
        100.0 * probase_sum / n.max(1) as f64,
    );
    format!(
        "{head}{table}\naverages: Pasca {pa:.1}% vs Probase {pb:.1}% (paper: 86.2% vs 88.3%)\n\
         shape check: automatic seeds comparable to manual = {}\n",
        if (pa - pb).abs() < 15.0 { "YES" } else { "NO" }
    )
}

/// §5.3.1 semantic search case study: relevance of top results,
/// semantic rewriting vs keyword baseline (paper: ~80% vs <50%).
pub fn app_search(sim: &Simulation) -> String {
    let head = banner("A1", "§5.3.1 — semantic web search relevance");
    let model = &sim.probase.model;
    let idx = WorldIndex::new(&sim.world);
    let docs = pages_from_corpus(&sim.corpus);
    let index = MiniIndex::build(docs);

    // Association over typical instances of the queried concepts.
    let queries = semantic_queries(&sim.world, 40, 12);
    let mut vocab: Vec<String> = Vec::new();
    for q in &queries {
        for c in [&q.concept_a, &q.concept_b] {
            vocab.extend(model.typical_instances(c, 8).into_iter().map(|(i, _)| i));
        }
    }
    vocab.sort();
    vocab.dedup();
    let pages = pages_from_corpus(&sim.corpus);
    let assoc = Association::from_pages(&pages, &vocab);

    // Relevance: the query "A-plural <link> B-plural" asks for pages about
    // concrete members of *both* concepts ("SIGMOD in Beijing"), so a page
    // is relevant iff it mentions an instance of A **and** an instance of
    // B (ground-truth closure check).
    let surfaces_of = |label: &str| -> HashSet<String> {
        idx.senses(label)
            .iter()
            .flat_map(|&cid| {
                idx.world()
                    .closure_instances(cid)
                    .into_iter()
                    .map(|i| idx.world().instance(i).surface.to_lowercase())
            })
            .collect()
    };

    let (mut sem_rel, mut sem_tot) = (0usize, 0usize);
    let (mut kw_rel, mut kw_tot) = (0usize, 0usize);
    let (mut sem_answered, mut kw_answered) = (0usize, 0usize);
    for q in &queries {
        let sa = surfaces_of(&q.concept_a);
        let sb = surfaces_of(&q.concept_b);
        let relevant = |d: u32| {
            let text = index.doc(d).text.to_lowercase();
            sa.iter().any(|s| text.contains(s)) && sb.iter().any(|s| text.contains(s))
        };
        let sem = semantic_search(model, &assoc, &index, &q.text, 10);
        if !sem.is_empty() {
            sem_answered += 1;
        }
        for &d in &sem {
            sem_tot += 1;
            sem_rel += usize::from(relevant(d));
        }
        let kw = index.search(&q.text, 10);
        if !kw.is_empty() {
            kw_answered += 1;
        }
        for &d in &kw {
            kw_tot += 1;
            kw_rel += usize::from(relevant(d));
        }
    }
    let sem_p = 100.0 * sem_rel as f64 / sem_tot.max(1) as f64;
    let kw_p = 100.0 * kw_rel as f64 / kw_tot.max(1) as f64;
    let kw_eff = 100.0 * kw_rel as f64 / (queries.len() * 10) as f64;
    let table = render_table(
        &[
            "system",
            "queries answered",
            "results",
            "relevant",
            "relevance",
        ],
        &[
            vec![
                "semantic rewrite".into(),
                format!("{sem_answered}/{}", queries.len()),
                sem_tot.to_string(),
                sem_rel.to_string(),
                format!("{sem_p:.1}%"),
            ],
            vec![
                "keyword baseline".into(),
                format!("{kw_answered}/{}", queries.len()),
                kw_tot.to_string(),
                kw_rel.to_string(),
                format!("{kw_p:.1}% ({kw_eff:.1}% of requested)"),
            ],
        ],
    );
    format!(
        "{head}{table}paper: ~80% of semantic results relevant vs <50% for keyword search.\n\
         note: our simulated pages are list-dense, so the *relevance* of the few pages\n\
         keyword search does find is higher than on the real web; the reproducible contrast\n\
         is answering power — rewritten queries answer more queries with more relevant results.\n\
         shape check: semantic relevance ≥ 80% and more relevant results than keyword = {}\n",
        if sem_p >= 80.0 && sem_rel > kw_rel {
            "YES"
        } else {
            "NO"
        }
    )
}

/// §5.3.2 short-text clustering: concept vectors vs bag of words.
pub fn app_shorttext(sim: &Simulation) -> String {
    let head = banner("A2", "§5.3.2 — short-text (tweet) clustering purity");
    let model = &sim.probase.model;
    let idx = WorldIndex::new(&sim.world);
    let topic_labels = ["country", "dish", "film", "animal", "company", "university"];
    let topics: Vec<ConceptId> = topic_labels
        .iter()
        .filter_map(|l| idx.senses(l).first().copied())
        .collect();
    let tws = tweets(&sim.world, &topics, 80, 17);
    let gold: Vec<usize> = tws.iter().map(|t| t.topic).collect();

    let mut cs = FeatureSpace::default();
    let cv: Vec<_> = tws
        .iter()
        .map(|t| concept_vector(model, &mut cs, &t.text, 3))
        .collect();
    let concept_purity = purity(&kmeans(&cv, topics.len(), 30, 3), &gold);
    let mut ws = FeatureSpace::default();
    let wv: Vec<_> = tws.iter().map(|t| bow_vector(&mut ws, &t.text)).collect();
    let bow_purity = purity(&kmeans(&wv, topics.len(), 30, 3), &gold);

    let table = render_table(
        &["representation", "k-means purity"],
        &[
            vec![
                "Probase concept vectors".into(),
                format!("{concept_purity:.3}"),
            ],
            vec!["bag of words".into(), format!("{bow_purity:.3}")],
        ],
    );
    format!(
        "{head}{table}({} tweets, {} topics)\n\
         shape check: concept clustering wins (paper: beats LDA and all baselines) = {}\n",
        tws.len(),
        topics.len(),
        if concept_purity > bow_purity {
            "YES"
        } else {
            "NO"
        }
    )
}

/// §5.3.2 web-table understanding: header inference precision
/// (paper: 96%).
pub fn app_tables(sim: &Simulation) -> String {
    let head = banner("A3", "§5.3.2 — web-table header inference");
    let model = &sim.probase.model;
    let idx = WorldIndex::new(&sim.world);
    let gold = table_columns(&sim.world, 300, 6, 0.08, 23);
    // A header is acceptable when it names the gold concept or one of its
    // ground-truth ancestors/descendants — a column of tropical countries
    // headed "country" is right by any judge's standard.
    let acceptable = |inferred: &str, gold_label: &str| -> bool {
        if inferred == gold_label {
            return true;
        }
        idx.senses(gold_label).iter().any(|&cid| {
            let w = idx.world();
            w.descendant_concepts(cid)
                .iter()
                .any(|&d| w.concept(d).label == inferred)
        }) || idx.senses(inferred).iter().any(|&cid| {
            let w = idx.world();
            w.descendant_concepts(cid)
                .iter()
                .any(|&d| w.concept(d).label == gold_label)
        })
    };
    let (mut correct, mut answered, mut enriched) = (0usize, 0usize, 0usize);
    for g in &gold {
        let col = Column {
            cells: g.cells.clone(),
        };
        if let Some(h) = infer_header(model, &col, 4) {
            answered += 1;
            correct += usize::from(acceptable(&h.concept, &g.concept));
            enriched += h.unknown_cells.len();
        }
    }
    let precision = 100.0 * correct as f64 / answered.max(1) as f64;
    let table = render_table(
        &["metric", "value"],
        &[
            vec!["columns".into(), gold.len().to_string()],
            vec!["answered".into(), answered.to_string()],
            vec!["header precision".into(), format!("{precision:.1}%")],
            vec!["cells proposed for enrichment".into(), enriched.to_string()],
        ],
    );
    format!(
        "{head}{table}paper: 96% average precision\nshape check: precision >= 80% = {}\n",
        if precision >= 80.0 { "YES" } else { "NO" }
    )
}

/// §1 fine-grained NER case study: tag entity mentions in synthetic short
/// texts and judge the concept tags against ground truth.
pub fn app_ner(sim: &Simulation) -> String {
    use probase_apps::{tag_entities, NerConfig};
    use probase_eval::Judge;

    let head = banner("A4", "§1 — fine-grained named-entity recognition");
    let judge = Judge::new(&sim.world);
    let idx = WorldIndex::new(&sim.world);
    let topics: Vec<ConceptId> = [
        "country",
        "city",
        "company",
        "film",
        "disease",
        "university",
    ]
    .iter()
    .filter_map(|l| idx.senses(l).first().copied())
    .collect();
    let texts = tweets(&sim.world, &topics, 80, 31);
    let (mut coarse_ok, mut fine, mut total) = (0usize, 0usize, 0usize);
    for t in &texts {
        for tag in tag_entities(&sim.probase.model, &t.text, &NerConfig::default()) {
            total += 1;
            // Correct when the tagged concept truly contains the entity.
            if judge.pair_valid(&tag.concept, &tag.surface) {
                coarse_ok += 1;
                // Fine-grained: more specific than the upper ontology roots.
                if !probase_corpus::benchmark::ROOTS.contains(&tag.concept.as_str()) {
                    fine += 1;
                }
            }
        }
    }
    let table = render_table(
        &["metric", "value"],
        &[
            vec!["texts".into(), texts.len().to_string()],
            vec!["entity tags".into(), total.to_string()],
            vec![
                "correct tags".into(),
                format!(
                    "{coarse_ok} ({:.1}%)",
                    100.0 * coarse_ok as f64 / total.max(1) as f64
                ),
            ],
            vec![
                "correct and fine-grained".into(),
                format!("{fine} ({:.1}%)", 100.0 * fine as f64 / total.max(1) as f64),
            ],
        ],
    );
    let prec = coarse_ok as f64 / total.max(1) as f64;
    format!(
        "{head}{table}shape check: tagging precision >= 75% with fine-grained concepts = {}\n",
        if prec >= 0.75 && fine * 2 > total {
            "YES"
        } else {
            "NO"
        }
    )
}

/// A5 — mixed instance+attribute abstraction (paper §1 footnote 1:
/// "inferring from headquarter, apple to company"). The attribute index
/// is harvested from the attribute corpus using automatic typicality
/// seeds, then mixed term sets are conceptualized and judged.
pub fn app_mixed(sim: &Simulation) -> String {
    use probase_apps::{
        harvest_attributes, index_from_harvest, probase_seeds, MixedConceptualizer,
    };

    let head = banner(
        "A5",
        "§1 footnote 1 — abstraction from instances + attributes",
    );
    let idx = WorldIndex::new(&sim.world);
    let model = &sim.probase.model;

    // Harvest an attribute → concept index over the benchmark concepts.
    let concepts: Vec<(&str, ConceptId)> = probase_corpus::benchmark::benchmark_labels()
        .into_iter()
        .filter_map(|l| idx.senses(l).first().map(|&c| (l, c)))
        .collect();
    let cfg = AttributeCorpusConfig {
        mentions_per_attribute: 16,
        ..Default::default()
    };
    let mut harvested = Vec::new();
    for (label, cid) in &concepts {
        let mentions = generate_attribute_corpus(&sim.world, &[*cid], &cfg);
        let seeds = probase_seeds(model, label, 5);
        harvested.push((label.to_string(), harvest_attributes(&mentions, &seeds)));
    }
    let attr_index = index_from_harvest(&harvested);
    let mc = MixedConceptualizer::new(model, attr_index);

    // Queries: for each concept, (a true attribute, a typical instance) —
    // the concept itself is the gold answer.
    let (mut top1, mut top3, mut total) = (0usize, 0usize, 0usize);
    for (label, cid) in concepts.iter().take(25) {
        let c = sim.world.concept(*cid);
        let Some(attr) = c.attributes.first() else {
            continue;
        };
        let Some(inst) = c.instances.first() else {
            continue;
        };
        let inst_surface = sim.world.instance(inst.instance).surface.clone();
        let out = mc.conceptualize(&[attr.as_str(), inst_surface.as_str()], 3);
        if out.is_empty() {
            continue;
        }
        total += 1;
        top1 += usize::from(out[0].0 == *label);
        top3 += usize::from(out.iter().any(|(g, _)| g == label));
    }
    let table = render_table(
        &["metric", "value"],
        &[
            vec!["queries (attribute + instance)".into(), total.to_string()],
            vec![
                "gold concept at rank 1".into(),
                format!("{top1} ({:.0}%)", 100.0 * top1 as f64 / total.max(1) as f64),
            ],
            vec![
                "gold concept in top 3".into(),
                format!("{top3} ({:.0}%)", 100.0 * top3 as f64 / total.max(1) as f64),
            ],
        ],
    );
    format!(
        "{head}{table}example from the paper: {{headquarter, apple}} → company\n\
         shape check: gold concept in top 3 for >= 70% of queries = {}\n",
        if top3 * 10 >= total * 7 { "YES" } else { "NO" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{eval_corpus, eval_world};
    use probase_core::ProbaseConfig;

    fn small_sim() -> Simulation {
        let mut w = eval_world();
        w.filler_concepts = 120;
        Simulation::run(&w, &eval_corpus(5_000), &ProbaseConfig::paper())
    }

    #[test]
    fn app_experiments_render_and_pass_shape_checks() {
        let sim = small_sim();
        let shorttext = app_shorttext(&sim);
        assert!(shorttext.contains("= YES"), "{shorttext}");
        let tables = app_tables(&sim);
        assert!(tables.lines().count() > 4, "{tables}");
        let attrs = fig12(&sim);
        assert!(attrs.contains("averages"), "{attrs}");
    }

    #[test]
    fn search_experiment_renders() {
        let sim = small_sim();
        let r = app_search(&sim);
        assert!(r.contains("semantic rewrite"), "{r}");
    }
}
