//! Precision experiments: Table 5, Figures 9–11.

use crate::common::banner;
use probase_baselines::{extract_syntactic, SyntacticConfig};
use probase_core::Simulation;
use probase_corpus::benchmark::benchmark_labels;
use probase_eval::{render_table, Judge, Precision};
use std::collections::HashSet;

/// Table 5: the 40 benchmark concepts with their typical instances.
pub fn table5(sim: &Simulation) -> String {
    let head = banner(
        "T5",
        "Table 5 — benchmark concepts and typical instances (top 3 by T(i|x))",
    );
    let m = &sim.probase.model;
    let g = &sim.probase.extraction.knowledge;
    let mut rows = Vec::new();
    for label in benchmark_labels() {
        let size = g.lookup(label).map(|s| g.subs_of(s).len()).unwrap_or(0);
        let typical: Vec<String> = m
            .typical_instances(label, 3)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        rows.push(vec![
            format!("{label} ({size})"),
            if typical.is_empty() {
                "-".into()
            } else {
                typical.join(", ")
            },
        ]);
    }
    format!(
        "{head}{}",
        render_table(&["concept (#extracted subs)", "typical instances"], &rows)
    )
}

/// Figure 9: precision of extracted pairs per benchmark concept, plus the
/// baseline comparison the paper cites (KnowItAll 64%, NELL 74%,
/// TextRunner 80%, Probase 92.8%).
pub fn fig9(sim: &Simulation) -> String {
    let head = banner(
        "F9",
        "Figure 9 — precision of extracted pairs (benchmark concepts)",
    );
    let judge = Judge::new(&sim.world);
    let g = &sim.probase.extraction.knowledge;
    let per = judge.benchmark_precision(g, 50, 9);
    let mut rows = Vec::new();
    for (label, p) in &per {
        rows.push(vec![
            label.clone(),
            format!("{:.1}%", 100.0 * p.ratio()),
            format!("{}/{}", p.correct, p.total),
        ]);
    }
    let table = render_table(&["concept", "precision", "judged"], &rows);
    let avg = per.iter().map(|(_, p)| p.ratio()).sum::<f64>() / per.len().max(1) as f64;
    // Micro average: pool all judged pairs (the paper's "average precision
    // of all pairs in benchmark is 92.8%" is the pooled figure).
    let mut pooled = Precision::default();
    for (_, p) in &per {
        pooled.merge(*p);
    }

    // Baselines over the same corpus.
    let judge_output = |pairs: &std::collections::HashMap<(String, String), u32>| -> Precision {
        let mut p = Precision::default();
        for (x, y) in pairs.keys() {
            p.add(judge.pair_valid(x, y));
        }
        p
    };
    let closest = extract_syntactic(
        &sim.corpus,
        &sim.world.lexicon,
        &SyntacticConfig {
            bootstrap_patterns: false,
            ..Default::default()
        },
    );
    let boot = extract_syntactic(&sim.corpus, &sim.world.lexicon, &SyntacticConfig::default());
    let proper = extract_syntactic(
        &sim.corpus,
        &sim.world.lexicon,
        &SyntacticConfig {
            proper_only: true,
            bootstrap_patterns: false,
            ..Default::default()
        },
    );
    let pc = judge_output(&closest.pairs);
    let pb = judge_output(&boot.pairs);
    let pp = judge_output(&proper.pairs);

    let summary = render_table(
        &["system", "precision", "distinct pairs", "paper reports"],
        &[
            vec![
                "Probase (benchmark)".into(),
                format!("{:.1}%", 100.0 * pooled.ratio()),
                g.pair_count().to_string(),
                "92.8%".into(),
            ],
            vec![
                "syntactic closest-NP".into(),
                format!("{:.1}%", 100.0 * pc.ratio()),
                closest.distinct_pairs().to_string(),
                "~80% (TextRunner)".into(),
            ],
            vec![
                "syntactic + proper-only".into(),
                format!("{:.1}%", 100.0 * pp.ratio()),
                proper.distinct_pairs().to_string(),
                "~74% (NELL)".into(),
            ],
            vec![
                "syntactic + bootstrapping".into(),
                format!("{:.1}%", 100.0 * pb.ratio()),
                boot.distinct_pairs().to_string(),
                "~64% (KnowItAll)".into(),
            ],
        ],
    );
    format!(
        "{head}{table}\nbenchmark precision: macro {:.1}%, pooled {:.1}% (paper: 92.8%)\n\n{summary}\
         shape check: Probase beats every syntactic baseline = {}\n",
        100.0 * avg,
        100.0 * pooled.ratio(),
        if avg > pc.ratio() && avg > pb.ratio() && avg > pp.ratio() { "YES" } else { "NO" }
    )
}

/// Figure 10: accumulated pairs and concepts per iteration.
pub fn fig10(sim: &Simulation) -> String {
    let head = banner("F10", "Figure 10 — isA pairs and concepts per iteration");
    let mut rows = Vec::new();
    for it in &sim.probase.extraction.iterations {
        rows.push(vec![
            it.iteration.to_string(),
            it.new_occurrences.to_string(),
            it.distinct_pairs.to_string(),
            it.distinct_concepts.to_string(),
        ]);
    }
    let table = render_table(
        &["iteration", "new occurrences", "distinct pairs", "concepts"],
        &rows,
    );
    let iters = &sim.probase.extraction.iterations;
    let second_largest = iters.len() >= 2
        && iters[1].new_occurrences >= iters.iter().map(|i| i.new_occurrences).max().unwrap_or(0);
    format!(
        "{head}{table}shape check: largest gain in round 2 (paper's key observation) = {}\n",
        if second_largest { "YES" } else { "NO" }
    )
}

/// Figure 11: precision of extracted pairs after each iteration.
pub fn fig11(sim: &Simulation) -> String {
    let head = banner("F11", "Figure 11 — precision per iteration");
    let judge = Judge::new(&sim.world);
    let evidence = &sim.probase.extraction.evidence;
    let mut rows = Vec::new();
    let mut last = None;
    for it in &sim.probase.extraction.iterations {
        // Distinct pairs discovered up to and including this round.
        let mut seen: HashSet<(&str, &str)> = HashSet::new();
        for e in &evidence[..it.evidence_len] {
            seen.insert((e.x.as_str(), e.y.as_str()));
        }
        let mut p = Precision::default();
        for (x, y) in &seen {
            p.add(judge.pair_valid(x, y));
        }
        rows.push(vec![
            it.iteration.to_string(),
            format!("{:.2}%", 100.0 * p.ratio()),
            p.total.to_string(),
        ]);
        last = Some(p.ratio());
    }
    let first = rows.first().map(|r| r[1].clone()).unwrap_or_default();
    let table = render_table(&["iteration", "precision", "distinct pairs"], &rows);
    let final_p = last.unwrap_or(0.0);
    format!(
        "{head}{table}paper: 97.3% → ~94% over 11 iterations\n\
         shape check: starts high ({first}), final {:.2}%, decay bounded = {}\n",
        100.0 * final_p,
        if final_p > 0.85 { "YES" } else { "NO" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{eval_corpus, eval_world};
    use probase_core::ProbaseConfig;

    fn small_sim() -> Simulation {
        let mut w = eval_world();
        w.filler_concepts = 120;
        Simulation::run(&w, &eval_corpus(4_000), &ProbaseConfig::paper())
    }

    #[test]
    fn precision_experiments_render() {
        let sim = small_sim();
        for r in [table5(&sim), fig9(&sim), fig10(&sim), fig11(&sim)] {
            assert!(r.lines().count() > 5, "{r}");
        }
    }

    #[test]
    fn fig9_probase_wins() {
        let sim = small_sim();
        let r = fig9(&sim);
        assert!(r.contains("= YES"), "{r}");
    }

    #[test]
    fn fig10_round2_dominates() {
        let sim = small_sim();
        let r = fig10(&sim);
        assert!(r.contains("= YES"), "{r}");
    }
}
