//! # probase-bench
//!
//! The benchmark harness: one `exp_*` binary per table and figure of the
//! paper (see DESIGN.md §5 for the index), plus Criterion
//! micro-benchmarks per pipeline stage in `benches/`.
//!
//! `cargo run --release -p probase-bench --bin exp_all` regenerates every
//! experiment into one report.

pub mod common;
pub mod exp_ablation;
pub mod exp_apps;
pub mod exp_precision;
pub mod exp_scale;
pub mod pipeline_report;
