//! Microbenchmark: the §5.3 applications — query rewriting, short-text
//! conceptualization, and table-header inference over a built model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probase_apps::{conceptualize_text, infer_header, rewrite_query, Association, Column};
use probase_core::{ProbaseConfig, Simulation};
use probase_corpus::{CorpusConfig, WorldConfig};

fn bench_apps(c: &mut Criterion) {
    let sim = Simulation::run(
        &WorldConfig::small(904),
        &CorpusConfig {
            seed: 904,
            sentences: 4_000,
            ..CorpusConfig::default()
        },
        &ProbaseConfig::paper(),
    );
    let model = &sim.probase.model;
    let assoc = Association::default();

    let mut group = c.benchmark_group("apps");
    group.bench_function("rewrite_semantic_query", |b| {
        b.iter(|| {
            black_box(rewrite_query(model, &assoc, "famous actors in big companies", 5, 12).len())
        })
    });
    group.bench_function("conceptualize_short_text", |b| {
        b.iter(|| black_box(conceptualize_text(model, "a trip to China and India", 3).len()))
    });
    let col = Column {
        cells: ["China", "India", "Brazil", "France", "Japan"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    group.bench_function("infer_table_header", |b| {
        b.iter(|| black_box(infer_header(model, &col, 4).map(|h| h.concept)))
    });
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
