//! Microbenchmark: the full iterative extraction (Algorithm 1), serial vs
//! parallel driver — the stage the paper ran on 10 machines for 7 hours.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use probase_corpus::{CorpusConfig, CorpusGenerator, WorldConfig};
use probase_extract::{extract, extract_parallel, ExtractorConfig};

fn bench_extraction(c: &mut Criterion) {
    let world = probase_corpus::generate(&WorldConfig::small(901));
    let corpus = CorpusGenerator::new(
        &world,
        CorpusConfig {
            seed: 901,
            sentences: 3_000,
            ..CorpusConfig::default()
        },
    )
    .generate_all();
    let cfg = ExtractorConfig::paper();

    let mut group = c.benchmark_group("extraction");
    group.sample_size(10);
    group.throughput(Throughput::Elements(corpus.len() as u64));
    group.bench_function("serial_3k_sentences", |b| {
        b.iter(|| {
            black_box(
                extract(&corpus, &world.lexicon, &cfg)
                    .knowledge
                    .pair_count(),
            )
        })
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel_3k_sentences", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    black_box(
                        extract_parallel(&corpus, &world.lexicon, &cfg, t)
                            .knowledge
                            .pair_count(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_persist(c: &mut Criterion) {
    let world = probase_corpus::generate(&WorldConfig::small(905));
    let corpus = CorpusGenerator::new(
        &world,
        CorpusConfig {
            seed: 905,
            sentences: 3_000,
            ..CorpusConfig::default()
        },
    )
    .generate_all();
    let out = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
    let mut group = c.benchmark_group("knowledge");
    group.bench_function("persist_roundtrip", |b| {
        b.iter(|| {
            let bytes = probase_extract::knowledge_to_bytes(&out.knowledge).expect("encode");
            black_box(
                probase_extract::knowledge_from_bytes(bytes)
                    .expect("roundtrip")
                    .pair_count(),
            )
        })
    });
    group.bench_function("absorb", |b| {
        b.iter(|| {
            let mut merged = out.knowledge.clone();
            merged.absorb(&out.knowledge);
            black_box(merged.total())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_persist);
criterion_main!(benches);
