//! Microbenchmark: Hearst pattern matching and syntactic extraction
//! throughput (the per-sentence cost of the paper's §2.3.1 stage).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use probase_corpus::{CorpusConfig, CorpusGenerator, WorldConfig};
use probase_extract::syntactic_extract;
use probase_text::{tag_tokens, tokenize, Chunker};

fn bench_pattern(c: &mut Criterion) {
    let world = probase_corpus::generate(&WorldConfig::small(900));
    let corpus = CorpusGenerator::new(
        &world,
        CorpusConfig {
            seed: 900,
            sentences: 2_000,
            ..CorpusConfig::default()
        },
    )
    .generate_all();
    let texts: Vec<&str> = corpus.iter().map(|r| r.text.as_str()).collect();
    let lexicon = &world.lexicon;
    let chunker = Chunker::default();

    let mut group = c.benchmark_group("pattern");
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.bench_function("tokenize_tag_2k_sentences", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &texts {
                n += tag_tokens(&tokenize(t), lexicon).len();
            }
            black_box(n)
        })
    });
    group.bench_function("syntactic_extract_2k_sentences", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &texts {
                if let Some(e) = syntactic_extract(t, lexicon, &chunker) {
                    n += e.segments.len();
                }
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pattern);
criterion_main!(benches);
