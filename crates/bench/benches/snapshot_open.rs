//! Microbenchmark: serve restart cost — what the zero-copy packed
//! snapshot format buys at startup.
//!
//! `legacy_decode` is the old path: parse every node and edge out of
//! the length-prefixed snapshot and rebuild the pointer graph plus its
//! indexes. `packed_validate` / `packed_open_mmap` are the new path:
//! header + checksum + section-bounds validation over an mmap'd (or
//! in-memory) buffer, with no per-edge work at all. The gap between
//! them is the recovery-time win asserted by the CI startup-latency
//! smoke step; `packed_first_queries` shows the read path is already
//! hot right after open (no lazy decode hiding the cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probase_store::{pack, snapshot, ConceptGraph, PackedGraph};

fn build_graph(concepts: usize, fanout: usize) -> ConceptGraph {
    let mut g = ConceptGraph::new();
    for i in 0..concepts {
        let parent = g.ensure_node(&format!("concept{i}"), 0);
        for j in 0..fanout {
            let child = if j == 0 && i + 1 < concepts {
                g.ensure_node(&format!("concept{}", i + 1), 0)
            } else {
                g.ensure_node(&format!("inst{i}_{j}"), 0)
            };
            g.add_evidence(parent, child, (i + j) as u32 % 7 + 1);
        }
    }
    g.rebuild_indexes();
    g
}

fn bench_snapshot_open(c: &mut Criterion) {
    let g = build_graph(2_000, 8);
    let legacy = snapshot::to_bytes(&g).expect("legacy encode");
    let packed = pack(&g).expect("packed encode");
    let path = std::env::temp_dir().join(format!("probase-bench-open-{}.pb", std::process::id()));
    std::fs::write(&path, &packed).expect("write packed snapshot");

    let mut group = c.benchmark_group("snapshot_open");
    group.bench_function("legacy_decode", |b| {
        b.iter(|| {
            let mut g = snapshot::from_bytes(legacy.clone()).expect("decode");
            g.rebuild_indexes();
            black_box(g.node_count())
        })
    });
    group.bench_function("packed_validate", |b| {
        // `Bytes::clone` is a refcount bump — this measures validation
        // alone, the whole startup cost once the bytes are resident.
        b.iter(|| black_box(PackedGraph::from_bytes(packed.clone()).expect("validate")))
    });
    group.bench_function("packed_open_mmap", |b| {
        b.iter(|| black_box(PackedGraph::open(&path).expect("open")))
    });
    group.bench_function("packed_first_queries", |b| {
        // Open + a spread of adjacency reads: proves there is no lazy
        // decode deferred past `open` waiting to bite the first request.
        b.iter(|| {
            let p = PackedGraph::open(&path).expect("open");
            let mut touched = 0usize;
            for n in p.nodes().step_by(97) {
                touched += p.children(n).count() + p.parents(n).count();
            }
            black_box(touched)
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_snapshot_open);
criterion_main!(benches);
