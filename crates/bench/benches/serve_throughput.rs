//! Macrobenchmark: the serving subsystem end to end — client round-trips
//! over loopback TCP through the worker pool, with and without the
//! versioned response cache, plus the in-process router fast path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probase_serve::{Client, Direction, Request, ServeConfig, ServeState, Server};
use probase_store::{ConceptGraph, SharedStore};
use std::time::Duration;

fn build_graph(concepts: usize, fanout: usize) -> ConceptGraph {
    let mut g = ConceptGraph::new();
    for i in 0..concepts {
        let parent = g.ensure_node(&format!("concept{i}"), 0);
        for j in 0..fanout {
            let child = if j == 0 && i + 1 < concepts {
                g.ensure_node(&format!("concept{}", i + 1), 0)
            } else {
                g.ensure_node(&format!("inst{i}_{j}"), 0)
            };
            g.add_evidence(parent, child, (i + j) as u32 % 7 + 1);
        }
    }
    g.rebuild_indexes();
    g
}

fn server_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_capacity: 1024,
        cache_capacity: 4096,
        cache_shards: 16,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

fn bench_serve(c: &mut Criterion) {
    let graph = build_graph(500, 8);
    let mut group = c.benchmark_group("serve");

    // Full-stack round trip, cache hot: the second and later iterations
    // of an identical query are answered from the versioned cache.
    group.bench_function("tcp_roundtrip_cached", |b| {
        let server =
            Server::start(SharedStore::new(graph.clone()), &server_config()).expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let req = Request::Typicality {
            term: "concept10".to_string(),
            direction: Direction::Instances,
            k: 10,
        };
        b.iter(|| black_box(client.call_ok(&req).expect("call").0));
        server.shutdown();
    });

    // Cache-miss path: rotate the key so every request recomputes.
    group.bench_function("tcp_roundtrip_uncached", |b| {
        let server =
            Server::start(SharedStore::new(graph.clone()), &server_config()).expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 500;
            let req = Request::Typicality {
                term: format!("concept{i}"),
                direction: Direction::Instances,
                k: 10,
            };
            black_box(client.call_ok(&req).expect("call").0)
        });
        server.shutdown();
    });

    // Router without the network: isolates dispatch + cache + model cost
    // from socket overhead.
    group.bench_function("router_inprocess_cached", |b| {
        let state = ServeState::new(SharedStore::new(graph.clone()), 4096, 16);
        let req = Request::Conceptualize {
            terms: vec!["inst10_1".to_string(), "inst10_2".to_string()],
            k: 8,
        };
        b.iter(|| {
            let (version, result) = state.handle(&req);
            black_box((version, result.expect("handled")))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
