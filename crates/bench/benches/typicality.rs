//! Microbenchmark: the probabilistic layer — plausibility (Eq. 1–2),
//! Algorithm 3 reachability, and typicality (Eq. 3–4).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probase_core::{seed_from_world, ProbaseConfig};
use probase_corpus::{CorpusConfig, CorpusGenerator, WorldConfig};
use probase_extract::{extract, ExtractorConfig};
use probase_prob::{
    compute_plausibility, EvidenceModel, PlausibilityConfig, ReachTable, TypicalityModel,
};
use probase_taxonomy::{build_taxonomy, TaxonomyConfig};

fn bench_prob(c: &mut Criterion) {
    let _ = ProbaseConfig::paper();
    let world = probase_corpus::generate(&WorldConfig::small(903));
    let corpus = CorpusGenerator::new(
        &world,
        CorpusConfig {
            seed: 903,
            sentences: 4_000,
            ..CorpusConfig::default()
        },
    )
    .generate_all();
    let out = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
    let built = build_taxonomy(&out.sentences, &TaxonomyConfig::default());
    let seed = seed_from_world(&world);
    let model = EvidenceModel::fit(&out.evidence, &seed);

    let mut group = c.benchmark_group("prob");
    group.sample_size(20);
    group.bench_function("plausibility_noisy_or", |b| {
        b.iter(|| {
            black_box(
                compute_plausibility(
                    &out.evidence,
                    &out.knowledge,
                    &model,
                    &PlausibilityConfig::default(),
                )
                .len(),
            )
        })
    });
    group.bench_function("reach_algorithm3", |b| {
        b.iter(|| black_box(ReachTable::compute(&built.graph).len()))
    });
    let reach = ReachTable::compute(&built.graph);
    group.bench_function("typicality_eq4", |b| {
        b.iter(|| black_box(TypicalityModel::compute(&built.graph, &reach).concept_count()))
    });
    group.finish();
}

criterion_group!(benches, bench_prob);
criterion_main!(benches);
