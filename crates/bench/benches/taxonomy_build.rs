//! Microbenchmark: taxonomy construction (Algorithm 2) — including the
//! AB1 ablation of merge schedules on the operational engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probase_corpus::{CorpusConfig, CorpusGenerator, WorldConfig};
use probase_extract::{extract, ExtractorConfig};
use probase_taxonomy::{
    build_local_taxonomies, build_taxonomy, AbsoluteOverlap, MergeState, TaxonomyConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_taxonomy(c: &mut Criterion) {
    let world = probase_corpus::generate(&WorldConfig::small(902));
    let corpus = CorpusGenerator::new(
        &world,
        CorpusConfig {
            seed: 902,
            sentences: 4_000,
            ..CorpusConfig::default()
        },
    )
    .generate_all();
    let out = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());

    let mut group = c.benchmark_group("taxonomy");
    group.sample_size(20);
    group.bench_function("build_indexed", |b| {
        b.iter(|| {
            let cfg = TaxonomyConfig {
                threads: 1,
                ..TaxonomyConfig::default()
            };
            black_box(build_taxonomy(&out.sentences, &cfg).stats)
        })
    });

    // P1: the parallel builder's corpus-size × thread-count matrix. The
    // t1 rows go through the serial path (the parallel driver dispatches
    // back), so t1-vs-tN on the same corpus is the driver's speedup and
    // 4k-vs-8k at fixed threads is its scaling in corpus size.
    for sentences in [4_000usize, 8_000] {
        let extracted = if sentences == 4_000 {
            out.sentences.clone()
        } else {
            let corpus = CorpusGenerator::new(
                &world,
                CorpusConfig {
                    seed: 902,
                    sentences,
                    ..CorpusConfig::default()
                },
            )
            .generate_all();
            extract(&corpus, &world.lexicon, &ExtractorConfig::paper()).sentences
        };
        for threads in [1usize, 2, 4] {
            let cfg = TaxonomyConfig {
                threads,
                ..TaxonomyConfig::default()
            };
            group.bench_function(
                BenchmarkId::new(format!("build_{}k_sentences", sentences / 1_000), threads),
                |b| b.iter(|| black_box(build_taxonomy(&extracted, &cfg).stats)),
            );
        }
    }

    // AB1: engine schedules on a subsample.
    let (locals, _) = build_local_taxonomies(&out.sentences);
    let locals: Vec<_> = locals
        .into_iter()
        .filter(|l| l.children.len() >= 2)
        .take(80)
        .collect();
    let sim = AbsoluteOverlap { delta: 2 };
    group.bench_function("engine_horizontal_first_80", |b| {
        b.iter(|| {
            let mut st = MergeState::from_locals(&locals);
            black_box(st.run_horizontal_first(&sim))
        })
    });
    group.bench_function("engine_random_order_80", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut st = MergeState::from_locals(&locals);
            black_box(st.run_with(&sim, |ops| rng.gen_range(0..ops.len())))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_taxonomy);
criterion_main!(benches);
