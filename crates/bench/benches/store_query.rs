//! Microbenchmark: the graph store — node/edge ingest, level computation
//! (Table 4 statistics), and snapshot round-trips.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probase_store::query::parent_level_sets;
use probase_store::{snapshot, ConceptGraph, GraphStats};

fn build_graph(concepts: usize, fanout: usize) -> ConceptGraph {
    let mut g = ConceptGraph::new();
    for i in 0..concepts {
        let parent = g.ensure_node(&format!("concept{i}"), 0);
        for j in 0..fanout {
            let child = if j == 0 && i + 1 < concepts {
                g.ensure_node(&format!("concept{}", i + 1), 0)
            } else {
                g.ensure_node(&format!("inst{i}_{j}"), 0)
            };
            g.add_evidence(parent, child, (i + j) as u32 % 7 + 1);
        }
    }
    g
}

fn bench_store(c: &mut Criterion) {
    let g = build_graph(2_000, 8);
    let mut group = c.benchmark_group("store");
    group.bench_function("ingest_2k_x8", |b| {
        b.iter(|| black_box(build_graph(2_000, 8).edge_count()))
    });
    group.bench_function("graph_stats_table4", |b| {
        b.iter(|| black_box(GraphStats::compute(&g).max_level))
    });
    group.bench_function("parent_level_sets", |b| {
        b.iter(|| black_box(parent_level_sets(&g).len()))
    });
    group.bench_function("shared_store_reads", |b| {
        let shared = probase_store::SharedStore::new(g.clone());
        b.iter(|| shared.read(|g| black_box(g.edge_count())))
    });
    group.bench_function("snapshot_roundtrip", |b| {
        b.iter(|| {
            let bytes = snapshot::to_bytes(&g).expect("encode");
            black_box(snapshot::from_bytes(bytes).expect("roundtrip").node_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
