//! Property tests for the partitioner: on *arbitrary* graphs — not just
//! hand-built fixtures — the shard union must be byte-for-byte the
//! unsharded graph, placement must be component-closed, and the routing
//! hash must never drift.

use probase_router::{canonical_bytes, merge_shards, partition, shard_of, RoutingTable};
use probase_store::ConceptGraph;
use proptest::prelude::*;

/// Build a graph from a generated edge list over a small label universe.
/// Labels collide on purpose (many edges share endpoints) so generated
/// graphs get multi-edge components, diamonds, and isolated islands.
fn graph_from_edges(edges: &[(u8, u8, u8)]) -> ConceptGraph {
    let mut g = ConceptGraph::new();
    for &(from, to, count) in edges {
        if from == to {
            continue; // self-loops are not taxonomy edges
        }
        let f = g.ensure_node(&format!("c{from}"), 0);
        let t = g.ensure_node(&format!("c{to}"), 0);
        g.add_evidence(f, t, u32::from(count) + 1);
    }
    g.rebuild_indexes();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The acceptance property: for every generated graph and every
    /// shard count, merging the shards back together reproduces the
    /// unsharded graph byte-for-byte in canonical form.
    #[test]
    fn shard_union_is_the_unsharded_graph(
        edges in proptest::collection::vec((0u8..24, 0u8..24, 0u8..16), 0..96),
    ) {
        let g = graph_from_edges(&edges);
        let expected = canonical_bytes(&g);
        for n in [1usize, 2, 4, 8] {
            let p = partition(&g, n);
            prop_assert_eq!(p.shards.len(), n, "n={}", n);
            let merged = merge_shards(&p.shards);
            prop_assert_eq!(
                &canonical_bytes(&merged),
                &expected,
                "shard union diverges from the unsharded graph at n={}",
                n
            );
        }
    }

    /// Every label of a shard's graph routes back to that shard — the
    /// partition is component-closed and the table agrees with it.
    #[test]
    fn placement_is_component_closed(
        edges in proptest::collection::vec((0u8..24, 0u8..24, 0u8..16), 1..96),
        n in 1usize..9,
    ) {
        let g = graph_from_edges(&edges);
        let p = partition(&g, n);
        let table = RoutingTable::from_partition(&p);
        for (i, shard) in p.shards.iter().enumerate() {
            for node in shard.nodes() {
                let label = shard.label(node);
                prop_assert_eq!(
                    table.shard_for(label),
                    i,
                    "label {} lives on shard {} but routes elsewhere (n={})",
                    label, i, n
                );
            }
        }
    }

    /// Partitioning is a function of the graph alone: a second run (and
    /// a table rebuilt from the shard graphs, the restart path) places
    /// every label identically.
    #[test]
    fn placement_is_deterministic_across_rebuilds(
        edges in proptest::collection::vec((0u8..24, 0u8..24, 0u8..16), 1..96),
        n in 1usize..9,
    ) {
        let g = graph_from_edges(&edges);
        let a = partition(&g, n);
        let b = partition(&g, n);
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            prop_assert_eq!(&canonical_bytes(sa), &canonical_bytes(sb));
        }
        let from_partition = RoutingTable::from_partition(&a);
        let from_graphs = RoutingTable::from_shard_graphs(&b.shards);
        for node in g.nodes() {
            let label = g.label(node);
            prop_assert_eq!(
                from_partition.shard_for(label),
                from_graphs.shard_for(label),
                "restart path re-places label {} (n={})",
                label, n
            );
        }
    }

    /// The frozen routing hash: exception-free labels route by
    /// `stable_hash % n` no matter which table answers.
    #[test]
    fn hash_routing_is_stable(label in "[a-z]{1,12}", n in 1usize..9) {
        prop_assert_eq!(shard_of(&label, n), shard_of(&label, n));
        let empty = RoutingTable::new(n);
        prop_assert_eq!(empty.shard_for(&label), shard_of(&label, n));
    }
}
