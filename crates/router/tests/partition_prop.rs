//! Property tests for the partitioner: on *arbitrary* graphs — not just
//! hand-built fixtures — the shard union must be byte-for-byte the
//! unsharded graph, placement must be component-closed, and the routing
//! hash must never drift.

use probase_router::{
    canonical_bytes, merge_shards, partition, shard_of, Router, RouterConfig, RouterServer,
    RoutingTable,
};
use probase_serve::{Client, Request, ServeConfig, Server};
use probase_store::{ConceptGraph, SharedStore};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Build a graph from a generated edge list over a small label universe.
/// Labels collide on purpose (many edges share endpoints) so generated
/// graphs get multi-edge components, diamonds, and isolated islands.
fn graph_from_edges(edges: &[(u8, u8, u8)]) -> ConceptGraph {
    let mut g = ConceptGraph::new();
    for &(from, to, count) in edges {
        if from == to {
            continue; // self-loops are not taxonomy edges
        }
        let f = g.ensure_node(&format!("c{from}"), 0);
        let t = g.ensure_node(&format!("c{to}"), 0);
        g.add_evidence(f, t, u32::from(count) + 1);
    }
    g.rebuild_indexes();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The acceptance property: for every generated graph and every
    /// shard count, merging the shards back together reproduces the
    /// unsharded graph byte-for-byte in canonical form.
    #[test]
    fn shard_union_is_the_unsharded_graph(
        edges in proptest::collection::vec((0u8..24, 0u8..24, 0u8..16), 0..96),
    ) {
        let g = graph_from_edges(&edges);
        let expected = canonical_bytes(&g);
        for n in [1usize, 2, 4, 8] {
            let p = partition(&g, n);
            prop_assert_eq!(p.shards.len(), n, "n={}", n);
            let merged = merge_shards(&p.shards);
            prop_assert_eq!(
                &canonical_bytes(&merged),
                &expected,
                "shard union diverges from the unsharded graph at n={}",
                n
            );
        }
    }

    /// Every label of a shard's graph routes back to that shard — the
    /// partition is component-closed and the table agrees with it.
    #[test]
    fn placement_is_component_closed(
        edges in proptest::collection::vec((0u8..24, 0u8..24, 0u8..16), 1..96),
        n in 1usize..9,
    ) {
        let g = graph_from_edges(&edges);
        let p = partition(&g, n);
        let table = RoutingTable::from_partition(&p);
        for (i, shard) in p.shards.iter().enumerate() {
            for node in shard.nodes() {
                let label = shard.label(node);
                prop_assert_eq!(
                    table.shard_for(label),
                    i,
                    "label {} lives on shard {} but routes elsewhere (n={})",
                    label, i, n
                );
            }
        }
    }

    /// Partitioning is a function of the graph alone: a second run (and
    /// a table rebuilt from the shard graphs, the restart path) places
    /// every label identically.
    #[test]
    fn placement_is_deterministic_across_rebuilds(
        edges in proptest::collection::vec((0u8..24, 0u8..24, 0u8..16), 1..96),
        n in 1usize..9,
    ) {
        let g = graph_from_edges(&edges);
        let a = partition(&g, n);
        let b = partition(&g, n);
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            prop_assert_eq!(&canonical_bytes(sa), &canonical_bytes(sb));
        }
        let from_partition = RoutingTable::from_partition(&a);
        let from_graphs = RoutingTable::from_shard_graphs(&b.shards);
        for node in g.nodes() {
            let label = g.label(node);
            prop_assert_eq!(
                from_partition.shard_for(label),
                from_graphs.shard_for(label),
                "restart path re-places label {} (n={})",
                label, n
            );
        }
    }

    /// The frozen routing hash: exception-free labels route by
    /// `stable_hash % n` no matter which table answers.
    #[test]
    fn hash_routing_is_stable(label in "[a-z]{1,12}", n in 1usize..9) {
        prop_assert_eq!(shard_of(&label, n), shard_of(&label, n));
        let empty = RoutingTable::new(n);
        prop_assert_eq!(empty.shard_for(&label), shard_of(&label, n));
    }
}

// --- online migration property: live fleets, fewer cases -------------
//
// These cases boot a real 2-shard fleet (three servers + router) per
// input, so the case count is deliberately small; the cheap structural
// properties above keep their 64-case budget.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The migration acceptance property on *arbitrary* write
    /// sequences: starting from an empty taxonomy, a randomized stream
    /// of `add-evidence` writes — most of which bridge components
    /// across shards, forcing online migrations — leaves the union of
    /// the live shard graphs byte-for-byte equal to a single node that
    /// absorbed the same stream. Both deployments must also agree
    /// write-by-write on acceptance (cycle rejections included).
    #[test]
    fn bridge_write_streams_keep_the_shard_union_exact(
        writes in proptest::collection::vec((0u8..12, 0u8..12, 0u8..4), 1..24),
    ) {
        let serve_config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_capacity: 32,
            cache_capacity: 64,
            cache_shards: 1,
            deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        };
        let single = Server::start(SharedStore::new(ConceptGraph::new()), &serve_config)
            .expect("single-node server");
        let p = partition(&ConceptGraph::new(), 2);
        let table = RoutingTable::from_partition(&p);
        let shards: Vec<Server> = p
            .shards
            .into_iter()
            .map(|g| Server::start(SharedStore::new(g), &serve_config).expect("shard binds"))
            .collect();
        let config = RouterConfig {
            shard_addrs: shards.iter().map(|s| s.local_addr().to_string()).collect(),
            deadline: Duration::from_secs(5),
            ..RouterConfig::default()
        };
        let router = Router::new(config, table, &probase_obs::Registry::new())
            .expect("router builds");
        let front = RouterServer::start(Arc::new(router), "127.0.0.1:0").expect("router binds");
        let mut single_client = Client::connect(single.local_addr()).expect("connect single");
        let mut routed_client = Client::connect(front.local_addr()).expect("connect router");

        for &(from, to, count) in &writes {
            if from == to {
                continue;
            }
            let req = Request::AddEvidence {
                parent: format!("c{from}"),
                child: format!("c{to}"),
                count: u32::from(count) + 1,
            };
            let a = single_client.call(&req).expect("single answers");
            let b = routed_client.call(&req).expect("router answers");
            match (&a.error, &b.error) {
                (None, None) => {}
                (Some((code_a, _)), Some((code_b, _))) => {
                    prop_assert_eq!(code_a, code_b, "rejection codes diverge");
                }
                _ => prop_assert!(
                    false,
                    "deployments disagree on {:?}: single {:?}, routed {:?}",
                    req, a.error, b.error
                ),
            }
        }

        let expected = canonical_bytes(&single.state().store().clone_graph());
        let shard_graphs: Vec<ConceptGraph> = shards
            .iter()
            .map(|s| s.state().store().clone_graph())
            .collect();
        let merged = merge_shards(&shard_graphs);
        prop_assert_eq!(
            &canonical_bytes(&merged),
            &expected,
            "shard union diverged from the single node after bridge writes"
        );

        front.shutdown();
        for s in shards {
            s.shutdown();
        }
        single.shutdown();
    }
}
