//! Router fault-injection suite: a real shard fleet behind per-shard
//! chaos proxies ([`probase_testkit::ProxyFleet`]). Every seeded
//! schedule derives from `PROBASE_CHAOS_SEED`, so a CI failure replays
//! exactly: set the env var to the seed printed in the assertion
//! message and rerun `cargo test -p probase-router --test chaos`.
//!
//! The headline contracts under test:
//!
//! * killing one shard degrades exactly the labels that shard owns —
//!   everything else keeps answering, scatters carry `degraded: true`;
//! * an acked write to a surviving shard is durable across an abrupt
//!   kill (-9 style) and restart of the whole fleet;
//! * a slow-loris straggler loses to a hedged retry, not to the
//!   deadline.

use probase_router::{partition, Router, RouterConfig, RouterServer, RoutingTable};
use probase_serve::{
    Client, ClientConfig, DurabilityConfig, Json, Request, ServeConfig, Server, WalSync,
};
use probase_store::{shard_dir, ConceptGraph, SharedStore};
use probase_testkit::{Fault, FaultPlan, FaultProxy, ProxyFleet};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const SEED_VAR: &str = "PROBASE_CHAOS_SEED";
const DEFAULT_SEED: u64 = 0xCAFE_BABE;

fn chaos_seed() -> u64 {
    FaultPlan::from_env(SEED_VAR, DEFAULT_SEED).seed()
}

/// Three disconnected components, so a 4-way partition spreads them
/// over at least two shards and killing one leaves real survivors.
fn fixture_graph() -> ConceptGraph {
    let mut g = ConceptGraph::new();
    let country = g.ensure_node("country", 0);
    for (label, count) in [("China", 8u32), ("India", 5), ("Japan", 3)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(country, n, count);
    }
    let conference = g.ensure_node("conference", 0);
    for (label, count) in [("SIGMOD", 3u32), ("VLDB", 2)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(conference, n, count);
    }
    let animal = g.ensure_node("animal", 0);
    for (label, count) in [("cat", 5u32), ("dog", 4)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(animal, n, count);
    }
    g.rebuild_indexes();
    g
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 256,
        cache_shards: 4,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

/// The shard config plus a durable write path rooted at `dir`, with
/// background rebuild off so the WAL is the only thing that can save an
/// acked write across the abrupt kill below.
fn durable_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        durability: Some(DurabilityConfig {
            snapshot_dir: dir.to_path_buf(),
            wal_sync: WalSync::Always,
            rebuild_after_writes: 0,
            rebuild_interval: None,
        }),
        ..serve_config()
    }
}

/// A fresh per-test durability root under the system temp dir.
fn chaos_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "probase-router-chaos-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Fast-failing dial config for the router's shard connections, seeded
/// so retry jitter replays with the fault schedule.
fn shard_client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        max_retries: 1,
        retry_budget: 32,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(10),
        jitter: 0.5,
        seed,
        read_timeout: Some(Duration::from_millis(400)),
        ..ClientConfig::default()
    }
}

fn start_router(addrs: Vec<String>, table: RoutingTable, config: RouterConfig) -> RouterServer {
    let config = RouterConfig {
        shard_addrs: addrs,
        ..config
    };
    let router = Router::new(config, table, &probase_obs::Registry::new()).expect("router builds");
    RouterServer::start(Arc::new(router), "127.0.0.1:0").expect("router binds")
}

/// Two component roots living on different shards, or a panic if the
/// fixture ever stops spanning shards (that would defeat every scenario
/// here, so fail loudly rather than vacuously pass).
fn split_roots(table: &RoutingTable) -> (&'static str, &'static str) {
    let roots = ["country", "conference", "animal"];
    for a in roots {
        for b in roots {
            if table.shard_for(a) != table.shard_for(b) {
                return (a, b);
            }
        }
    }
    panic!("fixture components all hash to one shard; change a label");
}

fn typicality(term: &str) -> Request {
    Request::Typicality {
        term: term.to_string(),
        direction: probase_serve::Direction::Instances,
        k: 10,
    }
}

// --- kill one shard: its labels degrade, nothing else does -----------

#[test]
fn killed_shard_degrades_only_its_labels() {
    let seed = chaos_seed();
    let graph = fixture_graph();
    let p = partition(&graph, 4);
    let table = RoutingTable::from_partition(&p);
    let (dead_root, live_root) = split_roots(&table);
    let dead_home = table.shard_for(dead_root);

    let servers: Vec<Server> = p
        .shards
        .into_iter()
        .map(|g| Server::start(SharedStore::new(g), &serve_config()).expect("shard binds"))
        .collect();
    let upstreams: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    // Clean pass-through plans: the only fault in this scenario is the
    // kill itself.
    let plans = vec![FaultPlan::scripted(vec![Fault::None]); upstreams.len()];
    let mut fleet = ProxyFleet::start_scripted(&upstreams, plans).expect("fleet starts");

    let front = start_router(
        fleet.addrs().iter().map(SocketAddr::to_string).collect(),
        table,
        RouterConfig {
            deadline: Duration::from_millis(800),
            client: shard_client_config(seed),
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect(front.local_addr()).expect("connect router");

    // Sanity: both components answer through the proxies before the kill.
    for root in [dead_root, live_root] {
        let envelope = client.call(&typicality(root)).expect("pre-kill call");
        assert!(envelope.error.is_none(), "seed {seed:#x}: pre-kill {root}");
        assert!(!envelope.degraded, "seed {seed:#x}: pre-kill degraded");
    }

    fleet.kill(dead_home);

    // Single-shard queries for the dead shard's labels fail...
    let envelope = client.call(&typicality(dead_root)).expect("transport ok");
    assert!(
        envelope.error.is_some(),
        "seed {seed:#x}: {dead_root} lives on the killed shard {dead_home} and must error"
    );
    // ...while the same endpoint for a surviving shard's labels is
    // untouched — not even degraded.
    let envelope = client.call(&typicality(live_root)).expect("transport ok");
    assert!(
        envelope.error.is_none(),
        "seed {seed:#x}: survivor label {live_root} must answer"
    );
    assert!(!envelope.degraded, "seed {seed:#x}: survivor degraded");

    // Scatters keep working on the survivor subset and say so.
    let envelope = client
        .call(&Request::Labels {
            kind: probase_serve::LabelKind::Concepts,
            k: 100,
        })
        .expect("transport ok");
    assert!(envelope.error.is_none(), "seed {seed:#x}: scatter errored");
    assert!(
        envelope.degraded,
        "seed {seed:#x}: partial scatter must be flagged degraded"
    );
    let labels: Vec<&str> = envelope
        .data
        .get("labels")
        .and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(Json::as_str).collect())
        .unwrap_or_default();
    assert!(
        labels.contains(&live_root),
        "seed {seed:#x}: survivor labels missing from degraded scatter"
    );
    assert!(
        !labels.contains(&dead_root),
        "seed {seed:#x}: dead shard's labels cannot appear in a degraded scatter"
    );

    let envelope = client
        .call(&Request::Levels { term: None })
        .expect("transport ok");
    assert!(
        envelope.error.is_none() && envelope.degraded,
        "seed {seed:#x}: levels scatter"
    );

    let router = front.router();
    let telemetry = router.telemetry();
    assert!(
        telemetry.degraded.get() >= 2,
        "seed {seed:#x}: degraded counter should cover both scatters"
    );
    assert!(
        telemetry.shard_failures.get() >= 1,
        "seed {seed:#x}: shard failures must be counted"
    );

    front.shutdown();
    fleet.shutdown();
    for s in servers {
        s.shutdown();
    }
}

// --- durability: acked survivor writes outlive an abrupt fleet kill --

#[test]
fn acked_survivor_writes_survive_abrupt_restart() {
    let seed = chaos_seed();
    let root = chaos_root("durable");
    let graph = fixture_graph();
    let p = partition(&graph, 4);
    let table = RoutingTable::from_partition(&p);
    let (dead_root, live_root) = split_roots(&table);
    let dead_home = table.shard_for(dead_root);

    let servers: Vec<Server> = p
        .shards
        .into_iter()
        .enumerate()
        .map(|(i, g)| {
            let dir = shard_dir(&root, i);
            std::fs::create_dir_all(&dir).expect("shard dir");
            Server::start(SharedStore::new(g), &durable_config(&dir)).expect("shard binds")
        })
        .collect();
    let upstreams: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    let plans = vec![FaultPlan::scripted(vec![Fault::None]); upstreams.len()];
    let mut fleet = ProxyFleet::start_scripted(&upstreams, plans).expect("fleet starts");

    let front = start_router(
        fleet.addrs().iter().map(SocketAddr::to_string).collect(),
        table,
        RouterConfig {
            deadline: Duration::from_millis(800),
            client: shard_client_config(seed),
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect(front.local_addr()).expect("connect router");

    // One acked write to each component while everything is healthy.
    for (parent, child, count) in [(dead_root, "early", 2u32), (live_root, "steady", 3)] {
        client
            .call_ok(&Request::AddEvidence {
                parent: parent.to_string(),
                child: child.to_string(),
                count,
            })
            .unwrap_or_else(|e| panic!("seed {seed:#x}: healthy write {parent}/{child}: {e}"));
    }

    // Kill one shard; acked writes must keep landing on the survivors.
    fleet.kill(dead_home);
    client
        .call_ok(&Request::AddEvidence {
            parent: live_root.to_string(),
            child: "after-outage".to_string(),
            count: 7,
        })
        .unwrap_or_else(|e| panic!("seed {seed:#x}: survivor write after outage: {e}"));

    // Abrupt kill of the whole fleet: leak every shard server so no
    // thread drains and nothing flushes beyond what each ack already
    // fsynced.
    front.shutdown();
    fleet.shutdown();
    for s in servers {
        std::mem::forget(s);
    }

    // Restart every shard over the same directories from the pre-crash
    // seed graphs; recovery replays each shard's WAL.
    let p2 = partition(&fixture_graph(), 4);
    let servers2: Vec<Server> = p2
        .shards
        .into_iter()
        .enumerate()
        .map(|(i, g)| {
            Server::start(SharedStore::new(g), &durable_config(&shard_dir(&root, i)))
                .expect("shard recovers")
        })
        .collect();
    // Rebuild the routing table from the *recovered* graphs, the same
    // way `serve --shards` does after restart — the exception entries
    // for the new children must come back from the replayed WALs.
    let recovered: Vec<ConceptGraph> = servers2
        .iter()
        .map(|s| s.state().store().clone_graph())
        .collect();
    let table2 = RoutingTable::from_shard_graphs(&recovered);
    let front2 = start_router(
        servers2
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect(),
        table2,
        RouterConfig {
            deadline: Duration::from_millis(800),
            client: shard_client_config(seed),
            ..RouterConfig::default()
        },
    );
    let mut client2 = Client::connect(front2.local_addr()).expect("reconnect router");

    for (parent, child, count) in [
        (dead_root, "early", 2u64),
        (live_root, "steady", 3),
        (live_root, "after-outage", 7),
    ] {
        let (_, found) = client2
            .call_ok(&Request::Plausibility {
                parent: parent.to_string(),
                child: child.to_string(),
            })
            .unwrap_or_else(|e| {
                panic!("seed {seed:#x}: read {parent}/{child} after recovery: {e}")
            });
        assert_eq!(
            found.get("found").and_then(Json::as_bool),
            Some(true),
            "seed {seed:#x}: acked write {parent}/{child} lost in restart"
        );
        assert_eq!(
            found.get("count").and_then(Json::as_u64),
            Some(count),
            "seed {seed:#x}: acked count for {parent}/{child} wrong after replay"
        );
    }

    front2.shutdown();
    for s in servers2 {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
}

// --- hedging: a slow-loris straggler loses to the hedge --------------

#[test]
fn hedged_retry_beats_slow_loris_straggler() {
    let seed = chaos_seed();
    let graph = fixture_graph();
    let p = partition(&graph, 2);
    let table = RoutingTable::from_partition(&p);
    let home = table.shard_for("country");

    let servers: Vec<Server> = p
        .shards
        .into_iter()
        .map(|g| Server::start(SharedStore::new(g), &serve_config()).expect("shard binds"))
        .collect();
    let upstreams: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    // The home shard's first connection drips one byte per 150 ms; every
    // later connection (the script is exhausted) is clean, so the hedge
    // lands on a healthy stream.
    let plans: Vec<FaultPlan> = (0..upstreams.len())
        .map(|i| {
            if i == home {
                FaultPlan::scripted(vec![Fault::SlowLoris {
                    chunk: 1,
                    delay_ms: 150,
                }])
            } else {
                FaultPlan::scripted(vec![Fault::None])
            }
        })
        .collect();
    let fleet = ProxyFleet::start_scripted(&upstreams, plans).expect("fleet starts");

    let front = start_router(
        fleet.addrs().iter().map(SocketAddr::to_string).collect(),
        table,
        RouterConfig {
            deadline: Duration::from_secs(5),
            hedge_after: Duration::from_millis(40),
            client: ClientConfig {
                // No client-level retries: the router's hedge, not the
                // client, must win this race.
                max_retries: 0,
                seed,
                read_timeout: Some(Duration::from_secs(2)),
                ..ClientConfig::default()
            },
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect(front.local_addr()).expect("connect router");

    let start = std::time::Instant::now();
    let (_, data) = client
        .call_ok(&typicality("country"))
        .unwrap_or_else(|e| panic!("seed {seed:#x}: hedged call failed: {e}"));
    let elapsed = start.elapsed();
    assert!(
        data.get("items")
            .and_then(Json::as_arr)
            .is_some_and(|items| !items.is_empty()),
        "seed {seed:#x}: hedged answer carries results"
    );
    // The slow-loris stream needs 150 ms per byte — a full envelope that
    // way takes tens of seconds. Winning well under the deadline proves
    // the hedge answered, and the counters must agree.
    assert!(
        elapsed < Duration::from_secs(4),
        "seed {seed:#x}: answer took {elapsed:?}, straggler was not hedged"
    );
    let router = front.router();
    let telemetry = router.telemetry();
    assert!(
        telemetry.hedges.get() >= 1,
        "seed {seed:#x}: no hedge was launched"
    );
    assert!(
        telemetry.hedge_wins.get() >= 1,
        "seed {seed:#x}: hedge launched but did not win"
    );

    front.shutdown();
    fleet.shutdown();
    for s in servers {
        s.shutdown();
    }
}

// --- migration vs chaos: shard death mid-protocol stays consistent ---

/// Every label of the chaos fixture, for full-fleet equivalence sweeps.
const ALL_LABELS: [&str; 10] = [
    "country",
    "China",
    "India",
    "Japan",
    "conference",
    "SIGMOD",
    "VLDB",
    "animal",
    "cat",
    "dog",
];

/// Assert both deployments answer `req` with byte-identical payloads.
fn assert_matches_single(single: &mut Client, routed: &mut Client, req: &Request) {
    let (_, a) = single.call_ok(req).expect("single-node answers");
    let (_, b) = routed.call_ok(req).expect("routed fleet answers");
    assert_eq!(a.to_string(), b.to_string(), "payloads diverge for {req:?}");
}

/// A bridge write whose migration hits a dead shard must fail *clean*
/// — an error envelope with nothing half-applied anywhere — and once
/// the fleet is reachable again the retried write migrates for real,
/// leaving the union byte-identical to a single node.
#[test]
fn bridge_write_to_a_dead_shard_fails_clean_then_recovers() {
    let seed = chaos_seed();
    let graph = fixture_graph();
    let p = partition(&graph, 2);
    let table = RoutingTable::from_partition(&p);
    let (live_root, dead_root) = split_roots(&table);
    let dead_home = table.shard_for(dead_root);

    let servers: Vec<Server> = p
        .shards
        .into_iter()
        .map(|g| Server::start(SharedStore::new(g), &serve_config()).expect("shard binds"))
        .collect();
    let upstreams: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    let plans = vec![FaultPlan::scripted(vec![Fault::None]); upstreams.len()];
    let mut fleet = ProxyFleet::start_scripted(&upstreams, plans).expect("fleet starts");
    let front = start_router(
        fleet.addrs().iter().map(SocketAddr::to_string).collect(),
        table,
        RouterConfig {
            deadline: Duration::from_millis(800),
            client: shard_client_config(seed),
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect(front.local_addr()).expect("connect router");

    // The child's shard dies; the bridge write cannot colocate and must
    // be refused outright — not applied on the parent's side only.
    fleet.kill(dead_home);
    let write = Request::AddEvidence {
        parent: live_root.to_string(),
        child: dead_root.to_string(),
        count: 4,
    };
    let envelope = client.call(&write).expect("transport ok");
    assert!(
        envelope.error.is_some(),
        "seed {seed:#x}: bridge write with a dead shard must fail, got {:?}",
        envelope.data
    );
    // Nothing was half-applied: neither shard knows the edge.
    for s in &servers {
        let mut direct = Client::connect(s.local_addr()).expect("direct connect");
        let (_, found) = direct
            .call_ok(&Request::Plausibility {
                parent: live_root.to_string(),
                child: dead_root.to_string(),
            })
            .expect("direct plausibility");
        assert_eq!(
            found.get("found").and_then(Json::as_bool),
            Some(false),
            "seed {seed:#x}: failed bridge write left a partial edge behind"
        );
    }
    front.shutdown();
    fleet.shutdown();

    // Recovery: a fresh front straight onto the (always alive) shards.
    // The retried write now migrates the component and succeeds.
    let table2 = RoutingTable::from_partition(&partition(&fixture_graph(), 2));
    let front2 = start_router(
        servers.iter().map(|s| s.local_addr().to_string()).collect(),
        table2,
        RouterConfig {
            deadline: Duration::from_secs(5),
            client: shard_client_config(seed),
            ..RouterConfig::default()
        },
    );
    let mut client2 = Client::connect(front2.local_addr()).expect("reconnect router");
    client2
        .call_ok(&write)
        .unwrap_or_else(|e| panic!("seed {seed:#x}: retried bridge write failed: {e}"));
    let router = front2.router();
    assert!(
        router.telemetry().migrations.get() >= 1,
        "seed {seed:#x}: the retried bridge write should have migrated"
    );

    // The fleet union is byte-identical to a single node that took the
    // same (single, successful) write.
    let single = Server::start(SharedStore::new(fixture_graph()), &serve_config())
        .expect("single-node server");
    let mut single_client = Client::connect(single.local_addr()).expect("connect single");
    single_client.call_ok(&write).expect("single-node write");
    for term in ALL_LABELS {
        for direction in [
            probase_serve::Direction::Instances,
            probase_serve::Direction::Concepts,
        ] {
            assert_matches_single(
                &mut single_client,
                &mut client2,
                &Request::Typicality {
                    term: term.to_string(),
                    direction,
                    k: 10,
                },
            );
        }
    }
    assert_matches_single(
        &mut single_client,
        &mut client2,
        &Request::Isa {
            parent: live_root.to_string(),
            child: dead_root.to_string(),
        },
    );
    for kind in [
        probase_serve::LabelKind::Concepts,
        probase_serve::LabelKind::Instances,
    ] {
        assert_matches_single(
            &mut single_client,
            &mut client2,
            &Request::Labels { kind, k: 100 },
        );
    }
    front2.shutdown();
    single.shutdown();
    for s in servers {
        s.shutdown();
    }
}

/// Chaos on the replica set: the destination's replica dies before the
/// migration ships into it, then the *source primary* dies after. The
/// bridge write still acks (replication is best-effort), ship failures
/// are counted, and afterwards every read — served by the surviving
/// members, including the drained source's replica — answers clean and
/// byte-identical to a single node.
#[test]
fn migration_survives_a_dead_replica_then_a_primary_kill() {
    let seed = chaos_seed();
    let graph = fixture_graph();
    let p = partition(&graph, 2);
    let table = RoutingTable::from_partition(&p);
    let (root_a, root_b) = split_roots(&table);
    // The moving side is the smaller (ties: the child's) component, so
    // the merged owner is always the parent's shard here.
    let dst_home = table.shard_for(root_a);
    let src_home = 1 - dst_home;

    let mut primaries: Vec<Option<Server>> = Vec::new();
    let mut replicas = Vec::new();
    let mut replica_proxies: Vec<Option<FaultProxy>> = Vec::new();
    let mut addrs = Vec::new();
    let mut groups = Vec::new();
    for shard_graph in p.shards {
        let replica = Server::start(SharedStore::new(shard_graph.clone()), &serve_config())
            .expect("replica binds");
        // The primary ships through the proxy, and the router reads
        // replicas through it too — killing it is killing the replica.
        let proxy = FaultProxy::start(replica.local_addr(), FaultPlan::scripted(vec![Fault::None]))
            .expect("replica proxy");
        let primary = Server::start(
            SharedStore::new(shard_graph),
            &ServeConfig {
                replica_addrs: vec![proxy.local_addr()],
                ..serve_config()
            },
        )
        .expect("primary binds");
        addrs.push(primary.local_addr().to_string());
        groups.push(vec![proxy.local_addr().to_string()]);
        replica_proxies.push(Some(proxy));
        replicas.push(replica);
        primaries.push(Some(primary));
    }
    let front = start_router(
        addrs,
        table,
        RouterConfig {
            replica_addrs: groups,
            deadline: Duration::from_secs(5),
            client: shard_client_config(seed),
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect(front.local_addr()).expect("connect router");

    // The destination's replica dies first: the import and the write
    // itself will ship into a dead socket mid-migration.
    replica_proxies[dst_home]
        .take()
        .expect("dst replica proxy")
        .shutdown();

    let write = Request::AddEvidence {
        parent: root_a.to_string(),
        child: root_b.to_string(),
        count: 4,
    };
    client.call_ok(&write).unwrap_or_else(|e| {
        panic!("seed {seed:#x}: bridge write must survive a dead replica: {e}")
    });
    let router = front.router();
    assert!(
        router.telemetry().migrations.get() >= 1,
        "seed {seed:#x}: the bridge write should have migrated a component"
    );
    let dst_state = primaries[dst_home]
        .as_ref()
        .expect("dst primary alive")
        .state();
    let dst_replicator = dst_state.replicator().expect("dst replicates");
    assert!(
        dst_replicator.failures_total() >= 1,
        "seed {seed:#x}: ships into the dead replica must be counted as failures"
    );
    let src_state = primaries[src_home]
        .as_ref()
        .expect("src primary alive")
        .state();
    let src_replicator = src_state.replicator().expect("src replicates");
    assert!(
        src_replicator.shipped_total() >= 1,
        "seed {seed:#x}: the drain must have shipped to the source's live replica"
    );

    // Now the *source primary* dies. Moved labels redirect to the
    // destination; everything still owned by the source fails over to
    // its (drained, tombstoned) replica. Nothing degrades.
    primaries[src_home].take().expect("src primary").shutdown();

    let single = Server::start(SharedStore::new(fixture_graph()), &serve_config())
        .expect("single-node server");
    let mut single_client = Client::connect(single.local_addr()).expect("connect single");
    single_client.call_ok(&write).expect("single-node write");
    for term in ALL_LABELS {
        let req = typicality(term);
        let envelope = client
            .call(&req)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: read {term} after primary kill: {e}"));
        assert!(
            envelope.error.is_none(),
            "seed {seed:#x}: {term} errored after primary kill: {:?}",
            envelope.error
        );
        assert!(
            !envelope.degraded,
            "seed {seed:#x}: {term} degraded despite a live replica"
        );
        assert_matches_single(&mut single_client, &mut client, &req);
    }
    for kind in [
        probase_serve::LabelKind::Concepts,
        probase_serve::LabelKind::Instances,
    ] {
        let req = Request::Labels { kind, k: 100 };
        let envelope = client.call(&req).expect("labels scatter");
        assert!(
            envelope.error.is_none() && !envelope.degraded,
            "seed {seed:#x}: labels scatter must be clean over the failover set"
        );
        assert_matches_single(&mut single_client, &mut client, &req);
    }

    front.shutdown();
    single.shutdown();
    for p in replica_proxies.into_iter().flatten() {
        p.shutdown();
    }
    for s in primaries.into_iter().flatten() {
        s.shutdown();
    }
    for s in replicas {
        s.shutdown();
    }
}

// --- seeded storm: random per-shard faults, fleet stays coherent -----

#[test]
fn seeded_fault_storm_leaves_fleet_healthy() {
    let seed = chaos_seed();
    let graph = fixture_graph();
    let p = partition(&graph, 4);
    let table = RoutingTable::from_partition(&p);

    let servers: Vec<Server> = p
        .shards
        .into_iter()
        .map(|g| Server::start(SharedStore::new(g), &serve_config()).expect("shard binds"))
        .collect();
    let upstreams: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    // One seeded plan per shard, all derived from the master seed —
    // `ProxyFleet::start` splits the streams.
    let fleet = ProxyFleet::start(&upstreams, seed).expect("fleet starts");

    let front = start_router(
        fleet.addrs().iter().map(SocketAddr::to_string).collect(),
        table,
        RouterConfig {
            deadline: Duration::from_millis(800),
            hedge_after: Duration::from_millis(50),
            client: ClientConfig {
                max_retries: 2,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(10),
                seed,
                read_timeout: Some(Duration::from_millis(200)),
                ..ClientConfig::default()
            },
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect(front.local_addr()).expect("connect router");

    let terms = ["country", "China", "conference", "SIGMOD", "animal", "cat"];
    let mut succeeded = 0usize;
    let mut outcomes = Vec::new();
    for i in 0..12 {
        let envelope = client
            .call(&typicality(terms[i % terms.len()]))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: front-door transport broke: {e}"));
        let ok = envelope.error.is_none();
        succeeded += usize::from(ok);
        outcomes.push(ok);
    }
    // Faults sit between router and shards, so individual queries may
    // fail — but retries and hedges must get *some* answers through.
    assert!(
        succeeded >= 1,
        "seed {seed:#x}: every storm query failed; outcomes {outcomes:?}"
    );

    // The shards themselves took no damage: a direct (proxy-bypassing)
    // client gets a clean answer from every one.
    for (i, s) in servers.iter().enumerate() {
        let mut direct = Client::connect(s.local_addr()).expect("direct connect");
        direct
            .call_ok(&Request::Ping)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: shard {i} unhealthy after storm: {e}"));
    }

    front.shutdown();
    fleet.shutdown();
    for s in servers {
        s.shutdown();
    }
}
