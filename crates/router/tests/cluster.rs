//! Single-node vs sharded equivalence: a 4-shard deployment behind the
//! router must answer every serve endpoint with the same payload as one
//! unsharded server over the same taxonomy.
//!
//! Versions are compared only where the contract promises them (the
//! router reports the *sum* of shard versions on scatters), so the
//! assertions are on `data` — which the sharding design promises
//! bit-for-bit, not approximately.

use probase_router::{partition, Router, RouterConfig, RouterServer, RoutingTable};
use probase_serve::{Client, Direction, Json, LabelKind, Request, ServeConfig, Server};
use probase_store::{ConceptGraph, SharedStore};
use std::sync::Arc;
use std::time::Duration;

/// A taxonomy with several disconnected components, a label shared by
/// two parents (joining their components), multi-level chains, and
/// explicit plausibility — enough structure that every endpoint has
/// something nontrivial to say.
fn fixture_graph() -> ConceptGraph {
    let mut g = ConceptGraph::new();
    let country = g.ensure_node("country", 0);
    let bric = g.ensure_node("bric", 0);
    g.add_evidence(country, bric, 6);
    for (label, count) in [
        ("China", 8u32),
        ("India", 5),
        ("Japan", 3),
        ("USA", 2),
        ("Brazil", 2),
        ("Russia", 4),
    ] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(country, n, count);
    }
    for label in ["China", "India", "Brazil", "Russia"] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(bric, n, 2);
    }

    // "apple" under both company and fruit joins the two components.
    let company = g.ensure_node("company", 0);
    for (label, count) in [("Microsoft", 9u32), ("Google", 4), ("apple", 6)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(company, n, count);
    }
    let fruit = g.ensure_node("fruit", 0);
    for (label, count) in [("apple", 5u32), ("banana", 3)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(fruit, n, count);
    }

    let animal = g.ensure_node("animal", 0);
    let mammal = g.ensure_node("mammal", 0);
    g.add_evidence(animal, mammal, 6);
    for (label, count) in [("cat", 5u32), ("dog", 4)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(mammal, n, count);
    }
    let bird = g.ensure_node("bird", 0);
    g.add_evidence(animal, bird, 4);

    let conference = g.ensure_node("conference", 0);
    for (label, count) in [("SIGMOD", 3u32), ("VLDB", 2)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(conference, n, count);
    }

    let china = g.ensure_node("China", 0);
    g.set_plausibility(country, china, 0.97);
    g.set_plausibility(animal, mammal, 0.9);
    g.rebuild_indexes();
    g
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 256,
        cache_shards: 4,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

/// One unsharded server and an N-shard deployment over the same graph,
/// with clients on both front doors.
struct Deployments {
    single: Server,
    shards: Vec<Server>,
    front: RouterServer,
}

fn deploy(graph: &ConceptGraph, n: usize) -> Deployments {
    let single = Server::start(SharedStore::new(graph.clone()), &serve_config())
        .expect("single-node server");
    let p = partition(graph, n);
    let table = RoutingTable::from_partition(&p);
    let mut shards = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for shard_graph in p.shards {
        let s =
            Server::start(SharedStore::new(shard_graph), &serve_config()).expect("shard server");
        addrs.push(s.local_addr().to_string());
        shards.push(s);
    }
    let config = RouterConfig {
        shard_addrs: addrs,
        deadline: Duration::from_secs(5),
        ..RouterConfig::default()
    };
    let router = Router::new(config, table, &probase_obs::Registry::new()).expect("router builds");
    let front = RouterServer::start(Arc::new(router), "127.0.0.1:0").expect("router binds");
    Deployments {
        single,
        shards,
        front,
    }
}

impl Deployments {
    fn clients(&self) -> (Client, Client) {
        (
            Client::connect(self.single.local_addr()).expect("connect single"),
            Client::connect(self.front.local_addr()).expect("connect router"),
        )
    }

    fn shutdown(self) {
        self.front.shutdown();
        for s in self.shards {
            s.shutdown();
        }
        self.single.shutdown();
    }
}

/// Ask both deployments and return the two data payloads.
fn both(single: &mut Client, routed: &mut Client, req: &Request) -> (Json, Json) {
    let (_, a) = single.call_ok(req).expect("single-node answers");
    let (_, b) = routed.call_ok(req).expect("router answers");
    (a, b)
}

/// Assert both deployments produce byte-identical payloads.
fn assert_same(single: &mut Client, routed: &mut Client, req: &Request) {
    let (a, b) = both(single, routed, req);
    assert_eq!(a.to_string(), b.to_string(), "payloads diverge for {req:?}");
}

fn labels_set(data: &Json) -> Vec<String> {
    let mut v: Vec<String> = data
        .get("labels")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|x| x.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    v.sort();
    v
}

#[test]
fn four_shards_answer_every_endpoint_identically() {
    let graph = fixture_graph();
    let d = deploy(&graph, 4);
    let (mut single, mut routed) = d.clients();

    // ping
    let (a, b) = both(&mut single, &mut routed, &Request::Ping);
    assert_eq!(a.to_string(), b.to_string(), "ping payloads");

    // isa — positive, negative, and cross-component pairs.
    for (parent, child) in [
        ("country", "China"),
        ("bric", "Russia"),
        ("country", "cat"),
        ("animal", "mammal"),
        ("mammal", "cat"),
        ("company", "apple"),
        ("fruit", "apple"),
        ("conference", "SIGMOD"),
        ("nosuch", "China"),
    ] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Isa {
                parent: parent.to_string(),
                child: child.to_string(),
            },
        );
    }

    // typicality — both directions, every component.
    for term in [
        "country",
        "bric",
        "China",
        "apple",
        "company",
        "fruit",
        "animal",
        "mammal",
        "cat",
        "conference",
        "SIGMOD",
        "nosuch",
    ] {
        for direction in [Direction::Instances, Direction::Concepts] {
            assert_same(
                &mut single,
                &mut routed,
                &Request::Typicality {
                    term: term.to_string(),
                    direction,
                    k: 10,
                },
            );
        }
    }

    // plausibility
    for (parent, child) in [
        ("country", "China"),
        ("animal", "mammal"),
        ("fruit", "banana"),
    ] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Plausibility {
                parent: parent.to_string(),
                child: child.to_string(),
            },
        );
    }

    // levels — per-term and the whole-graph summary.
    for term in ["country", "mammal", "apple", "SIGMOD", "nosuch"] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Levels {
                term: Some(term.to_string()),
            },
        );
    }
    assert_same(&mut single, &mut routed, &Request::Levels { term: None });

    // stats — the router wraps the merged graph section and adds its
    // own telemetry section; the graph section must match exactly.
    let (a, b) = both(&mut single, &mut routed, &Request::Stats);
    let merged = b.get("graph").expect("router stats carry a graph section");
    assert_eq!(
        a.get("graph").expect("graph section").to_string(),
        merged.to_string(),
        "merged graph stats must equal single-node stats"
    );
    assert!(
        b.get("router").is_some(),
        "router stats carry a router section"
    );

    // labels — global ordering across shards is not promised; the sets
    // and the cap are.
    for kind in [LabelKind::Concepts, LabelKind::Instances] {
        let req = Request::Labels { kind, k: 100 };
        let (a, b) = both(&mut single, &mut routed, &req);
        assert_eq!(labels_set(&a), labels_set(&b), "label sets for {req:?}");
        let req = Request::Labels { kind, k: 3 };
        let (_, b) = both(&mut single, &mut routed, &req);
        assert_eq!(labels_set(&b).len(), 3, "k caps the routed answer");
    }

    // conceptualize — terms sharing a home shard and terms that force
    // the cross-shard naive-Bayes combination.
    for terms in [
        vec!["China", "India"],
        vec!["China", "Brazil", "Russia"],
        vec!["apple", "banana"],
        vec!["China", "cat"],
        vec!["apple", "cat", "SIGMOD"],
    ] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Conceptualize {
                terms: terms.iter().map(|t| t.to_string()).collect(),
                k: 8,
            },
        );
    }

    // search-rewrite
    for query in ["China conference", "apple", "animal cat", "nosuch words"] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::SearchRewrite {
                query: query.to_string(),
                k: 5,
            },
        );
    }

    d.shutdown();
}

#[test]
fn writes_keep_shards_equivalent_to_single_node() {
    let graph = fixture_graph();
    let d = deploy(&graph, 4);
    let (mut single, mut routed) = d.clients();

    // Same writes to both deployments: bump an existing edge, add a new
    // child under an existing parent (the router learns its placement).
    let writes = [
        ("country", "China", 3u32),
        ("country", "Mongolia", 2),
        ("mammal", "otter", 4),
        ("conference", "ICDE", 1),
    ];
    for (parent, child, count) in &writes {
        let req = Request::AddEvidence {
            parent: parent.to_string(),
            child: child.to_string(),
            count: *count,
        };
        let (_, a) = single.call_ok(&req).expect("single-node accepts write");
        let (_, b) = routed.call_ok(&req).expect("router accepts write");
        // The ack's `nodes` field is store-local (shard-sized behind the
        // router — a documented limit); the edge count must agree.
        assert_eq!(
            a.get("count").expect("ack count").to_string(),
            b.get("count").expect("ack count").to_string(),
            "ack counts for {req:?}"
        );
    }

    // Every written label must now answer identically — including the
    // new children, whose placement only the routing exception map
    // knows.
    for (parent, child, _) in &writes {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Isa {
                parent: parent.to_string(),
                child: child.to_string(),
            },
        );
        for term in [parent, child] {
            for direction in [Direction::Instances, Direction::Concepts] {
                assert_same(
                    &mut single,
                    &mut routed,
                    &Request::Typicality {
                        term: term.to_string(),
                        direction,
                        k: 10,
                    },
                );
            }
        }
    }

    // The merged graph stats still agree after the writes.
    let (a, b) = both(&mut single, &mut routed, &Request::Stats);
    assert_eq!(
        a.get("graph").expect("graph section").to_string(),
        b.get("graph").expect("graph section").to_string(),
        "stats diverge after writes"
    );

    d.shutdown();
}

#[test]
fn shard_counts_one_two_and_eight_also_match() {
    // The 4-shard case gets the full sweep above; here the same spot
    // checks across other shard counts guard the partitioner's edges
    // (n=1 trivial placement, n > components).
    let graph = fixture_graph();
    for n in [1usize, 2, 8] {
        let d = deploy(&graph, n);
        let (mut single, mut routed) = d.clients();
        for term in ["country", "apple", "cat", "SIGMOD"] {
            assert_same(
                &mut single,
                &mut routed,
                &Request::Typicality {
                    term: term.to_string(),
                    direction: Direction::Instances,
                    k: 10,
                },
            );
        }
        assert_same(&mut single, &mut routed, &Request::Levels { term: None });
        let (a, b) = both(&mut single, &mut routed, &Request::Stats);
        assert_eq!(
            a.get("graph").expect("graph section").to_string(),
            b.get("graph").expect("graph section").to_string(),
            "stats diverge at {n} shards"
        );
        d.shutdown();
    }
}
