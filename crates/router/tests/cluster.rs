//! Single-node vs sharded equivalence: a 4-shard deployment behind the
//! router must answer every serve endpoint with the same payload as one
//! unsharded server over the same taxonomy.
//!
//! Versions are compared only where the contract promises them (the
//! router reports the *sum* of shard versions on scatters), so the
//! assertions are on `data` — which the sharding design promises
//! bit-for-bit, not approximately.

use probase_router::{partition, Router, RouterConfig, RouterServer, RoutingTable};
use probase_serve::{Client, Direction, Json, LabelKind, Request, ServeConfig, Server};
use probase_store::{ConceptGraph, SharedStore};
use std::sync::Arc;
use std::time::Duration;

/// A taxonomy with several disconnected components, a label shared by
/// two parents (joining their components), multi-level chains, and
/// explicit plausibility — enough structure that every endpoint has
/// something nontrivial to say.
fn fixture_graph() -> ConceptGraph {
    let mut g = ConceptGraph::new();
    let country = g.ensure_node("country", 0);
    let bric = g.ensure_node("bric", 0);
    g.add_evidence(country, bric, 6);
    for (label, count) in [
        ("China", 8u32),
        ("India", 5),
        ("Japan", 3),
        ("USA", 2),
        ("Brazil", 2),
        ("Russia", 4),
    ] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(country, n, count);
    }
    for label in ["China", "India", "Brazil", "Russia"] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(bric, n, 2);
    }

    // "apple" under both company and fruit joins the two components.
    let company = g.ensure_node("company", 0);
    for (label, count) in [("Microsoft", 9u32), ("Google", 4), ("apple", 6)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(company, n, count);
    }
    let fruit = g.ensure_node("fruit", 0);
    for (label, count) in [("apple", 5u32), ("banana", 3)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(fruit, n, count);
    }

    let animal = g.ensure_node("animal", 0);
    let mammal = g.ensure_node("mammal", 0);
    g.add_evidence(animal, mammal, 6);
    for (label, count) in [("cat", 5u32), ("dog", 4)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(mammal, n, count);
    }
    let bird = g.ensure_node("bird", 0);
    g.add_evidence(animal, bird, 4);

    let conference = g.ensure_node("conference", 0);
    for (label, count) in [("SIGMOD", 3u32), ("VLDB", 2)] {
        let n = g.ensure_node(label, 0);
        g.add_evidence(conference, n, count);
    }

    let china = g.ensure_node("China", 0);
    g.set_plausibility(country, china, 0.97);
    g.set_plausibility(animal, mammal, 0.9);
    g.rebuild_indexes();
    g
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 256,
        cache_shards: 4,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

/// One unsharded server and an N-shard deployment over the same graph,
/// with clients on both front doors.
struct Deployments {
    single: Server,
    shards: Vec<Server>,
    front: RouterServer,
}

fn deploy(graph: &ConceptGraph, n: usize) -> Deployments {
    let single = Server::start(SharedStore::new(graph.clone()), &serve_config())
        .expect("single-node server");
    let p = partition(graph, n);
    let table = RoutingTable::from_partition(&p);
    let mut shards = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for shard_graph in p.shards {
        let s =
            Server::start(SharedStore::new(shard_graph), &serve_config()).expect("shard server");
        addrs.push(s.local_addr().to_string());
        shards.push(s);
    }
    let config = RouterConfig {
        shard_addrs: addrs,
        deadline: Duration::from_secs(5),
        ..RouterConfig::default()
    };
    let router = Router::new(config, table, &probase_obs::Registry::new()).expect("router builds");
    let front = RouterServer::start(Arc::new(router), "127.0.0.1:0").expect("router binds");
    Deployments {
        single,
        shards,
        front,
    }
}

impl Deployments {
    fn clients(&self) -> (Client, Client) {
        (
            Client::connect(self.single.local_addr()).expect("connect single"),
            Client::connect(self.front.local_addr()).expect("connect router"),
        )
    }

    fn shutdown(self) {
        self.front.shutdown();
        for s in self.shards {
            s.shutdown();
        }
        self.single.shutdown();
    }
}

/// Ask both deployments and return the two data payloads.
fn both(single: &mut Client, routed: &mut Client, req: &Request) -> (Json, Json) {
    let (_, a) = single.call_ok(req).expect("single-node answers");
    let (_, b) = routed.call_ok(req).expect("router answers");
    (a, b)
}

/// Assert both deployments produce byte-identical payloads.
fn assert_same(single: &mut Client, routed: &mut Client, req: &Request) {
    let (a, b) = both(single, routed, req);
    assert_eq!(a.to_string(), b.to_string(), "payloads diverge for {req:?}");
}

/// A tiny deterministic generator (splitmix-ish) so the randomized
/// bridge-write sequence replays identically on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[self.next() as usize % pool.len()]
    }
}

#[test]
fn four_shards_answer_every_endpoint_identically() {
    let graph = fixture_graph();
    let d = deploy(&graph, 4);
    let (mut single, mut routed) = d.clients();

    // ping
    let (a, b) = both(&mut single, &mut routed, &Request::Ping);
    assert_eq!(a.to_string(), b.to_string(), "ping payloads");

    // isa — positive, negative, and cross-component pairs.
    for (parent, child) in [
        ("country", "China"),
        ("bric", "Russia"),
        ("country", "cat"),
        ("animal", "mammal"),
        ("mammal", "cat"),
        ("company", "apple"),
        ("fruit", "apple"),
        ("conference", "SIGMOD"),
        ("nosuch", "China"),
    ] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Isa {
                parent: parent.to_string(),
                child: child.to_string(),
            },
        );
    }

    // typicality — both directions, every component.
    for term in [
        "country",
        "bric",
        "China",
        "apple",
        "company",
        "fruit",
        "animal",
        "mammal",
        "cat",
        "conference",
        "SIGMOD",
        "nosuch",
    ] {
        for direction in [Direction::Instances, Direction::Concepts] {
            assert_same(
                &mut single,
                &mut routed,
                &Request::Typicality {
                    term: term.to_string(),
                    direction,
                    k: 10,
                },
            );
        }
    }

    // plausibility
    for (parent, child) in [
        ("country", "China"),
        ("animal", "mammal"),
        ("fruit", "banana"),
    ] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Plausibility {
                parent: parent.to_string(),
                child: child.to_string(),
            },
        );
    }

    // levels — per-term and the whole-graph summary.
    for term in ["country", "mammal", "apple", "SIGMOD", "nosuch"] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Levels {
                term: Some(term.to_string()),
            },
        );
    }
    assert_same(&mut single, &mut routed, &Request::Levels { term: None });

    // stats — the router wraps the merged graph section and adds its
    // own telemetry section; the graph section must match exactly.
    let (a, b) = both(&mut single, &mut routed, &Request::Stats);
    let merged = b.get("graph").expect("router stats carry a graph section");
    assert_eq!(
        a.get("graph").expect("graph section").to_string(),
        merged.to_string(),
        "merged graph stats must equal single-node stats"
    );
    assert!(
        b.get("router").is_some(),
        "router stats carry a router section"
    );

    // labels — byte-identical *sequences*, not just sets: both sides
    // now sort by label bytes, and the per-shard k cap still covers the
    // global byte-order prefix (each global minimum is some shard's
    // minimum), so even truncated answers must match exactly.
    for kind in [LabelKind::Concepts, LabelKind::Instances] {
        assert_same(&mut single, &mut routed, &Request::Labels { kind, k: 100 });
        assert_same(&mut single, &mut routed, &Request::Labels { kind, k: 3 });
    }

    // conceptualize — terms sharing a home shard and terms that force
    // the cross-shard naive-Bayes combination.
    for terms in [
        vec!["China", "India"],
        vec!["China", "Brazil", "Russia"],
        vec!["apple", "banana"],
        vec!["China", "cat"],
        vec!["apple", "cat", "SIGMOD"],
    ] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Conceptualize {
                terms: terms.iter().map(|t| t.to_string()).collect(),
                k: 8,
            },
        );
    }

    // search-rewrite
    for query in ["China conference", "apple", "animal cat", "nosuch words"] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::SearchRewrite {
                query: query.to_string(),
                k: 5,
            },
        );
    }

    d.shutdown();
}

#[test]
fn writes_keep_shards_equivalent_to_single_node() {
    let graph = fixture_graph();
    let d = deploy(&graph, 4);
    let (mut single, mut routed) = d.clients();

    // Same writes to both deployments: bump an existing edge, add a new
    // child under an existing parent (the router learns its placement).
    let writes = [
        ("country", "China", 3u32),
        ("country", "Mongolia", 2),
        ("mammal", "otter", 4),
        ("conference", "ICDE", 1),
    ];
    for (parent, child, count) in &writes {
        let req = Request::AddEvidence {
            parent: parent.to_string(),
            child: child.to_string(),
            count: *count,
        };
        let (_, a) = single.call_ok(&req).expect("single-node accepts write");
        let (_, b) = routed.call_ok(&req).expect("router accepts write");
        // The ack's `nodes` field is store-local (shard-sized behind the
        // router — a documented limit); the edge count must agree.
        assert_eq!(
            a.get("count").expect("ack count").to_string(),
            b.get("count").expect("ack count").to_string(),
            "ack counts for {req:?}"
        );
    }

    // Every written label must now answer identically — including the
    // new children, whose placement only the routing exception map
    // knows.
    for (parent, child, _) in &writes {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Isa {
                parent: parent.to_string(),
                child: child.to_string(),
            },
        );
        for term in [parent, child] {
            for direction in [Direction::Instances, Direction::Concepts] {
                assert_same(
                    &mut single,
                    &mut routed,
                    &Request::Typicality {
                        term: term.to_string(),
                        direction,
                        k: 10,
                    },
                );
            }
        }
    }

    // The merged graph stats still agree after the writes.
    let (a, b) = both(&mut single, &mut routed, &Request::Stats);
    assert_eq!(
        a.get("graph").expect("graph section").to_string(),
        b.get("graph").expect("graph section").to_string(),
        "stats diverge after writes"
    );

    d.shutdown();
}

/// The headline migration property: a 4-shard fleet absorbs a
/// *randomized* sequence of bridge writes — writes whose parent and
/// child start on different shards, which historically either
/// diverged (edge applied on the parent's shard while the child's
/// component kept serving stale answers elsewhere) or required a full
/// repartition restart — and afterwards answers every endpoint
/// byte-identically to a single node that absorbed the same sequence.
/// The fleet is never restarted or repartitioned: components move
/// between shards online, via export/import, while serving.
#[test]
fn randomized_bridge_writes_stay_byte_identical_without_repartition() {
    let graph = fixture_graph();
    let d = deploy(&graph, 4);
    let (mut single, mut routed) = d.clients();

    // Labels from every component of the fixture plus fresh ones, so
    // the generated pairs bridge shards, extend components, create new
    // components, and re-bridge components that already migrated.
    let pool = [
        "country",
        "China",
        "bric",
        "company",
        "apple",
        "fruit",
        "banana",
        "animal",
        "mammal",
        "cat",
        "bird",
        "conference",
        "SIGMOD",
        "planet",
        "Mars",
        "tool",
        "hammer",
    ];
    let mut rng = Rng(0x5EED_CAFE);
    let mut attempts = Vec::new();
    while attempts.len() < 40 {
        let parent = *rng.pick(&pool);
        let child = *rng.pick(&pool);
        if parent == child {
            continue;
        }
        attempts.push((parent, child, (rng.next() % 5 + 1) as u32));
    }
    // Both deployments must agree write-for-write: same acks with the
    // same counts, and the *same rejections* (cycle-creating pairs are
    // refused by the single node, so the routed fleet — whose migrated
    // merged component sees the identical topology — must refuse them
    // too, not half-apply them on one shard).
    let mut writes = Vec::new();
    for (parent, child, count) in attempts {
        let req = Request::AddEvidence {
            parent: parent.to_string(),
            child: child.to_string(),
            count,
        };
        let a = single.call(&req).expect("single-node answers write");
        let b = routed.call(&req).expect("router answers write");
        match (&a.error, &b.error) {
            (None, None) => {
                assert_eq!(
                    a.data.get("count").expect("ack count").to_string(),
                    b.data.get("count").expect("ack count").to_string(),
                    "ack counts for {req:?}"
                );
                writes.push((parent, child));
            }
            (Some((code_a, _)), Some((code_b, _))) => {
                assert_eq!(code_a, code_b, "rejection codes for {req:?}");
            }
            _ => panic!(
                "deployments disagree on accepting {req:?}: single {:?}, routed {:?}",
                a.error, b.error
            ),
        }
    }
    assert!(
        writes.len() >= 20,
        "fixture too cyclic: only {} of 40 writes accepted",
        writes.len()
    );

    // Full endpoint sweep over every label the writes touched.
    for term in pool {
        for direction in [Direction::Instances, Direction::Concepts] {
            assert_same(
                &mut single,
                &mut routed,
                &Request::Typicality {
                    term: term.to_string(),
                    direction,
                    k: 10,
                },
            );
        }
        assert_same(
            &mut single,
            &mut routed,
            &Request::Levels {
                term: Some(term.to_string()),
            },
        );
    }
    for (parent, child) in &writes {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Isa {
                parent: parent.to_string(),
                child: child.to_string(),
            },
        );
        assert_same(
            &mut single,
            &mut routed,
            &Request::Plausibility {
                parent: parent.to_string(),
                child: child.to_string(),
            },
        );
    }
    for terms in [
        vec!["China", "Mars"],
        vec!["apple", "cat", "hammer"],
        vec!["country", "planet", "SIGMOD"],
    ] {
        assert_same(
            &mut single,
            &mut routed,
            &Request::Conceptualize {
                terms: terms.iter().map(|t| t.to_string()).collect(),
                k: 8,
            },
        );
    }
    assert_same(&mut single, &mut routed, &Request::Levels { term: None });
    for kind in [LabelKind::Concepts, LabelKind::Instances] {
        assert_same(&mut single, &mut routed, &Request::Labels { kind, k: 1000 });
    }
    let (a, b) = both(&mut single, &mut routed, &Request::Stats);
    assert_eq!(
        a.get("graph").expect("graph section").to_string(),
        b.get("graph").expect("graph section").to_string(),
        "stats diverge after bridge writes"
    );

    d.shutdown();
}

/// Replica failover: with one op-shipped replica per shard, killing a
/// shard primary degrades nothing — idempotent reads fail over to the
/// replica via the hedge path and every envelope stays clean.
#[test]
fn replicated_shards_survive_a_primary_kill_without_degrading() {
    let graph = fixture_graph();
    let p = partition(&graph, 2);
    let table = RoutingTable::from_partition(&p);
    let mut primaries = Vec::new();
    let mut replicas = Vec::new();
    let mut addrs = Vec::new();
    let mut groups = Vec::new();
    for shard_graph in p.shards {
        let replica = Server::start(SharedStore::new(shard_graph.clone()), &serve_config())
            .expect("replica server");
        let primary_config = ServeConfig {
            replica_addrs: vec![replica.local_addr()],
            ..serve_config()
        };
        let primary =
            Server::start(SharedStore::new(shard_graph), &primary_config).expect("primary server");
        addrs.push(primary.local_addr().to_string());
        groups.push(vec![replica.local_addr().to_string()]);
        replicas.push(replica);
        primaries.push(primary);
    }
    let config = RouterConfig {
        shard_addrs: addrs,
        replica_addrs: groups,
        deadline: Duration::from_secs(5),
        ..RouterConfig::default()
    };
    let router = Router::new(config, table, &probase_obs::Registry::new()).expect("router builds");
    let front = RouterServer::start(Arc::new(router), "127.0.0.1:0").expect("router binds");
    let mut client = Client::connect(front.local_addr()).expect("connect router");

    // A write through the router is shipped to the replica before the
    // ack, so the surviving copy must already have it.
    client
        .call_ok(&Request::AddEvidence {
            parent: "country".to_string(),
            child: "Mongolia".to_string(),
            count: 2,
        })
        .expect("write accepted");

    // Kill shard 0's primary outright.
    primaries.remove(0).shutdown();

    let reads = [
        Request::Typicality {
            term: "country".to_string(),
            direction: Direction::Instances,
            k: 10,
        },
        Request::Typicality {
            term: "animal".to_string(),
            direction: Direction::Instances,
            k: 10,
        },
        Request::Isa {
            parent: "country".to_string(),
            child: "Mongolia".to_string(),
        },
        Request::Levels { term: None },
        Request::Labels {
            kind: LabelKind::Concepts,
            k: 100,
        },
        Request::Stats,
        Request::Ping,
    ];
    for req in &reads {
        let env = client.call(req).expect("read answers after primary kill");
        assert!(env.error.is_none(), "error for {req:?}: {:?}", env.error);
        assert!(!env.degraded, "degraded envelope for {req:?}");
    }
    // The shipped write is visible on the surviving copy.
    let env = client
        .call(&Request::Isa {
            parent: "country".to_string(),
            child: "Mongolia".to_string(),
        })
        .expect("isa answers");
    assert_eq!(env.data.get("isa").and_then(Json::as_bool), Some(true));

    front.shutdown();
    for s in primaries {
        s.shutdown();
    }
    for s in replicas {
        s.shutdown();
    }
}

/// Satellite regression: a term under more than `MAX_K` concepts can
/// lose tail candidates to the per-term slice cap in the cross-shard
/// conceptualize combination. The envelope must say `truncated: true`
/// instead of silently presenting a clipped ranking as exact.
#[test]
fn cross_shard_conceptualize_flags_the_max_k_slice_cap() {
    use probase_serve::proto::MAX_K;
    let mut g = ConceptGraph::new();
    let item = g.ensure_node("item", 0);
    for i in 0..=MAX_K {
        let c = g.ensure_node(&format!("concept-{i:04}"), 0);
        g.add_evidence(c, item, 1 + (i % 3) as u32);
    }
    // Small separate components so at least one lands on the other
    // shard from "item"'s giant component.
    for (parent, child) in [
        ("pet", "cat"),
        ("tool", "hammer"),
        ("color", "red"),
        ("metal", "iron"),
        ("planet", "Mars"),
        ("river", "Nile"),
    ] {
        let p = g.ensure_node(parent, 0);
        let c = g.ensure_node(child, 0);
        g.add_evidence(p, c, 2);
    }
    g.rebuild_indexes();

    let p = partition(&g, 2);
    let table = RoutingTable::from_partition(&p);
    let item_home = table.shard_for("item");
    let other = ["cat", "hammer", "red", "iron", "Mars", "Nile"]
        .into_iter()
        .find(|t| table.shard_for(t) != item_home)
        .expect("some small component lands on the other shard");

    let d = deploy(&g, 2);
    let (_, mut routed) = d.clients();
    let env = routed
        .call(&Request::Conceptualize {
            terms: vec!["item".to_string(), other.to_string()],
            k: 8,
        })
        .expect("conceptualize answers");
    assert!(env.error.is_none(), "unexpected error: {:?}", env.error);
    assert!(
        env.truncated,
        "a MAX_K-clipped per-term slice must flag the envelope"
    );
    // The single-shard fast path is exact and must stay unflagged.
    let env = routed
        .call(&Request::Conceptualize {
            terms: vec!["item".to_string()],
            k: 8,
        })
        .expect("conceptualize answers");
    assert!(env.error.is_none());
    assert!(!env.truncated, "whole-shard forwarding is exact");
    d.shutdown();
}

/// Satellite regression: a router restarted *without* its routing
/// table (the `routing-table.json` was lost, or went stale across
/// migrations) rebuilds placement by querying the shards' label
/// inventories instead of misrouting learned/migrated labels.
#[test]
fn router_restarted_without_a_table_rebuilds_placement_from_shards() {
    let graph = fixture_graph();
    let d = deploy(&graph, 4);
    let (mut single, mut routed) = d.clients();

    // Writes that only the first router's learned exceptions know how
    // to route: a brand-new child pinned off its hash home, and a
    // bridge write that migrates a whole component.
    for (parent, child, count) in [
        ("country", "Mongolia", 2u32),
        ("country", "Laos", 1),
        ("mammal", "apple", 1), // bridges the animal and company/fruit components
    ] {
        let req = Request::AddEvidence {
            parent: parent.to_string(),
            child: child.to_string(),
            count,
        };
        single.call_ok(&req).expect("single-node accepts write");
        routed.call_ok(&req).expect("router accepts write");
    }

    // A second router over the same (still running) shards, with no
    // table file to load: it must rebuild placement from the fleet.
    let config = RouterConfig {
        shard_addrs: d
            .shards
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect(),
        deadline: Duration::from_secs(5),
        ..RouterConfig::default()
    };
    let router2 = Router::new(
        config,
        RoutingTable::new(d.shards.len()),
        &probase_obs::Registry::new(),
    )
    .expect("second router builds");
    router2
        .rebuild_table_from_shards()
        .expect("table rebuilds from live shards");
    let front2 = RouterServer::start(Arc::new(router2), "127.0.0.1:0").expect("binds");
    let mut routed2 = Client::connect(front2.local_addr()).expect("connect rebuilt router");

    for term in ["Mongolia", "Laos", "apple", "mammal", "country", "cat"] {
        for direction in [Direction::Instances, Direction::Concepts] {
            assert_same(
                &mut single,
                &mut routed2,
                &Request::Typicality {
                    term: term.to_string(),
                    direction,
                    k: 10,
                },
            );
        }
    }
    front2.shutdown();
    d.shutdown();
}

#[test]
fn shard_counts_one_two_and_eight_also_match() {
    // The 4-shard case gets the full sweep above; here the same spot
    // checks across other shard counts guard the partitioner's edges
    // (n=1 trivial placement, n > components).
    let graph = fixture_graph();
    for n in [1usize, 2, 8] {
        let d = deploy(&graph, n);
        let (mut single, mut routed) = d.clients();
        for term in ["country", "apple", "cat", "SIGMOD"] {
            assert_same(
                &mut single,
                &mut routed,
                &Request::Typicality {
                    term: term.to_string(),
                    direction: Direction::Instances,
                    k: 10,
                },
            );
        }
        assert_same(&mut single, &mut routed, &Request::Levels { term: None });
        let (a, b) = both(&mut single, &mut routed, &Request::Stats);
        assert_eq!(
            a.get("graph").expect("graph section").to_string(),
            b.get("graph").expect("graph section").to_string(),
            "stats diverge at {n} shards"
        );
        d.shutdown();
    }
}
