//! TCP front end for the router.
//!
//! Speaks exactly the serve wire protocol (newline-delimited JSON, same
//! request/envelope shapes), so every existing client — `probase-cli`
//! REPL, `probase-loadgen`, the `Client` type — points at a router
//! without modification. Each connection gets a reader thread; requests
//! on one connection are handled serially (pipelining across
//! connections, like the single-node server's per-connection ordering).

use crate::engine::Router;
use probase_obs::json::{self, Json};
use probase_serve::proto::{err_envelope, ErrorCode, Request};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Longest accepted request line, matching the single-node server.
const MAX_LINE: usize = 256 * 1024;

/// A running router front end.
pub struct RouterServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    router: Arc<Router>,
}

impl RouterServer {
    /// Bind `addr` and start accepting connections.
    pub fn start(router: Arc<Router>, addr: &str) -> std::io::Result<RouterServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_router = Arc::clone(&router);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_router = Arc::clone(&accept_router);
                std::thread::spawn(move || serve_connection(stream, conn_router));
            }
        });
        Ok(RouterServer {
            addr: local,
            shutdown,
            accept_handle: Some(accept_handle),
            router,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing engine behind this front end.
    pub fn router(&self) -> Arc<Router> {
        Arc::clone(&self.router)
    }

    /// Stop accepting connections and join the accept loop. In-flight
    /// connections finish their current request and then error out.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Kick the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_connection(stream: TcpStream, router: Arc<Router>) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        match read_bounded_line(&mut reader, &mut line) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(ReadError::TooLong) => {
                let reply = err_envelope(0, ErrorCode::LineTooLarge, "request line too large");
                let _ = writeln!(writer, "{reply}");
                return;
            }
            Err(ReadError::Io) => return,
        }
        let text = String::from_utf8_lossy(&line);
        let reply = respond(&router, text.trim());
        if writeln!(writer, "{reply}").is_err() {
            return;
        }
    }
}

fn respond(router: &Router, line: &str) -> Json {
    if line.is_empty() {
        return err_envelope(0, ErrorCode::BadRequest, "empty request line");
    }
    let v = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return err_envelope(0, ErrorCode::BadRequest, &format!("bad JSON: {e}")),
    };
    let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
    match Request::from_json(&v) {
        Ok((id, req)) => router.handle(id, &req),
        Err(detail) => err_envelope(id, ErrorCode::BadRequest, &detail),
    }
}

enum ReadError {
    TooLong,
    Io,
}

/// `read_until` with a hard cap so a hostile peer cannot balloon memory.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
) -> Result<usize, ReadError> {
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(_) => return Err(ReadError::Io),
        };
        if available.is_empty() {
            return if line.is_empty() {
                Ok(0)
            } else {
                Ok(line.len())
            };
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                if line.len() > MAX_LINE {
                    return Err(ReadError::TooLong);
                }
                return Ok(line.len() + 1);
            }
            None => {
                let n = available.len();
                line.extend_from_slice(available);
                reader.consume(n);
                if line.len() > MAX_LINE {
                    return Err(ReadError::TooLong);
                }
            }
        }
    }
}
