//! Deterministic label-hash partitioning of Γ.
//!
//! The partitioner splits a [`ConceptGraph`] into `n` shard graphs such
//! that a shard can answer every query about the labels it owns *exactly*
//! as the unsharded graph would. Two facts make that possible:
//!
//! 1. **Same-label senses co-locate.** Horizontal merge (Property 2)
//!    already guarantees all senses of a label live behind one label key;
//!    the partitioner treats the label, not the node, as the unit of
//!    placement, so `senses_of(label)` is always complete on one shard.
//! 2. **Components travel whole.** Typicality, isa, levels and the
//!    conceptualize priors are all functions of the weakly-connected
//!    component around a label (reachability with Bayes normalization).
//!    Assigning whole components keeps every such computation shard-local
//!    and bit-identical to the single-node answer.
//!
//! Placement is pure hashing: a component lands on
//! `shard_of(min label in component)`. For most labels
//! `shard_of(label) == owning shard` already; the few labels whose hash
//! disagrees with their component's canonical label are recorded in an
//! *exceptions* map (see `RoutingTable`), which is all the routing state
//! a front-end needs. The hash itself is a frozen FNV-1a so a restarted
//! deployment re-derives the identical placement from the same graph.

use probase_store::{snapshot, ConceptGraph, GraphView, NodeId};
use std::collections::HashMap;

/// Frozen 64-bit FNV-1a over the label bytes. This function is part of
/// the on-disk shard layout contract: changing it would silently re-home
/// every label, so it must stay byte-for-byte stable across releases
/// (pinned by `hash_values_are_frozen`).
pub fn stable_hash(label: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Default shard for a label under an `n`-way split.
pub fn shard_of(label: &str, shards: usize) -> usize {
    (stable_hash(label) % shards.max(1) as u64) as usize
}

/// The result of splitting Γ into `n` shards.
#[derive(Debug)]
pub struct Partition {
    /// One graph per shard, in shard order. Every node and edge of the
    /// input appears in exactly one shard.
    pub shards: Vec<ConceptGraph>,
    /// Labels whose owning shard differs from `shard_of(label)` —
    /// the label rode along with a component whose canonical label
    /// hashed elsewhere.
    pub exceptions: HashMap<String, usize>,
}

/// Split `graph` into `n` component-closed shards (see module docs).
///
/// Deterministic: the same graph and `n` always produce byte-identical
/// shard graphs (nodes inserted in `NodeId` order, edges in `edges()`
/// order), so a restart that rebuilds the partition from the same
/// snapshot re-creates the exact same layout. Generic over
/// [`GraphView`], so a zero-copy packed snapshot partitions without
/// being thawed first.
pub fn partition<G: GraphView>(graph: &G, n: usize) -> Partition {
    let n = n.max(1);
    let nodes: Vec<NodeId> = graph.nodes().collect();
    let mut dsu = Dsu::new(nodes.len());

    // Merge all senses of each label first (Property 2), then edge
    // endpoints: the classes are exactly the label-graph components.
    let mut first_of_label: HashMap<&str, usize> = HashMap::new();
    for &node in &nodes {
        let idx = node.0 as usize;
        match first_of_label.entry(graph.label(node)) {
            std::collections::hash_map::Entry::Occupied(e) => dsu.union(*e.get(), idx),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(idx);
            }
        }
    }
    for (from, to, _) in graph.edges() {
        dsu.union(from.0 as usize, to.0 as usize);
    }

    // Canonical label per component: lexicographically smallest label.
    let mut canonical: HashMap<usize, &str> = HashMap::new();
    for &node in &nodes {
        let root = dsu.find(node.0 as usize);
        let label = graph.label(node);
        match canonical.entry(root) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if label < *e.get() {
                    e.insert(label);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(label);
            }
        }
    }

    let mut shards: Vec<ConceptGraph> = (0..n).map(|_| ConceptGraph::new()).collect();
    let mut home: Vec<usize> = vec![0; nodes.len()];
    let mut mapped: Vec<Option<NodeId>> = vec![None; nodes.len()];
    let mut exceptions: HashMap<String, usize> = HashMap::new();
    for &node in &nodes {
        let idx = node.0 as usize;
        let shard = shard_of(canonical[&dsu.find(idx)], n);
        home[idx] = shard;
        mapped[idx] = Some(shards[shard].ensure_node(graph.label(node), graph.sense(node)));
        let label = graph.label(node);
        if shard_of(label, n) != shard {
            exceptions.insert(label.to_string(), shard);
        }
    }
    for (from, to, data) in graph.edges() {
        let shard = home[from.0 as usize];
        debug_assert_eq!(shard, home[to.0 as usize], "edge must not cross shards");
        let (f, t) = (
            mapped[from.0 as usize].expect("from mapped"),
            mapped[to.0 as usize].expect("to mapped"),
        );
        shards[shard].add_evidence(f, t, data.count);
        shards[shard].set_plausibility(f, t, data.plausibility);
    }
    for s in &mut shards {
        s.rebuild_indexes();
    }
    Partition { shards, exceptions }
}

/// Re-assemble shard graphs into one graph (shard order, then node
/// order). The inverse of [`partition`] up to insertion order; compare
/// via [`canonical_bytes`].
pub fn merge_shards(shards: &[ConceptGraph]) -> ConceptGraph {
    let mut out = ConceptGraph::new();
    for shard in shards {
        let mut mapped: HashMap<NodeId, NodeId> = HashMap::new();
        for node in shard.nodes() {
            mapped.insert(node, out.ensure_node(shard.label(node), shard.sense(node)));
        }
        for (from, to, data) in shard.edges() {
            let (f, t) = (mapped[&from], mapped[&to]);
            out.add_evidence(f, t, data.count);
            out.set_plausibility(f, t, data.plausibility);
        }
    }
    out.rebuild_indexes();
    out
}

/// Insertion-order-independent snapshot bytes: rebuild the graph with
/// nodes sorted by `(label, sense)` and edges sorted by endpoint keys,
/// then serialize. Two graphs with the same node/edge *sets* canonicalize
/// to identical bytes even if they were assembled in different orders.
pub fn canonical_bytes(graph: &ConceptGraph) -> Vec<u8> {
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    nodes.sort_by(|&a, &b| {
        graph
            .label(a)
            .cmp(graph.label(b))
            .then(graph.sense(a).cmp(&graph.sense(b)))
    });
    let mut canon = ConceptGraph::new();
    let mut mapped: HashMap<NodeId, NodeId> = HashMap::new();
    for &node in &nodes {
        mapped.insert(
            node,
            canon.ensure_node(graph.label(node), graph.sense(node)),
        );
    }
    let key = |n: NodeId| (graph.label(n).to_string(), graph.sense(n));
    let mut edges: Vec<(NodeId, NodeId, u32, f64)> = graph
        .edges()
        .map(|(f, t, d)| (f, t, d.count, d.plausibility))
        .collect();
    edges.sort_by_key(|&(f, t, _, _)| (key(f), key(t)));
    for (from, to, count, plausibility) in edges {
        let (f, t) = (mapped[&from], mapped[&to]);
        canon.add_evidence(f, t, count);
        canon.set_plausibility(f, t, plausibility);
    }
    snapshot::to_bytes(&canon)
        .expect("canonical graph encodes")
        .to_vec()
}

/// Union-find with path halving.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three disjoint components plus a multi-sense label, so any
    /// shard count from 1 to 8 exercises real splits.
    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        for name in ["China", "India", "Brazil", "Russia"] {
            let n = g.ensure_node(name, 0);
            g.add_evidence(country, n, 5);
            g.set_plausibility(country, n, 0.9);
        }
        let animal = g.ensure_node("animal", 0);
        let plant0 = g.ensure_node("plant", 0);
        let plant1 = g.ensure_node("plant", 1);
        let cat = g.ensure_node("cat", 0);
        let fern = g.ensure_node("fern", 0);
        let factory = g.ensure_node("factory-unit", 0);
        g.add_evidence(animal, cat, 3);
        g.add_evidence(plant0, fern, 7);
        g.add_evidence(plant1, factory, 2);
        g.set_plausibility(plant0, fern, 0.8);
        let conf = g.ensure_node("conference", 0);
        let sigmod = g.ensure_node("SIGMOD", 0);
        g.add_evidence(conf, sigmod, 9);
        g
    }

    #[test]
    fn hash_values_are_frozen() {
        // Golden values pin the placement function; a change here means
        // every existing sharded deployment re-homes its labels.
        assert_eq!(stable_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_hash("country"), stable_hash("country"));
        assert_ne!(stable_hash("country"), stable_hash("countrz"));
    }

    #[test]
    fn same_label_same_shard_across_runs() {
        for label in ["country", "China", "plant", "SIGMOD", "数据库"] {
            for n in [1usize, 2, 4, 8] {
                let first = shard_of(label, n);
                for _ in 0..3 {
                    assert_eq!(shard_of(label, n), first, "{label} n={n}");
                }
                assert!(first < n);
            }
        }
    }

    #[test]
    fn partition_is_deterministic_across_restarts() {
        let g = sample();
        for n in [1usize, 2, 4, 8] {
            let a = partition(&g, n);
            let b = partition(&g, n);
            assert_eq!(a.exceptions, b.exceptions, "n={n}");
            for (x, y) in a.shards.iter().zip(&b.shards) {
                assert_eq!(
                    snapshot::to_bytes(x).unwrap(),
                    snapshot::to_bytes(y).unwrap(),
                    "shard bytes must be identical at n={n}"
                );
            }
        }
    }

    #[test]
    fn senses_co_locate_and_components_travel_whole() {
        let g = sample();
        for n in [2usize, 4, 8] {
            let p = partition(&g, n);
            // All senses of "plant" (and the instances of both senses)
            // must land on a single shard.
            let holders: Vec<usize> = p
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.senses_of("plant").is_empty())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "plant split across shards at n={n}");
            let home = holders[0];
            for rider in ["fern", "factory-unit"] {
                assert!(
                    !p.shards[home].senses_of(rider).is_empty(),
                    "{rider} must ride with its component at n={n}"
                );
            }
            // No node is duplicated: totals add up exactly.
            let nodes: usize = p.shards.iter().map(|s| s.node_count()).sum();
            let edges: usize = p.shards.iter().map(|s| s.edge_count()).sum();
            assert_eq!(nodes, g.node_count());
            assert_eq!(edges, g.edge_count());
        }
    }

    #[test]
    fn exceptions_cover_exactly_the_hash_disagreements() {
        let g = sample();
        for n in [1usize, 2, 4, 8] {
            let p = partition(&g, n);
            for (i, shard) in p.shards.iter().enumerate() {
                for node in shard.nodes() {
                    let label = shard.label(node);
                    let routed = p
                        .exceptions
                        .get(label)
                        .copied()
                        .unwrap_or_else(|| shard_of(label, n));
                    assert_eq!(routed, i, "label {label} routes to its shard at n={n}");
                }
            }
        }
    }

    #[test]
    fn shard_union_is_byte_identical_to_input() {
        let g = sample();
        let want = canonical_bytes(&g);
        for n in [1usize, 2, 4, 8] {
            let p = partition(&g, n);
            let merged = merge_shards(&p.shards);
            assert_eq!(canonical_bytes(&merged), want, "union mismatch at n={n}");
        }
    }

    #[test]
    fn single_shard_partition_is_the_whole_graph() {
        let g = sample();
        let p = partition(&g, 1);
        assert_eq!(p.shards.len(), 1);
        assert!(p.exceptions.is_empty());
        assert_eq!(canonical_bytes(&p.shards[0]), canonical_bytes(&g));
    }

    #[test]
    fn empty_graph_partitions_to_empty_shards() {
        let p = partition(&ConceptGraph::new(), 4);
        assert_eq!(p.shards.len(), 4);
        assert!(p.shards.iter().all(|s| s.node_count() == 0));
        assert!(p.exceptions.is_empty());
    }
}
