//! `router.*` metrics: fan-out, hedging, degradation.

use probase_obs::{Counter, Gauge, Histogram, Json, Registry};
use std::sync::Arc;

/// Metric handles for one router, registered under `router.*`.
#[derive(Debug, Clone)]
pub struct RouterTelemetry {
    /// Requests accepted by the front end.
    pub requests: Arc<Counter>,
    /// Error envelopes returned to clients.
    pub errors: Arc<Counter>,
    /// Requests answered by exactly one shard.
    pub single_shard: Arc<Counter>,
    /// Requests that fanned out to several shards.
    pub scatter: Arc<Counter>,
    /// Sub-requests issued to shards (fan-out volume).
    pub subrequests: Arc<Counter>,
    /// Hedge attempts launched for straggling sub-requests.
    pub hedges: Arc<Counter>,
    /// Hedge attempts whose response won the race.
    pub hedge_wins: Arc<Counter>,
    /// Responses returned with `degraded: true`.
    pub degraded: Arc<Counter>,
    /// Sub-requests that failed after retries/hedging.
    pub shard_failures: Arc<Counter>,
    /// Component migrations triggered by bridge writes.
    pub migrations: Arc<Counter>,
    /// Migrations that failed mid-protocol (reconciler heals on restart).
    pub migration_failures: Arc<Counter>,
    /// `moved` redirects followed (stale routing corrected in place).
    pub moved_redirects: Arc<Counter>,
    /// Current routing-table exception entries.
    pub table_exceptions: Arc<Gauge>,
    /// End-to-end latency of single-shard requests (µs).
    pub single_latency_us: Arc<Histogram>,
    /// End-to-end latency of scatter-gather requests (µs).
    pub scatter_latency_us: Arc<Histogram>,
}

impl RouterTelemetry {
    /// Register the handles in `registry`.
    pub fn with_registry(registry: &Registry) -> RouterTelemetry {
        RouterTelemetry {
            requests: registry.counter("router.requests"),
            errors: registry.counter("router.errors"),
            single_shard: registry.counter("router.single_shard"),
            scatter: registry.counter("router.scatter"),
            subrequests: registry.counter("router.subrequests"),
            hedges: registry.counter("router.hedges"),
            hedge_wins: registry.counter("router.hedge_wins"),
            degraded: registry.counter("router.degraded"),
            shard_failures: registry.counter("router.shard_failures"),
            migrations: registry.counter("router.migrations"),
            migration_failures: registry.counter("router.migration_failures"),
            moved_redirects: registry.counter("router.moved_redirects"),
            table_exceptions: registry.gauge("router.table.exceptions"),
            single_latency_us: registry.histogram("router.single_shard.latency_us"),
            scatter_latency_us: registry.histogram("router.scatter.latency_us"),
        }
    }

    /// The `router` section of the aggregated `stats` payload.
    pub fn to_json(&self, shards: usize) -> Json {
        Json::obj(vec![
            ("shards", Json::num(shards as f64)),
            ("requests", Json::num(self.requests.get() as f64)),
            ("errors", Json::num(self.errors.get() as f64)),
            ("single_shard", Json::num(self.single_shard.get() as f64)),
            ("scatter", Json::num(self.scatter.get() as f64)),
            ("subrequests", Json::num(self.subrequests.get() as f64)),
            ("hedges", Json::num(self.hedges.get() as f64)),
            ("hedge_wins", Json::num(self.hedge_wins.get() as f64)),
            ("degraded", Json::num(self.degraded.get() as f64)),
            (
                "shard_failures",
                Json::num(self.shard_failures.get() as f64),
            ),
            ("migrations", Json::num(self.migrations.get() as f64)),
            (
                "migration_failures",
                Json::num(self.migration_failures.get() as f64),
            ),
            (
                "moved_redirects",
                Json::num(self.moved_redirects.get() as f64),
            ),
            (
                "table_exceptions",
                Json::num(self.table_exceptions.get() as f64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_show_up_in_stats_section() {
        let registry = Registry::new();
        let t = RouterTelemetry::with_registry(&registry);
        t.requests.inc();
        t.scatter.inc();
        t.hedges.add(3);
        t.table_exceptions.set(2);
        let section = t.to_json(4);
        assert_eq!(section.get("shards").and_then(Json::as_u64), Some(4));
        assert_eq!(section.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(section.get("hedges").and_then(Json::as_u64), Some(3));
        assert_eq!(
            section.get("table_exceptions").and_then(Json::as_u64),
            Some(2)
        );
        // The same counters also land in the registry snapshot.
        let snap = registry.snapshot();
        let counters = snap.get("counters").expect("counters section");
        assert_eq!(
            counters.get("router.requests").and_then(Json::as_u64),
            Some(1)
        );
    }
}
