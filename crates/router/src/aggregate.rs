//! Exact recombination of per-shard answers.
//!
//! Because the partitioner keeps components whole, per-label endpoints
//! are answered by one shard verbatim. The endpoints that span shards
//! (`stats`, `levels` summary, `labels`, `conceptualize`,
//! `search-rewrite`) are recombined here, with some care to stay
//! *bit-identical* to the single-node computation:
//!
//! * The wire codec prints non-integer `f64`s with Rust's shortest
//!   round-trip formatting and integers exactly, so shard payload
//!   numbers parse back to the same bits.
//! * Averages are merged by recovering their exact integer numerators
//!   (`round(avg × count)` — exact because integer-valued f64 sums below
//!   2^53 are lossless) and re-dividing, which reproduces the one
//!   division the single-node code performs.
//! * `conceptualize` and `search-rewrite` re-run the single-node
//!   combination logic (same operation order, same tie-breaks) over
//!   per-term answers fetched from the owning shards.

use probase_obs::Json;
use probase_text::{normalize_concept, tokenize};
use std::collections::HashMap;

/// Parse a shard's `{"items": [[label, score], ...]}` payload.
pub fn parse_items(data: &Json) -> Vec<(String, f64)> {
    data.get("items")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|pair| {
                    let pair = pair.as_arr()?;
                    Some((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_f64()?))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Re-serialize ranked items the way the shards do.
pub fn ranked(items: Vec<(String, f64)>) -> Json {
    Json::Arr(
        items
            .into_iter()
            .map(|(label, score)| Json::Arr(vec![Json::Str(label), Json::num(score)]))
            .collect(),
    )
}

fn get_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn get_f64(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Recover the exact integer numerator behind `avg = sum / count`.
fn numerator(avg: f64, count: u64) -> u64 {
    if count == 0 {
        0
    } else {
        (avg * count as f64).round() as u64
    }
}

/// Merge per-shard `stats.graph` sections into the section the
/// unsharded graph would report (field order matches the shard payload).
pub fn merge_stats_graph(sections: &[&Json]) -> Json {
    let mut concepts = 0u64;
    let mut instances = 0u64;
    let mut cs_pairs = 0u64;
    let mut ci_pairs = 0u64;
    let mut max_level = 0u64;
    let mut with_parents = 0u64;
    let mut level_sum = 0u64;
    for s in sections {
        let c = get_u64(s, "concepts");
        let cs = get_u64(s, "concept_subconcept_pairs");
        let ci = get_u64(s, "concept_instance_pairs");
        concepts += c;
        instances += get_u64(s, "instances");
        cs_pairs += cs;
        ci_pairs += ci;
        max_level = max_level.max(get_u64(s, "max_level"));
        // Each edge contributes one parent slot, so a shard's in-degree
        // numerator is its edge count; the denominator (nodes with ≥1
        // parent) is recovered from the shard's own average.
        let edges = cs + ci;
        let avg_parents = get_f64(s, "avg_parents");
        if avg_parents > 0.0 {
            with_parents += (edges as f64 / avg_parents).round() as u64;
        }
        level_sum += numerator(get_f64(s, "avg_level"), c);
    }
    let edges = cs_pairs + ci_pairs;
    let div = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    Json::obj(vec![
        ("concepts", Json::num(concepts as f64)),
        ("instances", Json::num(instances as f64)),
        ("concept_subconcept_pairs", Json::num(cs_pairs as f64)),
        ("concept_instance_pairs", Json::num(ci_pairs as f64)),
        ("avg_children", Json::num(div(edges, concepts))),
        ("avg_parents", Json::num(div(edges, with_parents))),
        ("avg_level", Json::num(div(level_sum, concepts))),
        ("max_level", Json::num(max_level as f64)),
    ])
}

/// Merge per-shard `levels` summaries (the `term: None` form).
pub fn merge_levels_summary(sections: &[&Json]) -> Json {
    let mut concepts = 0u64;
    let mut instances = 0u64;
    let mut max_level = 0u64;
    let mut level_sum = 0u64;
    for s in sections {
        let c = get_u64(s, "concepts");
        concepts += c;
        instances += get_u64(s, "instances");
        max_level = max_level.max(get_u64(s, "max_level"));
        level_sum += numerator(get_f64(s, "avg_level"), c);
    }
    let avg = if concepts == 0 {
        0.0
    } else {
        level_sum as f64 / concepts as f64
    };
    Json::obj(vec![
        ("max_level", Json::num(max_level as f64)),
        ("avg_level", Json::num(avg)),
        ("concepts", Json::num(concepts as f64)),
        ("instances", Json::num(instances as f64)),
    ])
}

/// Merge per-shard `labels` payloads: union, dedupe, sort by label
/// bytes, truncate to `k`. Each shard answers in the same byte order
/// (see `ServeState::labels`), so the merged sequence is byte-identical
/// to the single-node answer whenever every shard returned its full
/// inventory — shard order and insertion order no longer leak through.
pub fn merge_labels(sections: &[&Json], k: usize) -> Json {
    let mut all: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for s in sections {
        if let Some(arr) = s.get("labels").and_then(Json::as_arr) {
            for label in arr.iter().filter_map(Json::as_str) {
                if seen.insert(label.to_string()) {
                    all.push(label.to_string());
                }
            }
        }
    }
    all.sort_unstable();
    all.truncate(k);
    let out = all.into_iter().map(|l| Json::str(&l)).collect();
    Json::obj(vec![("labels", Json::Arr(out))])
}

/// The naive-Bayes combination step of `conceptualize`, run over
/// per-term typicality maps fetched from the owning shards. Mirrors
/// `ProbaseModel::conceptualize` operation-for-operation (same EPS, same
/// summation order, same sort tie-break, same softmax) so the result is
/// bit-identical to the single-node answer when every map is complete.
pub fn conceptualize_from_maps(per_term: &[HashMap<String, f64>], k: usize) -> Vec<(String, f64)> {
    const EPS: f64 = 1e-4;
    if per_term.is_empty() {
        return Vec::new();
    }
    let mut candidates: HashMap<String, f64> = HashMap::new();
    for m in per_term {
        for c in m.keys() {
            candidates.entry(c.clone()).or_insert(0.0);
        }
    }
    let mut scored: Vec<(String, f64)> = candidates
        .into_keys()
        .map(|c| {
            let mut s = 0.0;
            for m in per_term {
                s += m.get(&c).copied().unwrap_or(EPS).max(EPS).ln();
            }
            (c, s)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    scored.truncate(k);
    let m = scored.first().map(|(_, s)| *s).unwrap_or(0.0);
    let total: f64 = scored.iter().map(|(_, s)| (s - m).exp()).sum();
    scored
        .into_iter()
        .map(|(c, s)| (c, ((s - m).exp() / total).clamp(0.0, 1.0)))
        .collect()
}

/// What a router needs to know about terms to rewrite a query. The
/// engine implements this over the wire (routing each probe to the
/// owning shard); tests implement it over a local model to prove the
/// mirror is exact.
pub trait TermOracle {
    /// `(sense, is_instance)` pairs for a label; empty = unknown label.
    fn term_senses(&mut self, term: &str) -> Vec<(u32, bool)>;
    /// Typical instances of a concept label, most typical first.
    fn typical_instances(&mut self, label: &str, k: usize) -> Vec<(String, f64)>;
}

/// A query rewrite, mirroring `probase_apps::RewrittenQuery`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rewrite {
    /// The rewritten query text.
    pub text: String,
    /// Instance chosen per concept slot, in slot order.
    pub substitutions: Vec<String>,
    /// Product-of-typicalities ranking score.
    pub score: f64,
}

#[derive(PartialEq)]
enum SpanKind {
    Concept,
    Other,
}

struct Span {
    canonical: String,
    surface: String,
    kind: SpanKind,
}

/// Greedy longest-match spotting, mirroring `probase_apps::spot_terms`
/// with the model probes replaced by oracle lookups.
fn spot_remote(oracle: &mut impl TermOracle, text: &str) -> Vec<Span> {
    const MAX_NGRAM: usize = 4;
    let tokens = tokenize(text);
    let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < words.len() {
        let mut matched = None;
        for len in (1..=MAX_NGRAM.min(words.len() - i)).rev() {
            let surface = words[i..i + len].join(" ");
            let concept_form = normalize_concept(&surface);
            // is_concept: some sense is a non-leaf.
            if oracle
                .term_senses(&concept_form)
                .iter()
                .any(|&(_, is_instance)| !is_instance)
            {
                matched = Some((
                    len,
                    Span {
                        canonical: concept_form,
                        surface,
                        kind: SpanKind::Concept,
                    },
                ));
                break;
            }
            // knows: any sense at all.
            if !oracle.term_senses(&surface).is_empty() {
                matched = Some((
                    len,
                    Span {
                        canonical: surface.clone(),
                        surface,
                        kind: SpanKind::Other,
                    },
                ));
                break;
            }
        }
        match matched {
            Some((len, span)) => {
                out.push(span);
                i += len;
            }
            None => {
                if words[i].chars().any(|c| c.is_alphanumeric()) {
                    out.push(Span {
                        canonical: words[i].to_lowercase(),
                        surface: words[i].to_string(),
                        kind: SpanKind::Other,
                    });
                }
                i += 1;
            }
        }
    }
    out
}

/// Rewrite `query` by substituting each spotted concept with its typical
/// instances, mirroring `probase_apps::rewrite_query` exactly for the
/// serving configuration (`per_concept` instances per slot, empty
/// association model, so the bonus factor is identically 1).
pub fn rewrite_remote(
    oracle: &mut impl TermOracle,
    query: &str,
    per_concept: usize,
    max_rewrites: usize,
) -> Vec<Rewrite> {
    let spans = spot_remote(oracle, query);
    let concept_slots: Vec<(usize, Vec<(String, f64)>)> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == SpanKind::Concept)
        .map(|(i, s)| (i, oracle.typical_instances(&s.canonical, per_concept)))
        .collect();
    if concept_slots.is_empty() {
        return vec![Rewrite {
            text: query.to_string(),
            substitutions: vec![],
            score: 1.0,
        }];
    }
    let mut combos: Vec<(Vec<(usize, String)>, f64)> = vec![(Vec::new(), 1.0)];
    for (slot, instances) in &concept_slots {
        let mut next = Vec::new();
        for (chosen, score) in &combos {
            for (inst, t) in instances {
                let mut c = chosen.clone();
                c.push((*slot, inst.clone()));
                next.push((c, score * t.max(1e-6)));
            }
        }
        combos = next;
    }
    let mut rewrites: Vec<Rewrite> = combos
        .into_iter()
        .map(|(chosen, tscore)| {
            let mut words: Vec<String> = spans.iter().map(|s| s.surface.clone()).collect();
            let mut subs = Vec::new();
            for (slot, inst) in &chosen {
                words[*slot] = inst.clone();
                subs.push(inst.clone());
            }
            Rewrite {
                text: words.join(" "),
                substitutions: subs,
                // The serving association model is empty, so the
                // single-node bonus is identically 1.0.
                score: tscore,
            }
        })
        .collect();
    rewrites.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite"));
    rewrites.truncate(max_rewrites);
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use probase_apps::{rewrite_query, Association};
    use probase_obs::json;
    use probase_prob::ProbaseModel;
    use probase_store::{ConceptGraph, GraphStats, LevelMap, NodeId};

    /// Build the `stats.graph` payload exactly as a shard would.
    fn graph_section(g: &ConceptGraph) -> Json {
        let s = GraphStats::compute(g);
        Json::obj(vec![
            ("concepts", Json::num(s.concepts as f64)),
            ("instances", Json::num(s.instances as f64)),
            (
                "concept_subconcept_pairs",
                Json::num(s.concept_subconcept_pairs as f64),
            ),
            (
                "concept_instance_pairs",
                Json::num(s.concept_instance_pairs as f64),
            ),
            ("avg_children", Json::num(s.avg_children)),
            ("avg_parents", Json::num(s.avg_parents)),
            ("avg_level", Json::num(s.avg_level)),
            ("max_level", Json::num(s.max_level as f64)),
        ])
    }

    /// Build the `levels` summary payload exactly as a shard would.
    fn levels_section(g: &ConceptGraph) -> Json {
        let map = LevelMap::compute(g);
        let concepts: Vec<NodeId> = g.concepts().collect();
        let avg = if concepts.is_empty() {
            0.0
        } else {
            concepts.iter().map(|&c| map.level(c) as f64).sum::<f64>() / concepts.len() as f64
        };
        Json::obj(vec![
            ("max_level", Json::num(map.max_level() as f64)),
            ("avg_level", Json::num(avg)),
            ("concepts", Json::num(concepts.len() as f64)),
            (
                "instances",
                Json::num((g.node_count() - concepts.len()) as f64),
            ),
        ])
    }

    /// Multi-component, multi-level graph so averages are non-trivial.
    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        let bric = g.ensure_node("bric country", 0);
        g.add_evidence(country, bric, 9);
        g.set_plausibility(country, bric, 0.95);
        for name in ["China", "India", "Brazil", "Russia"] {
            let n = g.ensure_node(name, 0);
            g.add_evidence(bric, n, 4);
            g.set_plausibility(bric, n, 0.9);
        }
        let usa = g.ensure_node("USA", 0);
        g.add_evidence(country, usa, 7);
        g.set_plausibility(country, usa, 0.85);
        let animal = g.ensure_node("animal", 0);
        let mammal = g.ensure_node("mammal", 0);
        let cat = g.ensure_node("cat", 0);
        g.add_evidence(animal, mammal, 5);
        g.set_plausibility(animal, mammal, 0.8);
        g.add_evidence(mammal, cat, 6);
        g.set_plausibility(mammal, cat, 0.75);
        let conf = g.ensure_node("conference", 0);
        for name in ["SIGMOD", "VLDB"] {
            let n = g.ensure_node(name, 0);
            g.add_evidence(conf, n, 3);
            g.set_plausibility(conf, n, 0.7);
        }
        g
    }

    /// Round a payload through the wire codec, as scatter-gather does.
    fn wire(v: &Json) -> Json {
        json::parse(&v.to_string()).expect("wire roundtrip parses")
    }

    #[test]
    fn stats_merge_is_bit_identical_to_single_node() {
        let g = sample();
        let want = graph_section(&g).to_string();
        for n in [1usize, 2, 4, 8] {
            let p = partition(&g, n);
            let sections: Vec<Json> = p.shards.iter().map(|s| wire(&graph_section(s))).collect();
            let refs: Vec<&Json> = sections.iter().collect();
            assert_eq!(merge_stats_graph(&refs).to_string(), want, "n={n}");
        }
    }

    #[test]
    fn levels_merge_is_bit_identical_to_single_node() {
        let g = sample();
        let want = levels_section(&g).to_string();
        for n in [1usize, 2, 4, 8] {
            let p = partition(&g, n);
            let sections: Vec<Json> = p.shards.iter().map(|s| wire(&levels_section(s))).collect();
            let refs: Vec<&Json> = sections.iter().collect();
            assert_eq!(merge_levels_summary(&refs).to_string(), want, "n={n}");
        }
    }

    #[test]
    fn labels_merge_covers_the_same_set() {
        let g = sample();
        let p = partition(&g, 4);
        let sections: Vec<Json> = p
            .shards
            .iter()
            .map(|s| {
                let labels: Vec<Json> = s
                    .instances()
                    .map(|n| s.label(n).to_string())
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .map(Json::Str)
                    .collect();
                Json::obj(vec![("labels", Json::Arr(labels))])
            })
            .collect();
        let refs: Vec<&Json> = sections.iter().collect();
        let merged = merge_labels(&refs, 1000);
        let got: Vec<String> = merged
            .get("labels")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        // Exact sequence, not just the same set: the merge sorts by
        // label bytes, so shard count and shard order must not show.
        let want: Vec<String> = g
            .instances()
            .map(|n| g.label(n).to_string())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        assert_eq!(got, want);
        // Truncation respects k and keeps the byte-order prefix.
        let truncated = merge_labels(&refs, 2);
        let head: Vec<String> = truncated
            .get("labels")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        assert_eq!(head, want[..2].to_vec());
    }

    #[test]
    fn conceptualize_combination_matches_model_bit_for_bit() {
        let g = sample();
        // One model per shard — the router fetches each term's slice
        // from the shard owning it. (A model over the *merged* graph
        // would sum typicality in a different adjacency order and can
        // drift in the last ulp; the per-shard graphs preserve the
        // original per-component insertion order exactly.)
        let p = partition(&g, 4);
        let table = crate::table::RoutingTable::from_partition(&p);
        let shard_models: Vec<ProbaseModel> = p
            .shards
            .iter()
            .map(|s| ProbaseModel::new(s.clone()))
            .collect();
        let reference = ProbaseModel::new(sample());
        for terms in [
            vec!["China", "India"],
            vec!["China", "India", "Brazil"],
            vec!["cat"],
            vec!["China", "cat"],
            vec!["unknown-term", "China"],
        ] {
            // Per-term maps as the router fetches them: the owning
            // shard's typical_concepts, rounded through the wire codec.
            let per_term: Vec<HashMap<String, f64>> = terms
                .iter()
                .map(|t| {
                    let model = &shard_models[table.shard_for(t)];
                    let items = model.typical_concepts(t, probase_serve::proto::MAX_K);
                    let parsed = parse_items(&wire(&Json::obj(vec![("items", ranked(items))])));
                    parsed.into_iter().collect()
                })
                .collect();
            let got = conceptualize_from_maps(&per_term, 8);
            let want = reference.conceptualize(&terms, 8);
            assert_eq!(got.len(), want.len(), "{terms:?}");
            for ((gl, gs), (wl, ws)) in got.iter().zip(&want) {
                assert_eq!(gl, wl, "{terms:?}");
                assert_eq!(gs.to_bits(), ws.to_bits(), "score bits for {gl} {terms:?}");
            }
        }
    }

    /// Oracle over a local model — exactly what the engine does over the
    /// wire, minus the sockets.
    struct LocalOracle<'a> {
        model: &'a ProbaseModel,
    }

    impl TermOracle for LocalOracle<'_> {
        fn term_senses(&mut self, term: &str) -> Vec<(u32, bool)> {
            let g = self.model.graph();
            g.senses_of(term)
                .into_iter()
                .map(|n| (g.sense(n), g.is_instance(n)))
                .collect()
        }

        fn typical_instances(&mut self, label: &str, k: usize) -> Vec<(String, f64)> {
            // Wire round trip, to prove scores survive the codec.
            let items = self.model.typical_instances(label, k);
            parse_items(&wire(&Json::obj(vec![("items", ranked(items))])))
        }
    }

    #[test]
    fn rewrite_mirror_matches_apps_rewrite_query() {
        let g = sample();
        let model = ProbaseModel::new(g);
        let assoc = Association::default();
        for query in [
            "bric countries",
            "flights to bric countries",
            "animals in bric countries",
            "nothing spotted here!!",
            "cat",
        ] {
            let want = rewrite_query(&model, &assoc, query, 4, 10);
            let mut oracle = LocalOracle { model: &model };
            let got = rewrite_remote(&mut oracle, query, 4, 10);
            assert_eq!(got.len(), want.len(), "{query}");
            for (g_rw, w_rw) in got.iter().zip(&want) {
                assert_eq!(g_rw.text, w_rw.text, "{query}");
                assert_eq!(g_rw.substitutions, w_rw.substitutions, "{query}");
                assert_eq!(
                    g_rw.score.to_bits(),
                    w_rw.score.to_bits(),
                    "score bits for {query}"
                );
            }
        }
    }

    #[test]
    fn parse_items_tolerates_malformed_entries() {
        let v = json::parse(r#"{"items":[["a",0.5],["broken"],[1,2],["b",0.25]]}"#).unwrap();
        assert_eq!(
            parse_items(&v),
            vec![("a".to_string(), 0.5), ("b".to_string(), 0.25)]
        );
        assert!(parse_items(&json::parse("{}").unwrap()).is_empty());
    }
}
