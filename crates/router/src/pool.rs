//! Per-shard connection pools.
//!
//! Each shard is a *replica group*: member 0 is the primary, members
//! 1.. are WAL-shipped replicas. Every member gets a small LIFO pool of
//! [`Client`]s. A checkout pops an idle connection or dials a fresh
//! one; a connection is returned only after a clean round trip, so a
//! desynced or dead stream is never reused. Hedged attempts always run
//! on their own checkout, which means a straggling first attempt cannot
//! delay (or corrupt) the hedge — and with replicas configured, attempt
//! `n` lands on member `n % group size`, so the hedge for a dead
//! primary dials a replica instead of the same dead socket.

use parking_lot::Mutex;
use probase_serve::{Client, ClientConfig, ClientError, Envelope, Request};

/// Connection pools for all shards of one deployment.
pub struct ShardPool {
    /// `groups[shard][member]`: member 0 is the primary.
    groups: Vec<Vec<String>>,
    config: ClientConfig,
    /// `idle[shard][member]`: idle connections per group member.
    idle: Vec<Vec<Mutex<Vec<Client>>>>,
    /// Idle connections kept per member.
    cap: usize,
}

impl ShardPool {
    /// A pool over `addrs` (index = shard id, no replicas) dialing with
    /// `config`.
    pub fn new(addrs: Vec<String>, config: ClientConfig, cap: usize) -> ShardPool {
        let groups = addrs.into_iter().map(|a| vec![a]).collect();
        ShardPool::with_groups(groups, config, cap)
    }

    /// A pool over replica groups (`groups[shard][0]` = primary).
    /// Every group must be non-empty.
    pub fn with_groups(groups: Vec<Vec<String>>, config: ClientConfig, cap: usize) -> ShardPool {
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "every shard needs at least a primary address"
        );
        let idle = groups
            .iter()
            .map(|g| g.iter().map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        ShardPool {
            groups,
            config,
            idle,
            cap: cap.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.groups.len()
    }

    /// The primary address of shard `i`.
    pub fn addr(&self, i: usize) -> &str {
        &self.groups[i][0]
    }

    /// Number of members (primary + replicas) in shard `i`'s group.
    pub fn members(&self, i: usize) -> usize {
        self.groups[i].len()
    }

    /// One round trip against shard `shard`'s **primary**. Writes and
    /// migration calls use this: replicas are read-only by protocol.
    pub fn call(&self, shard: usize, req: &Request) -> Result<Envelope, ClientError> {
        self.call_member(shard, 0, req)
    }

    /// One round trip against attempt `attempt` of shard `shard`:
    /// checkout (or dial) member `attempt % group size`, call, and
    /// check the connection back in on success. The client applies its
    /// own retry policy (idempotent reads only) under `config`.
    pub fn call_member(
        &self,
        shard: usize,
        attempt: usize,
        req: &Request,
    ) -> Result<Envelope, ClientError> {
        let member = attempt % self.groups[shard].len();
        let slot = &self.idle[shard][member];
        let mut client = match slot.lock().pop() {
            Some(c) => c,
            None => Client::connect_with(&self.groups[shard][member], self.config.clone())?,
        };
        match client.call(req) {
            Ok(envelope) => {
                let mut idle = slot.lock();
                if idle.len() < self.cap {
                    idle.push(client);
                }
                Ok(envelope)
            }
            // Drop the client: after a failure the stream state is
            // unknowable (the server may still answer the old request).
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_serve::{ServeConfig, Server};
    use probase_store::{ConceptGraph, SharedStore};

    fn tiny_server() -> Server {
        let mut g = ConceptGraph::new();
        let c = g.ensure_node("country", 0);
        let i = g.ensure_node("China", 0);
        g.add_evidence(c, i, 5);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        };
        Server::start(SharedStore::new(g), &config).expect("server starts")
    }

    #[test]
    fn call_reuses_connections_up_to_cap() {
        let server = tiny_server();
        let pool = ShardPool::new(
            vec![server.local_addr().to_string()],
            ClientConfig::default(),
            2,
        );
        for _ in 0..5 {
            let env = pool.call(0, &Request::Ping).expect("ping ok");
            assert!(env.error.is_none());
        }
        assert!(pool.idle[0][0].lock().len() <= 2);
        server.shutdown();
    }

    #[test]
    fn dead_shard_surfaces_as_error() {
        // Bind-then-drop leaves a port with no listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let pool = ShardPool::new(vec![addr], ClientConfig::default(), 2);
        assert!(pool.call(0, &Request::Ping).is_err());
    }

    #[test]
    fn hedge_attempts_rotate_onto_replicas() {
        let primary_is_dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let replica = tiny_server();
        let pool = ShardPool::with_groups(
            vec![vec![primary_is_dead, replica.local_addr().to_string()]],
            ClientConfig::default(),
            2,
        );
        // Attempt 0 hits the dead primary, attempt 1 the live replica.
        assert!(pool.call_member(0, 0, &Request::Ping).is_err());
        let env = pool.call_member(0, 1, &Request::Ping).expect("replica ok");
        assert!(env.error.is_none());
        replica.shutdown();
    }
}
