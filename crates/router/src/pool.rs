//! Per-shard connection pools.
//!
//! Each shard gets a small LIFO pool of [`Client`]s. A checkout pops an
//! idle connection or dials a fresh one; a connection is returned only
//! after a clean round trip, so a desynced or dead stream is never
//! reused. Hedged attempts always run on their own checkout, which means
//! a straggling first attempt cannot delay (or corrupt) the hedge.

use parking_lot::Mutex;
use probase_serve::{Client, ClientConfig, ClientError, Envelope, Request};

/// Connection pools for all shards of one deployment.
pub struct ShardPool {
    addrs: Vec<String>,
    config: ClientConfig,
    idle: Vec<Mutex<Vec<Client>>>,
    /// Idle connections kept per shard.
    cap: usize,
}

impl ShardPool {
    /// A pool over `addrs` (index = shard id) dialing with `config`.
    pub fn new(addrs: Vec<String>, config: ClientConfig, cap: usize) -> ShardPool {
        let idle = addrs.iter().map(|_| Mutex::new(Vec::new())).collect();
        ShardPool {
            addrs,
            config,
            idle,
            cap: cap.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.addrs.len()
    }

    /// The address of shard `i`.
    pub fn addr(&self, i: usize) -> &str {
        &self.addrs[i]
    }

    /// One round trip against shard `shard`: checkout (or dial), call,
    /// and check the connection back in on success. The client applies
    /// its own retry policy (idempotent reads only) under `config`.
    pub fn call(&self, shard: usize, req: &Request) -> Result<Envelope, ClientError> {
        let mut client = match self.idle[shard].lock().pop() {
            Some(c) => c,
            None => Client::connect_with(&self.addrs[shard], self.config.clone())?,
        };
        match client.call(req) {
            Ok(envelope) => {
                let mut idle = self.idle[shard].lock();
                if idle.len() < self.cap {
                    idle.push(client);
                }
                Ok(envelope)
            }
            // Drop the client: after a failure the stream state is
            // unknowable (the server may still answer the old request).
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_serve::{ServeConfig, Server};
    use probase_store::{ConceptGraph, SharedStore};

    fn tiny_server() -> Server {
        let mut g = ConceptGraph::new();
        let c = g.ensure_node("country", 0);
        let i = g.ensure_node("China", 0);
        g.add_evidence(c, i, 5);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        };
        Server::start(SharedStore::new(g), &config).expect("server starts")
    }

    #[test]
    fn call_reuses_connections_up_to_cap() {
        let server = tiny_server();
        let pool = ShardPool::new(
            vec![server.local_addr().to_string()],
            ClientConfig::default(),
            2,
        );
        for _ in 0..5 {
            let env = pool.call(0, &Request::Ping).expect("ping ok");
            assert!(env.error.is_none());
        }
        assert!(pool.idle[0].lock().len() <= 2);
        server.shutdown();
    }

    #[test]
    fn dead_shard_surfaces_as_error() {
        // Bind-then-drop leaves a port with no listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let pool = ShardPool::new(vec![addr], ClientConfig::default(), 2);
        assert!(pool.call(0, &Request::Ping).is_err());
    }
}
