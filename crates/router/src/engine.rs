//! The routing engine: per-endpoint query plans over a shard fleet.
//!
//! Per-label endpoints (`isa`, `typicality`, `plausibility`, per-term
//! `levels`) forward to the owning shard and return its answer verbatim.
//! Whole-graph endpoints scatter to every shard and recombine exactly
//! (see [`crate::aggregate`]). `conceptualize` and `search-rewrite`
//! forward whole when every involved label routes to one shard and
//! otherwise re-run the single-node combination over per-label answers
//! fetched from the owning shards.
//!
//! Failure handling:
//!
//! * every sub-request runs under a per-shard **deadline**;
//! * idempotent sub-requests that straggle past `hedge_after` get a
//!   **hedged** second attempt on a fresh connection — first answer wins;
//! * when a scatter loses some (not all) shards, the surviving answers
//!   are combined and returned with `"degraded": true` in the envelope
//!   (old clients ignore the key); single-shard queries to a dead shard
//!   fail with an error envelope, so a shard outage degrades exactly the
//!   labels that shard owns.

use crate::aggregate::{self, TermOracle};
use crate::partition::{partition, Partition};
use crate::pool::ShardPool;
use crate::table::RoutingTable;
use crate::telemetry::RouterTelemetry;
use parking_lot::{Mutex, RwLock};
use probase_obs::{Json, Registry};
use probase_serve::proto::{
    annotated_envelope, degraded_envelope, err_envelope, ok_envelope, Direction, ErrorCode,
    LabelKind, Request, MAX_K,
};
use probase_serve::{ClientConfig, ClientError, Envelope};
use probase_store::{shard_dir, snapshot};
use std::collections::HashMap;
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many instances `search-rewrite` substitutes per concept slot —
/// must match the single-node handler for bit-identical answers.
const REWRITE_PER_CONCEPT: usize = 4;

/// Configuration for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard addresses, index = shard id. Length must match the table.
    pub shard_addrs: Vec<String>,
    /// Per-shard deadline for one sub-request (including hedges).
    pub deadline: Duration,
    /// How long an idempotent sub-request may straggle before a hedged
    /// second attempt is launched.
    pub hedge_after: Duration,
    /// Idle connections kept per shard.
    pub pool_cap: usize,
    /// Dial configuration for shard connections. When `read_timeout` is
    /// unset it is defaulted to `deadline` so a blackholed shard cannot
    /// pin attempt threads forever.
    pub client: ClientConfig,
    /// Root of the `shard-N/` durability layout for in-process
    /// deployments; enables the router-side `snapshot-load`
    /// (partition + scatter). `None` for the standalone `route` mode.
    pub snapshot_root: Option<PathBuf>,
    /// Replica addresses per shard (`replica_addrs[i]` = replicas of
    /// shard `i`, primary excluded). Empty for unreplicated fleets;
    /// otherwise the outer length must match `shard_addrs`. Hedges and
    /// fast-failure retries of idempotent sub-requests rotate onto the
    /// replicas, so a dead primary costs reads one hedge interval, not
    /// availability. Writes and migration calls always hit the primary.
    pub replica_addrs: Vec<Vec<String>>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shard_addrs: Vec::new(),
            deadline: Duration::from_secs(2),
            hedge_after: Duration::from_millis(150),
            pool_cap: 4,
            client: ClientConfig::default(),
            snapshot_root: None,
            replica_addrs: Vec::new(),
        }
    }
}

/// Why a sub-request ultimately failed.
#[derive(Debug)]
enum ShardFailure {
    /// The per-shard deadline elapsed with no answer.
    Deadline,
    /// Transport or protocol failure after retries and hedging.
    Unavailable(String),
}

impl ShardFailure {
    fn code(&self) -> ErrorCode {
        match self {
            ShardFailure::Deadline => ErrorCode::DeadlineExceeded,
            ShardFailure::Unavailable(_) => ErrorCode::Internal,
        }
    }

    fn detail(&self, addr: &str) -> String {
        match self {
            ShardFailure::Deadline => format!("shard {addr}: deadline exceeded"),
            ShardFailure::Unavailable(e) => format!("shard {addr}: {e}"),
        }
    }
}

/// The routing engine for one shard fleet.
pub struct Router {
    table: RwLock<RoutingTable>,
    pool: Arc<ShardPool>,
    telemetry: RouterTelemetry,
    deadline: Duration,
    hedge_after: Duration,
    snapshot_root: Option<PathBuf>,
    load_seq: AtomicU64,
    /// Serializes component migrations: two concurrent bridge writes
    /// could otherwise race moves of overlapping components.
    migration: Mutex<()>,
}

impl Router {
    /// Build a router over `config.shard_addrs` using `table` for label
    /// placement. Fails if the table's shard count disagrees with the
    /// address list.
    pub fn new(
        config: RouterConfig,
        table: RoutingTable,
        registry: &Registry,
    ) -> Result<Router, String> {
        if config.shard_addrs.is_empty() {
            return Err("router needs at least one shard address".to_string());
        }
        if table.shards() != config.shard_addrs.len() {
            return Err(format!(
                "routing table covers {} shards but {} addresses were given",
                table.shards(),
                config.shard_addrs.len()
            ));
        }
        if !config.replica_addrs.is_empty()
            && config.replica_addrs.len() != config.shard_addrs.len()
        {
            return Err(format!(
                "replica groups cover {} shards but {} primaries were given",
                config.replica_addrs.len(),
                config.shard_addrs.len()
            ));
        }
        let mut client = config.client.clone();
        if client.read_timeout.is_none() {
            client.read_timeout = Some(config.deadline);
        }
        let telemetry = RouterTelemetry::with_registry(registry);
        telemetry
            .table_exceptions
            .set(table.exception_count() as i64);
        let mut groups: Vec<Vec<String>> =
            config.shard_addrs.into_iter().map(|a| vec![a]).collect();
        for (group, replicas) in groups.iter_mut().zip(&config.replica_addrs) {
            group.extend(replicas.iter().cloned());
        }
        Ok(Router {
            table: RwLock::new(table),
            pool: Arc::new(ShardPool::with_groups(groups, client, config.pool_cap)),
            telemetry,
            deadline: config.deadline,
            hedge_after: config.hedge_after,
            snapshot_root: config.snapshot_root,
            load_seq: AtomicU64::new(0),
            migration: Mutex::new(()),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.pool.shards()
    }

    /// A snapshot of the current routing table.
    pub fn table(&self) -> RoutingTable {
        self.table.read().clone()
    }

    /// This router's metric handles.
    pub fn telemetry(&self) -> &RouterTelemetry {
        &self.telemetry
    }

    /// Answer one request, returning a complete response envelope.
    pub fn handle(&self, id: u64, req: &Request) -> Json {
        self.telemetry.requests.inc();
        let start = Instant::now();
        let out = match req {
            Request::Ping => self.scatter_ping(id),
            Request::Isa { child, .. } => self.forward(id, req, child),
            Request::Plausibility { child, .. } => self.forward(id, req, child),
            Request::Typicality { term, .. } => self.forward(id, req, term),
            Request::Levels { term: Some(term) } => self.forward(id, req, term),
            Request::Levels { term: None } => self.scatter_levels(id),
            Request::Stats => self.scatter_stats(id),
            Request::Labels { k, .. } => self.scatter_labels(id, req, *k),
            Request::Conceptualize { terms, k } => self.conceptualize(id, terms, *k),
            Request::SearchRewrite { query, k } => self.search_rewrite(id, query, *k),
            Request::AddEvidence { parent, child, .. } => self.add_evidence(id, req, parent, child),
            Request::SnapshotLoad { path } => self.snapshot_load(id, path),
            // The migration pair is router→shard plumbing: a client
            // invoking it through the router could desync the routing
            // table from shard contents.
            Request::ExportComponent { .. } | Request::ImportComponent { .. } => err_envelope(
                id,
                ErrorCode::BadRequest,
                "migration endpoints are shard-internal and not routable",
            ),
        };
        let scatterish = !matches!(
            req,
            Request::Isa { .. }
                | Request::Plausibility { .. }
                | Request::Typicality { .. }
                | Request::Levels { term: Some(_) }
                | Request::AddEvidence { .. }
                | Request::ExportComponent { .. }
                | Request::ImportComponent { .. }
        );
        let us = start.elapsed().as_micros() as u64;
        if scatterish {
            self.telemetry.scatter.inc();
            self.telemetry.scatter_latency_us.record(us);
        } else {
            self.telemetry.single_shard.inc();
            self.telemetry.single_latency_us.record(us);
        }
        if out.get("ok").and_then(Json::as_bool) != Some(true) {
            self.telemetry.errors.inc();
        } else if out.get("degraded").and_then(Json::as_bool) == Some(true) {
            self.telemetry.degraded.inc();
        }
        out
    }

    // ---- single-shard plan ------------------------------------------

    fn forward(&self, id: u64, req: &Request, label: &str) -> Json {
        match self.call_label(label, req) {
            Ok(env) => env_to_json(id, env),
            Err((shard, f)) => err_envelope(id, f.code(), &f.detail(self.pool.addr(shard))),
        }
    }

    /// Call the shard owning `label`, following at most one `moved`
    /// tombstone redirect. A redirect means the routing table went
    /// stale across a migration (e.g. the router restarted with an old
    /// table file); the corrected placement is learned so the next
    /// request routes directly.
    fn call_label(&self, label: &str, req: &Request) -> Result<Envelope, (usize, ShardFailure)> {
        let shard = self.table.read().shard_for(label);
        match self.call_shard(shard, req) {
            Ok(env) => {
                if let Some(target) = moved_target(&env) {
                    if target != shard && target < self.pool.shards() {
                        self.telemetry.moved_redirects.inc();
                        {
                            let mut table = self.table.write();
                            table.learn(label, target);
                            self.telemetry
                                .table_exceptions
                                .set(table.exception_count() as i64);
                        }
                        return self.call_shard(target, req).map_err(|f| (target, f));
                    }
                }
                Ok(env)
            }
            Err(f) => Err((shard, f)),
        }
    }

    // ---- scatter plans ----------------------------------------------

    fn scatter(&self, req: &Request) -> Vec<Result<Envelope, ShardFailure>> {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.pool.shards())
                .map(|shard| s.spawn(move || self.call_shard(shard, req)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker panicked"))
                .collect()
        })
    }

    /// Combine scatter results: version = Σ shard versions (monotone per
    /// shard), degraded when some shard was lost, error when all were.
    fn combine_scatter<F>(
        &self,
        id: u64,
        results: Vec<Result<Envelope, ShardFailure>>,
        merge: F,
    ) -> Json
    where
        F: FnOnce(&[Envelope]) -> Json,
    {
        let mut oks = Vec::new();
        let mut lost = 0usize;
        let mut all_deadline = true;
        for r in results {
            match r {
                Ok(env) if env.error.is_none() => oks.push(env),
                Ok(env) => {
                    // A shard answered an error envelope (e.g. shedding):
                    // treat as lost for this request, but not a deadline.
                    let _ = env;
                    lost += 1;
                    all_deadline = false;
                }
                Err(f) => {
                    lost += 1;
                    if !matches!(f, ShardFailure::Deadline) {
                        all_deadline = false;
                    }
                }
            }
        }
        if oks.is_empty() {
            let code = if lost > 0 && all_deadline {
                ErrorCode::DeadlineExceeded
            } else {
                ErrorCode::Internal
            };
            return err_envelope(id, code, "no shard answered");
        }
        let version: u64 = oks.iter().map(|e| e.version).sum();
        let degraded = lost > 0 || oks.iter().any(|e| e.degraded);
        let truncated = oks.iter().any(|e| e.truncated);
        let data = merge(&oks);
        annotated_envelope(id, version, degraded, truncated, data)
    }

    fn scatter_ping(&self, id: u64) -> Json {
        let results = self.scatter(&Request::Ping);
        self.combine_scatter(id, results, |_| Json::obj(vec![("pong", Json::Bool(true))]))
    }

    fn scatter_stats(&self, id: u64) -> Json {
        let results = self.scatter(&Request::Stats);
        self.combine_scatter(id, results, |oks| {
            let sections: Vec<&Json> = oks.iter().filter_map(|e| e.data.get("graph")).collect();
            Json::obj(vec![
                ("graph", aggregate::merge_stats_graph(&sections)),
                ("router", self.telemetry.to_json(self.pool.shards())),
            ])
        })
    }

    fn scatter_levels(&self, id: u64) -> Json {
        let results = self.scatter(&Request::Levels { term: None });
        self.combine_scatter(id, results, |oks| {
            let sections: Vec<&Json> = oks.iter().map(|e| &e.data).collect();
            aggregate::merge_levels_summary(&sections)
        })
    }

    fn scatter_labels(&self, id: u64, req: &Request, k: usize) -> Json {
        let results = self.scatter(req);
        self.combine_scatter(id, results, |oks| {
            let sections: Vec<&Json> = oks.iter().map(|e| &e.data).collect();
            aggregate::merge_labels(&sections, k)
        })
    }

    // ---- recombination plans ----------------------------------------

    fn conceptualize(&self, id: u64, terms: &[String], k: usize) -> Json {
        let homes: Vec<usize> = {
            let table = self.table.read();
            terms.iter().map(|t| table.shard_for(t)).collect()
        };
        let first = homes.first().copied().unwrap_or(0);
        if homes.iter().all(|&h| h == first) {
            // Every term routes to one shard, which therefore holds every
            // candidate concept: forward whole, answer is exact.
            return match self.call_shard(
                first,
                &Request::Conceptualize {
                    terms: terms.to_vec(),
                    k,
                },
            ) {
                Ok(env) => env_to_json(id, env),
                Err(f) => err_envelope(id, f.code(), &f.detail(self.pool.addr(first))),
            };
        }
        // Cross-shard: fetch each term's full concept distribution from
        // its owning shard (following any `moved` redirect), then run
        // the naive-Bayes combination here.
        let results: Vec<Result<Envelope, (usize, ShardFailure)>> = std::thread::scope(|s| {
            let handles: Vec<_> = terms
                .iter()
                .map(|term| {
                    let req = Request::Typicality {
                        term: term.clone(),
                        direction: Direction::Concepts,
                        k: MAX_K,
                    };
                    s.spawn(move || self.call_label(term, &req))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("conceptualize worker panicked"))
                .collect()
        });
        let mut version = 0u64;
        let mut lost = 0usize;
        let mut truncated = false;
        let mut per_term: Vec<HashMap<String, f64>> = Vec::with_capacity(terms.len());
        for r in results {
            match r {
                Ok(env) if env.error.is_none() => {
                    version += env.version;
                    let items = aggregate::parse_items(&env.data);
                    // A slice that filled the MAX_K cap may have lost
                    // tail concepts, so the combined ranking is no
                    // longer provably exact: flag it.
                    if items.len() >= MAX_K {
                        truncated = true;
                    }
                    per_term.push(items.into_iter().collect());
                }
                _ => {
                    // A lost term contributes the same empty map an
                    // unknown term would; flagged as degraded below.
                    lost += 1;
                    per_term.push(HashMap::new());
                }
            }
        }
        if lost == terms.len() {
            return err_envelope(id, ErrorCode::Internal, "no shard answered");
        }
        let items = aggregate::conceptualize_from_maps(&per_term, k);
        let data = Json::obj(vec![("items", aggregate::ranked(items))]);
        annotated_envelope(id, version, lost > 0, truncated, data)
    }

    fn search_rewrite(&self, id: u64, query: &str, k: usize) -> Json {
        let mut oracle = NetOracle {
            router: self,
            degraded: false,
            version: 0,
            senses: HashMap::new(),
        };
        let rewrites = aggregate::rewrite_remote(&mut oracle, query, REWRITE_PER_CONCEPT, k);
        let arr: Vec<Json> = rewrites
            .into_iter()
            .map(|rw| {
                Json::obj(vec![
                    ("text", Json::Str(rw.text)),
                    (
                        "substitutions",
                        Json::Arr(rw.substitutions.into_iter().map(Json::Str).collect()),
                    ),
                    ("score", Json::num(rw.score)),
                ])
            })
            .collect();
        let data = Json::obj(vec![("rewrites", Json::Arr(arr))]);
        if oracle.degraded {
            degraded_envelope(id, oracle.version, data)
        } else {
            ok_envelope(id, oracle.version, data)
        }
    }

    // ---- write plans ------------------------------------------------

    fn add_evidence(&self, id: u64, req: &Request, parent: &str, child: &str) -> Json {
        // A write must land where both endpoints live. When the labels
        // route to different shards and both components actually exist,
        // the smaller component is migrated onto the other shard first
        // (see `ensure_colocated`); otherwise the missing side is simply
        // created next to the existing one and pinned by a learned
        // exception.
        let shard = match self.ensure_colocated(parent, child) {
            Ok(shard) => shard,
            Err((code, detail)) => return err_envelope(id, code, &detail),
        };
        match self.call_shard(shard, req) {
            Ok(env) => {
                if env.error.is_none() {
                    let mut table = self.table.write();
                    table.learn(parent, shard);
                    table.learn(child, shard);
                    self.telemetry
                        .table_exceptions
                        .set(table.exception_count() as i64);
                }
                env_to_json(id, env)
            }
            Err(f) => err_envelope(id, f.code(), &f.detail(self.pool.addr(shard))),
        }
    }

    // ---- component migration ----------------------------------------

    /// Make `parent` and `child` route to one shard, migrating a
    /// component across shards when the write genuinely bridges two.
    /// Returns the shard the write must be applied on.
    fn ensure_colocated(&self, parent: &str, child: &str) -> Result<usize, (ErrorCode, String)> {
        {
            let table = self.table.read();
            let (p, c) = (table.shard_for(parent), table.shard_for(child));
            if p == c {
                return Ok(p);
            }
        }
        let _serialize = self.migration.lock();
        // Re-read under the migration lock: a concurrent bridge write
        // may have already moved one side.
        let (p_shard, c_shard) = {
            let table = self.table.read();
            (table.shard_for(parent), table.shard_for(child))
        };
        if p_shard == c_shard {
            return Ok(p_shard);
        }
        let p_labels = self.peek_component(p_shard, parent)?;
        let c_labels = self.peek_component(c_shard, child)?;
        if c_labels.is_empty() {
            // The child does not exist yet: it is created on the
            // parent's shard and pinned there after the write.
            return Ok(p_shard);
        }
        if p_labels.is_empty() {
            // The parent is new but the child's component already lives
            // elsewhere: create the parent next to the child.
            return Ok(c_shard);
        }
        // True bridge: both components exist on different shards. Move
        // the smaller one (ties move the child's side, matching the
        // offline partitioner's parent-anchored placement).
        let (src, dst, seed) = if c_labels.len() <= p_labels.len() {
            (c_shard, p_shard, child)
        } else {
            (p_shard, c_shard, parent)
        };
        self.telemetry.migrations.inc();
        match self.migrate_component(src, dst, seed) {
            Ok(moved) => {
                let mut table = self.table.write();
                for label in &moved {
                    table.learn(label, dst);
                }
                self.telemetry
                    .table_exceptions
                    .set(table.exception_count() as i64);
                Ok(dst)
            }
            Err(e) => {
                self.telemetry.migration_failures.inc();
                Err(e)
            }
        }
    }

    /// The copy-then-delete move: full export from `src`, import into
    /// `dst` (whose WAL journal entry is the migration's commit point),
    /// then drain `src` (journals the drop and arms `moved` tombstones
    /// there). A crash between import and drain leaves the component on
    /// both shards; the startup reconciler resolves the duplicate in
    /// the importer's favour (see `crate::migrate`). Returns the moved
    /// labels so the routing table can learn their new home.
    fn migrate_component(
        &self,
        src: usize,
        dst: usize,
        seed: &str,
    ) -> Result<Vec<String>, (ErrorCode, String)> {
        let export = self.shard_ok(
            src,
            &Request::ExportComponent {
                label: seed.to_string(),
                drain: false,
                target: None,
                labels_only: false,
            },
        )?;
        let labels = parse_label_list(&export.data);
        let Some(payload) = export
            .data
            .get("payload")
            .and_then(Json::as_str)
            .map(str::to_string)
        else {
            return Err((
                ErrorCode::Internal,
                format!(
                    "shard {} exported no payload for {seed:?}",
                    self.pool.addr(src)
                ),
            ));
        };
        self.shard_ok(
            dst,
            &Request::ImportComponent {
                source: src as u32,
                payload,
            },
        )?;
        // The import is durable on dst; now drop the src copy. Failing
        // here fails the triggering write, but the graph is already
        // consistent-on-dst — the reconciler (or a retried write after
        // src recovers) heals the leftover copy.
        self.shard_ok(
            src,
            &Request::ExportComponent {
                label: seed.to_string(),
                drain: true,
                target: Some(dst as u32),
                labels_only: false,
            },
        )?;
        Ok(labels)
    }

    /// Labels of the component containing `label` on `shard` (empty
    /// when the label is unknown there). A cheap idempotent read.
    fn peek_component(
        &self,
        shard: usize,
        label: &str,
    ) -> Result<Vec<String>, (ErrorCode, String)> {
        let req = Request::ExportComponent {
            label: label.to_string(),
            drain: false,
            target: None,
            labels_only: true,
        };
        let env = self.shard_ok(shard, &req)?;
        Ok(parse_label_list(&env.data))
    }

    /// Call `shard`'s primary and require a non-error envelope.
    fn shard_ok(&self, shard: usize, req: &Request) -> Result<Envelope, (ErrorCode, String)> {
        match self.call_shard(shard, req) {
            Ok(env) => match &env.error {
                None => Ok(env),
                Some((code, detail)) => Err((
                    ErrorCode::parse(code).unwrap_or(ErrorCode::Internal),
                    format!("shard {}: {detail}", self.pool.addr(shard)),
                )),
            },
            Err(f) => Err((f.code(), f.detail(self.pool.addr(shard)))),
        }
    }

    /// Rebuild the routing table from the live fleet: query every
    /// shard's label inventory and record an exception for each label
    /// living off its hash home. Used when the router starts without a
    /// persisted table (satellite of the migration work: migrations
    /// invalidate old table files, so `route` mode can no longer demand
    /// one). Exact as long as no shard holds more than `MAX_K` labels
    /// of either kind — the `labels` endpoint cap; see DESIGN.md §18.
    /// Returns the number of exception entries learned.
    pub fn rebuild_table_from_shards(&self) -> Result<usize, String> {
        let shards = self.pool.shards();
        let mut table = RoutingTable::new(shards);
        for shard in 0..shards {
            for kind in [LabelKind::Concepts, LabelKind::Instances] {
                let req = Request::Labels { kind, k: MAX_K };
                let env = self
                    .call_shard(shard, &req)
                    .map_err(|f| f.detail(self.pool.addr(shard)))?;
                if let Some((code, detail)) = &env.error {
                    return Err(format!("shard {shard} label inventory: {code}: {detail}"));
                }
                for label in parse_label_list(&env.data) {
                    table.learn(&label, shard);
                }
            }
        }
        let count = table.exception_count();
        self.telemetry.table_exceptions.set(count as i64);
        *self.table.write() = table;
        Ok(count)
    }

    fn snapshot_load(&self, id: u64, path: &str) -> Json {
        let Some(root) = self.snapshot_root.clone() else {
            return err_envelope(
                id,
                ErrorCode::BadRequest,
                "snapshot-load is disabled: this router has no snapshot root",
            );
        };
        let resolved = match resolve_in(&root, path) {
            Ok(p) => p,
            Err(detail) => return err_envelope(id, ErrorCode::BadRequest, &detail),
        };
        let bytes = match std::fs::read(&resolved) {
            Ok(b) => b,
            Err(e) => {
                return err_envelope(
                    id,
                    ErrorCode::Internal,
                    &format!("read {}: {e}", resolved.display()),
                )
            }
        };
        let graph = match snapshot::from_bytes(&bytes[..]) {
            Ok(g) => g,
            Err(e) => {
                return err_envelope(id, ErrorCode::Internal, &format!("decode snapshot: {e}"))
            }
        };
        let (nodes, edges) = (graph.node_count(), graph.edge_count());

        // Partition, stage one file per shard inside that shard's
        // sandbox, then fan the loads out (never hedged: not idempotent).
        let p: Partition = partition(&graph, self.pool.shards());
        let seq = self.load_seq.fetch_add(1, Ordering::Relaxed);
        let name = format!("incoming-{seq}.pb");
        for (i, shard_graph) in p.shards.iter().enumerate() {
            let staged = match snapshot::to_bytes(shard_graph) {
                Ok(b) => b,
                Err(e) => {
                    return err_envelope(id, ErrorCode::Internal, &format!("encode shard {i}: {e}"))
                }
            };
            let target = shard_dir(&root, i).join(&name);
            if let Err(e) = std::fs::write(&target, &staged) {
                return err_envelope(
                    id,
                    ErrorCode::Internal,
                    &format!("stage {}: {e}", target.display()),
                );
            }
        }
        let load = Request::SnapshotLoad { path: name };
        let results = self.scatter(&load);
        let mut version = 0u64;
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(env) if env.error.is_none() => version += env.version,
                Ok(env) => {
                    let detail = env
                        .error
                        .map(|(c, d)| format!("{c}: {d}"))
                        .unwrap_or_default();
                    return err_envelope(
                        id,
                        ErrorCode::Internal,
                        &format!("shard {i} rejected the load ({detail}); deployment may be partially loaded"),
                    );
                }
                Err(f) => {
                    return err_envelope(
                        id,
                        f.code(),
                        &format!(
                            "{}; deployment may be partially loaded",
                            f.detail(self.pool.addr(i))
                        ),
                    )
                }
            }
        }
        // Every shard swapped: adopt the new placement.
        let table = RoutingTable::from_partition(&p);
        self.telemetry
            .table_exceptions
            .set(table.exception_count() as i64);
        *self.table.write() = table;
        ok_envelope(
            id,
            version,
            Json::obj(vec![
                ("nodes", Json::num(nodes as f64)),
                ("edges", Json::num(edges as f64)),
            ]),
        )
    }

    // ---- sub-request machinery --------------------------------------

    /// One sub-request with deadline + hedging. Non-idempotent requests
    /// never hedge (the first attempt may have applied).
    fn call_shard(&self, shard: usize, req: &Request) -> Result<Envelope, ShardFailure> {
        self.telemetry.subrequests.inc();
        let start = Instant::now();
        let deadline = start + self.deadline;
        let hedge_at = start + self.hedge_after;
        let hedge_allowed = req.is_idempotent();
        let (tx, rx) = mpsc::channel();
        self.spawn_attempt(shard, req.clone(), 0, tx.clone());
        let mut hedged = false;
        let mut outstanding: u32 = 1;
        let mut last_err = String::from("no attempt completed");
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.telemetry.shard_failures.inc();
                return Err(ShardFailure::Deadline);
            }
            let wake = if hedge_allowed && !hedged {
                deadline.min(hedge_at)
            } else {
                deadline
            };
            match rx.recv_timeout(wake.saturating_duration_since(now)) {
                Ok((attempt, Ok(env))) => {
                    if attempt > 0 {
                        self.telemetry.hedge_wins.inc();
                    }
                    return Ok(env);
                }
                Ok((_, Err(e))) => {
                    last_err = e.to_string();
                    outstanding -= 1;
                    if outstanding == 0 {
                        // Fast failure: use the hedge budget as an
                        // immediate replacement attempt.
                        if hedge_allowed && !hedged && Instant::now() < deadline {
                            hedged = true;
                            self.telemetry.hedges.inc();
                            self.spawn_attempt(shard, req.clone(), 1, tx.clone());
                            outstanding = 1;
                        } else {
                            self.telemetry.shard_failures.inc();
                            return Err(ShardFailure::Unavailable(last_err));
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Straggler: race a second attempt against the first.
                    if hedge_allowed && !hedged && Instant::now() < deadline {
                        hedged = true;
                        self.telemetry.hedges.inc();
                        self.spawn_attempt(shard, req.clone(), 1, tx.clone());
                        outstanding += 1;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.telemetry.shard_failures.inc();
                    return Err(ShardFailure::Unavailable(last_err));
                }
            }
        }
    }

    /// Attempts run detached so an abandoned straggler cannot block the
    /// caller; its eventual result is dropped with the channel.
    fn spawn_attempt(
        &self,
        shard: usize,
        req: Request,
        attempt: u32,
        tx: mpsc::Sender<(u32, Result<Envelope, ClientError>)>,
    ) {
        let pool = Arc::clone(&self.pool);
        std::thread::spawn(move || {
            // Attempt index picks the replica-group member: attempt 0 is
            // the primary, hedges rotate onto replicas (when configured)
            // so a dead primary's hedge dials a live process. Writes
            // never hedge, so they only ever see the primary.
            let _ = tx.send((attempt, pool.call_member(shard, attempt as usize, &req)));
        });
    }
}

/// The shard index out of a `moved` tombstone error, if `env` is one.
/// The serve side formats the detail to end with `"moved to shard N"`.
fn moved_target(env: &Envelope) -> Option<usize> {
    match &env.error {
        Some((code, detail)) if code == "moved" => {
            detail.rsplit(' ').next().and_then(|n| n.parse().ok())
        }
        _ => None,
    }
}

/// The `"labels"` string array of a payload, or empty.
fn parse_label_list(data: &Json) -> Vec<String> {
    data.get("labels")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

/// Pass a shard's envelope through under the client's request id,
/// preserving its `degraded`/`truncated` annotations.
fn env_to_json(id: u64, env: Envelope) -> Json {
    match env.error {
        Some((code, detail)) => err_envelope(
            id,
            ErrorCode::parse(&code).unwrap_or(ErrorCode::Internal),
            &detail,
        ),
        None => annotated_envelope(id, env.version, env.degraded, env.truncated, env.data),
    }
}

/// Sandboxed path resolution, mirroring the serve-side snapshot-load
/// rules: relative, plain components only, inside `root`.
fn resolve_in(root: &Path, requested: &str) -> Result<PathBuf, String> {
    let path = Path::new(requested);
    if requested.is_empty() || path.is_absolute() {
        return Err(format!(
            "snapshot path {requested:?} must be relative to the snapshot root"
        ));
    }
    for component in path.components() {
        match component {
            Component::Normal(_) => {}
            _ => {
                return Err(format!(
                    "snapshot path {requested:?} escapes the snapshot root"
                ))
            }
        }
    }
    Ok(root.join(path))
}

/// Term oracle over the shard fleet: each probe routes to the owning
/// shard; failures degrade (unknown term) rather than abort the request.
struct NetOracle<'a> {
    router: &'a Router,
    degraded: bool,
    version: u64,
    senses: HashMap<String, Vec<(u32, bool)>>,
}

impl TermOracle for NetOracle<'_> {
    fn term_senses(&mut self, term: &str) -> Vec<(u32, bool)> {
        if let Some(cached) = self.senses.get(term) {
            return cached.clone();
        }
        let req = Request::Levels {
            term: Some(term.to_string()),
        };
        let out = match self.router.call_label(term, &req) {
            Ok(env) if env.error.is_none() => {
                self.version += env.version;
                env.data
                    .get("senses")
                    .and_then(Json::as_arr)
                    .map(|arr| {
                        arr.iter()
                            .filter_map(|s| {
                                Some((
                                    s.get("sense").and_then(Json::as_u64)? as u32,
                                    s.get("is_instance").and_then(Json::as_bool)?,
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            }
            Ok(_) | Err(_) => {
                self.degraded = true;
                Vec::new()
            }
        };
        self.senses.insert(term.to_string(), out.clone());
        out
    }

    fn typical_instances(&mut self, label: &str, k: usize) -> Vec<(String, f64)> {
        let req = Request::Typicality {
            term: label.to_string(),
            direction: Direction::Instances,
            k,
        };
        match self.router.call_label(label, &req) {
            Ok(env) if env.error.is_none() => {
                self.version += env.version;
                aggregate::parse_items(&env.data)
            }
            Ok(_) | Err(_) => {
                self.degraded = true;
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_in_sandboxes_paths() {
        let root = Path::new("/srv/probase");
        assert_eq!(
            resolve_in(root, "x.pb").unwrap(),
            PathBuf::from("/srv/probase/x.pb")
        );
        assert!(resolve_in(root, "/etc/passwd").is_err());
        assert!(resolve_in(root, "../x.pb").is_err());
        assert!(resolve_in(root, "sub/../../x.pb").is_err());
        assert!(resolve_in(root, "").is_err());
    }

    #[test]
    fn router_rejects_mismatched_table() {
        let config = RouterConfig {
            shard_addrs: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            ..RouterConfig::default()
        };
        let registry = Registry::new();
        assert!(Router::new(config, RoutingTable::new(3), &registry).is_err());
        let none = RouterConfig::default();
        assert!(Router::new(none, RoutingTable::new(1), &registry).is_err());
    }
}
