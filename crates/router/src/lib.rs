//! # probase-router
//!
//! Shard-aware serving: splits Γ across N single-node serve stacks and
//! puts a routing front end in front that speaks the exact same
//! JSON-over-TCP protocol, so clients cannot tell a 4-shard deployment
//! from one server (same answers, bit-for-bit, when all shards are up).
//!
//! The paper's production Probase runs distributed across a cluster
//! (§5.3 hosts the taxonomy in the Trinity graph engine, which partitions
//! the graph over machines); this crate reproduces that shape on top of
//! the PR 5 durable serve stack:
//!
//! * [`partition`] — deterministic label-hash partitioning. All senses of
//!   a label co-locate (Property 2) and weakly-connected components
//!   travel whole, so every shard-local answer is bit-identical to the
//!   unsharded one. The hash is a frozen FNV-1a: restarts re-derive the
//!   identical placement.
//! * [`table`] — the routing table: `shard_of(label)` plus a small
//!   exceptions map for labels that rode along with their component.
//! * [`pool`] / [`engine`] — per-shard connection pools and the
//!   per-endpoint query plans: forward single-shard queries, scatter and
//!   *exactly* recombine whole-graph ones ([`aggregate`]), hedge
//!   straggling idempotent sub-requests, degrade gracefully (partial
//!   results are marked `"degraded": true`) when shards are lost, and
//!   route `add-evidence` to the owning shard's WAL.
//! * [`server`] — the TCP front end.
//! * [`telemetry`] — `router.*` metrics (fan-out, hedges, degraded
//!   responses, table size), surfaced in the aggregated `stats` payload.
//!
//! See DESIGN.md §14 for the architecture and the degradation contract.

#![warn(missing_docs)]

pub mod aggregate;
pub mod engine;
pub mod partition;
pub mod pool;
pub mod server;
pub mod table;
pub mod telemetry;

pub use engine::{Router, RouterConfig};
pub use partition::{canonical_bytes, merge_shards, partition, shard_of, stable_hash, Partition};
pub use pool::ShardPool;
pub use server::RouterServer;
pub use table::RoutingTable;
pub use telemetry::RouterTelemetry;
