//! # probase-router
//!
//! Shard-aware serving: splits Γ across N single-node serve stacks and
//! puts a routing front end in front that speaks the exact same
//! JSON-over-TCP protocol, so clients cannot tell a 4-shard deployment
//! from one server (same answers, bit-for-bit, when all shards are up).
//!
//! The paper's production Probase runs distributed across a cluster
//! (§5.3 hosts the taxonomy in the Trinity graph engine, which partitions
//! the graph over machines); this crate reproduces that shape on top of
//! the PR 5 durable serve stack:
//!
//! * [`partition`] — deterministic label-hash partitioning. All senses of
//!   a label co-locate (Property 2) and weakly-connected components
//!   travel whole, so every shard-local answer is bit-identical to the
//!   unsharded one. The hash is a frozen FNV-1a: restarts re-derive the
//!   identical placement.
//! * [`table`] — the routing table: `shard_of(label)` plus a small
//!   exceptions map for labels that rode along with their component.
//! * [`pool`] / [`engine`] — per-shard connection pools and the
//!   per-endpoint query plans: forward single-shard queries, scatter and
//!   *exactly* recombine whole-graph ones ([`aggregate`]), hedge
//!   straggling idempotent sub-requests, degrade gracefully (partial
//!   results are marked `"degraded": true`) when shards are lost, and
//!   route `add-evidence` to the owning shard's WAL.
//! * [`server`] — the TCP front end.
//! * [`telemetry`] — `router.*` metrics (fan-out, hedges, degraded
//!   responses, migrations, table size), surfaced in the aggregated
//!   `stats` payload.
//! * [`migrate`] — startup reconciliation for migrations interrupted
//!   mid-protocol (duplicate components resolved in the importer's
//!   favour).
//!
//! Writes whose parent and child land on different shards no longer
//! silently diverge: the engine migrates the smaller component onto
//! the other shard over the wire (`export-component` /
//! `import-component`, journalled on both sides) and the old copy
//! leaves `moved` tombstones that redirect stale readers. With
//! replicas configured ([`RouterConfig::replica_addrs`]), hedged
//! sub-requests rotate onto replicas so a dead primary degrades no
//! reads at all.
//!
//! See DESIGN.md §14 for the architecture and the degradation
//! contract, and §18 for the migration + replication protocol.

#![warn(missing_docs)]

pub mod aggregate;
pub mod engine;
pub mod migrate;
pub mod partition;
pub mod pool;
pub mod server;
pub mod table;
pub mod telemetry;

pub use engine::{Router, RouterConfig};
pub use migrate::{reconcile_fleet, ReconcileReport};
pub use partition::{canonical_bytes, merge_shards, partition, shard_of, stable_hash, Partition};
pub use pool::ShardPool;
pub use server::RouterServer;
pub use table::RoutingTable;
pub use telemetry::RouterTelemetry;
