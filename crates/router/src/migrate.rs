//! Startup reconciliation for interrupted component migrations.
//!
//! The online migration protocol (DESIGN.md §18) is copy-then-delete:
//! export from the source shard, journal + import on the destination,
//! then drain the source. Its commit point is the destination's WAL
//! `import-component` record — so the only inconsistent crash window
//! leaves the *same component on two shards* (imported on the
//! destination, not yet drained from the source). Reads stay correct
//! on the destination, but a stale routing table could answer from the
//! leftover source copy.
//!
//! [`reconcile_fleet`] runs at fleet startup (in-process deployments:
//! `probase-cli serve --shards N`) and resolves every such duplicate:
//!
//! * **winner** = the shard whose WAL holds an import record for the
//!   label — the migration committed there;
//! * with no (or ambiguous) import record, the copy with the **larger
//!   component** (edge count) wins, ties to the **lowest shard index**
//!   — deterministic, so every restart converges to the same fleet;
//! * every losing copy is drained through the same journalled drop
//!   path a live migration uses, arming `moved` tombstones that
//!   redirect stale readers to the winner.
//!
//! The standalone wire-only `route` mode cannot reconcile (it has no
//! handle on shard state); there the table rebuild in
//! [`crate::Router::rebuild_table_from_shards`] at least routes every
//! label somewhere consistent, and duplicate copies persist until the
//! fleet is restarted in-process. Documented in DESIGN.md §18.

use probase_serve::ServeState;
use probase_store::{component_labels, export_component};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// What one reconciliation pass found and fixed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Labels found on more than one shard.
    pub duplicate_labels: usize,
    /// Component copies dropped from losing shards.
    pub components_dropped: usize,
}

/// Resolve components duplicated across an in-process fleet after a
/// crash mid-migration. Idempotent: a clean fleet reports all zeros
/// and is left untouched.
pub fn reconcile_fleet(states: &[Arc<ServeState>]) -> Result<ReconcileReport, String> {
    let mut report = ReconcileReport::default();
    if states.len() < 2 {
        return Ok(report);
    }
    // Which shards hold each label (senses deduped per shard; the push
    // order is ascending shard index).
    let mut owners: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, state) in states.iter().enumerate() {
        let labels: HashSet<String> = state
            .store()
            .read(|g| g.nodes().map(|n| g.label(n).to_string()).collect());
        for label in labels {
            owners.entry(label).or_default().push(i);
        }
    }
    let mut dups: Vec<(String, Vec<usize>)> = owners
        .into_iter()
        .filter(|(_, shards)| shards.len() > 1)
        .collect();
    // Deterministic pass order regardless of hash-map iteration.
    dups.sort();
    report.duplicate_labels = dups.len();
    let mut resolved: HashSet<String> = HashSet::new();
    for (label, shards) in dups {
        if resolved.contains(&label) {
            // Already handled as part of an earlier label's component.
            continue;
        }
        let imported: Vec<usize> = shards
            .iter()
            .copied()
            .filter(|&i| {
                states[i]
                    .durability()
                    .map(|d| d.imported_labels().contains_key(&label))
                    .unwrap_or(false)
            })
            .collect();
        let winner = match imported.as_slice() {
            // Exactly one shard journalled an import: the migration
            // committed there, its copy is the newest.
            [only] => *only,
            // No import record (or two — only possible after manual
            // WAL surgery): keep the larger copy, ties to the lowest
            // shard index.
            _ => {
                let mut best = shards[0];
                let mut best_edges = component_edges(&states[best], &label);
                for &i in &shards[1..] {
                    let edges = component_edges(&states[i], &label);
                    if edges > best_edges {
                        best = i;
                        best_edges = edges;
                    }
                }
                best
            }
        };
        for &i in &shards {
            if i == winner {
                continue;
            }
            let component = states[i].store().read(|g| component_labels(g, &label));
            if component.is_empty() {
                continue;
            }
            resolved.extend(component.iter().cloned());
            states[i]
                .drop_labels(component, winner as u32)
                .map_err(|e| format!("reconcile: shard {i}: {e}"))?;
            report.components_dropped += 1;
        }
        resolved.insert(label);
    }
    Ok(report)
}

/// Edge count of the component containing `label` on one shard.
fn component_edges(state: &ServeState, label: &str) -> usize {
    state.store().read(|g| {
        let labels: HashSet<String> = component_labels(g, label).into_iter().collect();
        export_component(g, &labels).edge_count()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_store::{ConceptGraph, SharedStore};

    fn state_with(pairs: &[(&str, &str, u32)]) -> Arc<ServeState> {
        let mut g = ConceptGraph::new();
        for (parent, child, count) in pairs {
            let p = g.ensure_node(parent, 0);
            let c = g.ensure_node(child, 0);
            g.add_evidence(p, c, *count);
        }
        Arc::new(ServeState::new(SharedStore::new(g), 16, 1))
    }

    #[test]
    fn clean_fleet_is_untouched() {
        let a = state_with(&[("country", "China", 3)]);
        let b = state_with(&[("animal", "cat", 2)]);
        let report = reconcile_fleet(&[a.clone(), b.clone()]).expect("reconcile");
        assert_eq!(report, ReconcileReport::default());
        assert_eq!(a.store().read(|g| g.node_count()), 2);
        assert_eq!(b.store().read(|g| g.node_count()), 2);
    }

    #[test]
    fn larger_copy_wins_and_loser_is_tombstoned() {
        // Shard 0 holds a stale two-edge copy, shard 1 the grown one.
        let stale = state_with(&[("country", "China", 3), ("country", "India", 2)]);
        let grown = state_with(&[
            ("country", "China", 3),
            ("country", "India", 2),
            ("country", "Brazil", 1),
        ]);
        let report = reconcile_fleet(&[stale.clone(), grown.clone()]).expect("reconcile");
        assert!(report.duplicate_labels >= 1);
        assert_eq!(report.components_dropped, 1);
        assert_eq!(stale.store().read(|g| g.node_count()), 0);
        assert_eq!(grown.store().read(|g| g.node_count()), 4);
        // The loser redirects stale readers to the winner (shard 1).
        assert_eq!(stale.tombstones().get("country"), Some(&1));
    }

    #[test]
    fn equal_copies_tie_to_the_lowest_shard() {
        let a = state_with(&[("animal", "cat", 2)]);
        let b = state_with(&[("animal", "cat", 2)]);
        let report = reconcile_fleet(&[a.clone(), b.clone()]).expect("reconcile");
        assert_eq!(report.components_dropped, 1);
        assert_eq!(a.store().read(|g| g.node_count()), 2);
        assert_eq!(b.store().read(|g| g.node_count()), 0);
    }
}
