//! The routing table: shard count + exceptions.
//!
//! Routing is `exceptions.get(label).unwrap_or(shard_of(label, n))` — a
//! label is looked up where it hashes unless it rode along with a
//! component whose canonical label hashed elsewhere. The table is tiny
//! (only the disagreements), serializes to JSON for the `route` mode's
//! `--routing-table` file, and can be rebuilt exactly by scanning the
//! shard graphs (which is what a restarted in-process deployment does
//! after each shard's WAL recovery).

use crate::partition::{shard_of, Partition};
use probase_obs::json::{self, Json};
use probase_store::ConceptGraph;
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// Maps labels to shards. Cheap to clone; the exceptions map holds only
/// labels whose placement disagrees with the hash.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable {
    shards: usize,
    exceptions: HashMap<String, usize>,
}

impl RoutingTable {
    /// A pure-hash table over `shards` shards (no exceptions).
    pub fn new(shards: usize) -> RoutingTable {
        RoutingTable {
            shards: shards.max(1),
            exceptions: HashMap::new(),
        }
    }

    /// The table a fresh [`Partition`] implies.
    pub fn from_partition(p: &Partition) -> RoutingTable {
        RoutingTable {
            shards: p.shards.len().max(1),
            exceptions: p.exceptions.clone(),
        }
    }

    /// Rebuild the table by scanning shard graphs (index order): every
    /// label found on a shard other than its hash shard is an exception.
    /// This is exact — the scan sees precisely the post-recovery
    /// placement, including labels created by routed writes.
    pub fn from_shard_graphs(shards: &[ConceptGraph]) -> RoutingTable {
        let n = shards.len().max(1);
        let mut exceptions = HashMap::new();
        for (i, shard) in shards.iter().enumerate() {
            let mut seen: HashSet<&str> = HashSet::new();
            for node in shard.nodes() {
                let label = shard.label(node);
                if seen.insert(label) && shard_of(label, n) != i {
                    exceptions.insert(label.to_string(), i);
                }
            }
        }
        RoutingTable {
            shards: n,
            exceptions,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `label`.
    pub fn shard_for(&self, label: &str) -> usize {
        self.exceptions
            .get(label)
            .copied()
            .unwrap_or_else(|| shard_of(label, self.shards))
    }

    /// Record that `label` lives on `shard` (the write path calls this
    /// when a routed `add-evidence` creates a child on its parent's
    /// shard rather than the child's hash shard).
    pub fn learn(&mut self, label: &str, shard: usize) {
        if shard_of(label, self.shards) == shard {
            self.exceptions.remove(label);
        } else {
            self.exceptions.insert(label.to_string(), shard);
        }
    }

    /// Number of exception entries (for metrics).
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Serialize for the `--routing-table` file.
    pub fn to_json(&self) -> Json {
        let mut entries: Vec<(&String, &usize)> = self.exceptions.iter().collect();
        entries.sort();
        Json::obj(vec![
            ("shards", Json::num(self.shards as f64)),
            (
                "exceptions",
                Json::Obj(
                    entries
                        .into_iter()
                        .map(|(label, &shard)| (label.clone(), Json::num(shard as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a table serialized by [`RoutingTable::to_json`].
    pub fn from_json(v: &Json) -> Result<RoutingTable, String> {
        let shards = v
            .get("shards")
            .and_then(Json::as_u64)
            .filter(|&n| n >= 1)
            .ok_or("routing table: missing or invalid \"shards\"")? as usize;
        let mut exceptions = HashMap::new();
        if let Some(Json::Obj(entries)) = v.get("exceptions") {
            for (label, shard) in entries {
                let shard = shard
                    .as_u64()
                    .filter(|&s| (s as usize) < shards)
                    .ok_or_else(|| format!("routing table: bad shard for {label:?}"))?;
                exceptions.insert(label.clone(), shard as usize);
            }
        }
        Ok(RoutingTable { shards, exceptions })
    }

    /// Write the table to `path` as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string())
    }

    /// Load a table written by [`RoutingTable::save`].
    pub fn load(path: &Path) -> std::io::Result<RoutingTable> {
        let text = std::fs::read_to_string(path)?;
        let v = json::parse(&text).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad JSON: {e}"))
        })?;
        RoutingTable::from_json(&v)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;

    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let country = g.ensure_node("country", 0);
        for name in ["China", "India", "Brazil"] {
            let n = g.ensure_node(name, 0);
            g.add_evidence(country, n, 5);
        }
        let animal = g.ensure_node("animal", 0);
        let cat = g.ensure_node("cat", 0);
        g.add_evidence(animal, cat, 3);
        g
    }

    #[test]
    fn pure_hash_table_matches_shard_of() {
        let t = RoutingTable::new(4);
        for label in ["country", "China", "zebra"] {
            assert_eq!(t.shard_for(label), shard_of(label, 4));
        }
    }

    #[test]
    fn partition_table_routes_every_label_to_its_shard() {
        let g = sample();
        for n in [1usize, 2, 4, 8] {
            let p = partition(&g, n);
            let t = RoutingTable::from_partition(&p);
            for (i, shard) in p.shards.iter().enumerate() {
                for node in shard.nodes() {
                    assert_eq!(t.shard_for(shard.label(node)), i, "n={n}");
                }
            }
        }
    }

    #[test]
    fn scan_rebuild_equals_partition_table() {
        let g = sample();
        for n in [1usize, 2, 4, 8] {
            let p = partition(&g, n);
            assert_eq!(
                RoutingTable::from_shard_graphs(&p.shards),
                RoutingTable::from_partition(&p),
                "n={n}"
            );
        }
    }

    #[test]
    fn learn_records_and_clears_exceptions() {
        let mut t = RoutingTable::new(4);
        let hash_home = shard_of("new-child", 4);
        let other = (hash_home + 1) % 4;
        t.learn("new-child", other);
        assert_eq!(t.shard_for("new-child"), other);
        assert_eq!(t.exception_count(), 1);
        // Learning the hash home again removes the entry.
        t.learn("new-child", hash_home);
        assert_eq!(t.shard_for("new-child"), hash_home);
        assert_eq!(t.exception_count(), 0);
    }

    #[test]
    fn learn_covers_labels_created_by_an_incremental_fold() {
        // The write path's contract with incremental maintenance: when a
        // shard's fold worker creates labels (new concepts, new
        // children), the router learns each one onto that shard, and the
        // incrementally learned table must equal the table a full
        // post-recovery scan of the shard graphs would rebuild.
        use probase_store::ConceptGraph;
        use probase_taxonomy::{IncrementalTaxonomy, TaxonomyConfig};

        let n = 4;
        let home = 2; // the shard whose worker runs these folds
        let cfg = TaxonomyConfig {
            threads: 1,
            ..Default::default()
        };
        let mut inc = IncrementalTaxonomy::new(cfg);
        let mut g1 = ConceptGraph::new();
        let alloy = g1.ensure_node("alloy", 0);
        for child in ["bronze", "brass"] {
            let c = g1.ensure_node(child, 0);
            g1.add_evidence(alloy, c, 1);
        }
        inc.fold_graph(&g1);
        let built = inc.build();
        let mut t = RoutingTable::new(n);
        for node in built.graph.nodes() {
            t.learn(built.graph.label(node), home);
        }
        for node in built.graph.nodes() {
            let label = built.graph.label(node);
            assert_eq!(t.shard_for(label), home, "folded label {label}");
        }

        // A later fold introduces a brand-new label; until the router
        // learns it, it routes to its hash home.
        let mut g2 = ConceptGraph::new();
        let alloy2 = g2.ensure_node("alloy", 0);
        let pewter = g2.ensure_node("pewter", 0);
        g2.add_evidence(alloy2, pewter, 1);
        inc.fold_graph(&g2);
        let built2 = inc.build();
        assert!(
            built2
                .graph
                .nodes()
                .any(|nd| built2.graph.label(nd) == "pewter"),
            "the fold created the new label"
        );
        assert_eq!(t.shard_for("pewter"), shard_of("pewter", n));
        t.learn("pewter", home);
        assert_eq!(t.shard_for("pewter"), home);

        // Exceptions hold exactly the labels whose hash disagrees.
        let disagreeing = built2
            .graph
            .nodes()
            .map(|nd| built2.graph.label(nd).to_string())
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .filter(|l| shard_of(l, n) != home)
            .count();
        assert_eq!(t.exception_count(), disagreeing);

        // Scan-rebuild over the final placement agrees with what was
        // learned fold by fold.
        let mut shards: Vec<ConceptGraph> = (0..n).map(|_| ConceptGraph::new()).collect();
        shards[home] = built2.graph;
        assert_eq!(
            RoutingTable::from_shard_graphs(&shards),
            t,
            "incremental learning must match a post-recovery scan"
        );
    }

    #[test]
    fn json_roundtrip_and_file_io() {
        let g = sample();
        let p = partition(&g, 4);
        let t = RoutingTable::from_partition(&p);
        let back = RoutingTable::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);

        let dir = std::env::temp_dir().join(format!("probase-table-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.json");
        t.save(&path).unwrap();
        assert_eq!(RoutingTable::load(&path).unwrap(), t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_json_rejects_garbage() {
        for bad in [
            r#"{}"#,
            r#"{"shards":0}"#,
            r#"{"shards":2,"exceptions":{"x":9}}"#,
            r#"{"shards":2,"exceptions":{"x":"a"}}"#,
        ] {
            let v = json::parse(bad).unwrap();
            assert!(RoutingTable::from_json(&v).is_err(), "{bad}");
        }
    }
}
