//! Application workloads derived from the world: semantic queries with
//! relevance truth (§5.3.1), tweets with topic gold labels (§5.3.2), and
//! web tables with header gold labels (§5.3.2).

use probase_corpus::{World, Zipf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A semantic query over two concepts, with its ground truth: the pair of
/// concept labels whose instances a relevant page must co-mention.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemanticQuery {
    /// E.g. "database conferences in asian cities".
    pub text: String,
    pub concept_a: String,
    pub concept_b: String,
}

/// Generate `n` two-concept semantic queries over curated concepts with
/// enough instances.
pub fn semantic_queries(world: &World, n: usize, seed: u64) -> Vec<SemanticQuery> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let eligible: Vec<&probase_corpus::ConceptSpec> = world
        .concepts
        .iter()
        .filter(|c| c.curated && c.instances.len() >= 4)
        .collect();
    const LINKS: &[&str] = &["in", "for", "with", "from"];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let a = eligible[rng.gen_range(0..eligible.len())];
        let b = eligible[rng.gen_range(0..eligible.len())];
        if a.id == b.id {
            continue;
        }
        let link = LINKS[rng.gen_range(0..LINKS.len())];
        let plural = |l: &str| probase_corpus::generator::pluralize_phrase(l);
        out.push(SemanticQuery {
            text: format!("{} {} {}", plural(&a.label), link, plural(&b.label)),
            concept_a: a.label.clone(),
            concept_b: b.label.clone(),
        });
    }
    out
}

/// A synthetic tweet with its gold topic (index into the topic concepts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tweet {
    pub text: String,
    pub topic: usize,
}

/// Generate tweets over `topics` (concept ids chosen by the caller):
/// each tweet mentions 1–3 instances of its topic concept plus filler.
pub fn tweets(
    world: &World,
    topics: &[probase_corpus::ConceptId],
    per_topic: usize,
    seed: u64,
) -> Vec<Tweet> {
    let mut rng = SmallRng::seed_from_u64(seed);
    const FILLERS: &[&str] = &[
        "loving {}",
        "so impressed by {} today",
        "cannot stop thinking about {}",
        "{} was amazing this weekend",
        "finally tried {} !!",
        "hot take: {} is underrated",
        "my thread about {}",
    ];
    let mut out = Vec::new();
    for (topic, &cid) in topics.iter().enumerate() {
        let c = world.concept(cid);
        if c.instances.is_empty() {
            continue;
        }
        let z = Zipf::new(c.instances.len(), 1.0);
        for _ in 0..per_topic {
            let k = rng.gen_range(1..=3usize);
            let mut mentions = Vec::new();
            for _ in 0..k {
                let inst = world.instance(c.instances[z.sample(&mut rng)].instance);
                if !mentions.contains(&inst.surface) {
                    mentions.push(inst.surface.clone());
                }
            }
            let filler = FILLERS[rng.gen_range(0..FILLERS.len())];
            let text = filler.replace("{}", &mentions.join(" and "));
            out.push(Tweet { text, topic });
        }
    }
    out
}

/// A synthetic web-table column with its gold header concept.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldColumn {
    pub cells: Vec<String>,
    pub concept: String,
    /// Fraction of cells replaced by unknown strings (enrichment bait).
    pub unknown_cells: usize,
}

/// Generate table columns: `n` columns over concepts with enough
/// instances; `unknown_rate` of cells are novel strings.
pub fn table_columns(
    world: &World,
    n: usize,
    rows: usize,
    unknown_rate: f64,
    seed: u64,
) -> Vec<GoldColumn> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let eligible: Vec<&probase_corpus::ConceptSpec> = world
        .concepts
        .iter()
        .filter(|c| c.instances.len() >= rows)
        .collect();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let c = eligible[rng.gen_range(0..eligible.len())];
        let z = Zipf::new(c.instances.len(), 0.8);
        let mut cells = Vec::new();
        let mut unknown_cells = 0;
        while cells.len() < rows {
            if rng.gen_bool(unknown_rate) {
                cells.push(format!("Novel{}x{}", t, cells.len()));
                unknown_cells += 1;
            } else {
                let inst = world.instance(c.instances[z.sample(&mut rng)].instance);
                if !cells.contains(&inst.surface) {
                    cells.push(inst.surface.clone());
                }
            }
        }
        out.push(GoldColumn {
            cells,
            concept: c.label.clone(),
            unknown_cells,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_corpus::{generate, WorldConfig, WorldIndex};

    fn world() -> World {
        generate(&WorldConfig::small(71))
    }

    #[test]
    fn semantic_queries_use_curated_concepts() {
        let w = world();
        let qs = semantic_queries(&w, 20, 1);
        assert!(!qs.is_empty());
        for q in &qs {
            assert!(q.text.contains(' '));
            assert_ne!(q.concept_a, q.concept_b);
        }
    }

    #[test]
    fn tweets_mention_topic_instances() {
        let w = world();
        let idx = WorldIndex::new(&w);
        let topics = vec![idx.senses("country")[0], idx.senses("dish")[0]];
        let ts = tweets(&w, &topics, 10, 3);
        assert_eq!(ts.len(), 20);
        let country_tweets: Vec<_> = ts.iter().filter(|t| t.topic == 0).collect();
        assert!(country_tweets.iter().any(|t| {
            w.concept(topics[0])
                .instances
                .iter()
                .any(|m| t.text.contains(&w.instance(m.instance).surface))
        }));
    }

    #[test]
    fn table_columns_have_gold_labels() {
        let w = world();
        let cols = table_columns(&w, 15, 5, 0.2, 9);
        assert_eq!(cols.len(), 15);
        for c in &cols {
            assert_eq!(c.cells.len(), 5);
            assert!(!c.concept.is_empty());
        }
        assert!(cols.iter().any(|c| c.unknown_cells > 0));
    }

    #[test]
    fn workloads_deterministic() {
        let w = world();
        let a = table_columns(&w, 5, 4, 0.1, 3);
        let b = table_columns(&w, 5, 4, 0.1, 3);
        assert!(a.iter().zip(&b).all(|(x, y)| x.cells == y.cells));
    }
}
