//! Synthetic web-query log (paper §5.1, Figures 5–7).
//!
//! The paper analyzed Bing's two-year query log: 50 million distinct
//! queries, long-tail frequency distribution, many mentioning concepts or
//! instances. The simulator reproduces the *mention structure*: each
//! query is built from a template plus world terms drawn Zipf-by-
//! popularity, with a slice of out-of-vocabulary queries. Each query
//! remembers the exact terms it mentions so coverage checks are fair and
//! fast across taxonomies.

use probase_baselines::TaxonomyView;
use probase_corpus::{World, Zipf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One distinct query, in descending-frequency order within the log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    pub text: String,
    /// Concept labels mentioned (canonical form).
    pub concept_mentions: Vec<String>,
    /// Instance surfaces mentioned.
    pub instance_mentions: Vec<String>,
}

impl Query {
    /// Does `t` cover (understand at least one term of) this query?
    pub fn covered_by(&self, t: &dyn TaxonomyView) -> bool {
        self.concept_mentions.iter().any(|c| t.has_concept(c))
            || self.instance_mentions.iter().any(|i| t.has_term(i))
    }

    /// Does `t` know at least one *concept* of this query (Figure 7)?
    pub fn concept_covered_by(&self, t: &dyn TaxonomyView) -> bool {
        self.concept_mentions.iter().any(|c| t.has_concept(c))
    }
}

/// Query log configuration.
#[derive(Debug, Clone)]
pub struct QueryLogConfig {
    pub seed: u64,
    /// Number of distinct queries (the paper's 50 M, scaled).
    pub queries: usize,
    /// Zipf exponent over concepts.
    pub zipf: f64,
    /// Zipf exponent over instances within a concept (people query famous
    /// entities far more than obscure ones).
    pub instance_zipf: f64,
    /// Fraction of queries mentioning no taxonomy term at all.
    pub oov_rate: f64,
    /// Fraction of term-bearing queries that mention a concept (vs only
    /// an instance).
    pub concept_rate: f64,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            queries: 200_000,
            zipf: 1.25,
            instance_zipf: 1.2,
            oov_rate: 0.12,
            concept_rate: 0.45,
        }
    }
}

const INSTANCE_TEMPLATES: &[&str] = &[
    "{I}",
    "{I} review",
    "cheap {I}",
    "{I} near me",
    "history of {I}",
    "{I} news",
    "buy {I} online",
    "{I} wiki",
    "{I} photos",
    "{I} vs",
    "{I} facts",
    "is {I} good",
    "{I} official site",
    "where is {I}",
];

const CONCEPT_TEMPLATES: &[&str] = &[
    "best {C}",
    "{C} list",
    "top 10 {C}",
    "famous {C}",
    "{C} comparison",
    "new {C} 2011",
    "{C} near me",
    "cheapest {C}",
    "{C} ranked",
    "most popular {C}",
    "{C} reviews",
];

const OOV_WORDS: &[&str] = &[
    "qwerty",
    "asdf",
    "lyrics",
    "login",
    "weather",
    "horoscope",
    "zip",
    "codes",
    "meme",
    "screensaver",
    "ringtone",
    "coupon",
];

/// Generate the log, most frequent queries first. Frequency rank is the
/// vector index — the generator samples terms Zipf-by-popularity, so head
/// queries mention head terms, matching the paper's observation that
/// frequent queries carry common concepts and the tail carries the
/// specific ones.
pub fn generate_query_log(world: &World, cfg: &QueryLogConfig) -> Vec<Query> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Popularity-ordered concepts (head first) and their instances.
    let mut concepts: Vec<usize> = (0..world.concepts.len())
        .filter(|&i| !world.concepts[i].instances.is_empty())
        .collect();
    concepts.sort_by(|&a, &b| {
        world.concepts[b]
            .popularity
            .partial_cmp(&world.concepts[a].popularity)
            .expect("finite")
    });
    let concept_zipf = Zipf::new(concepts.len(), cfg.zipf);

    let mut out = Vec::with_capacity(cfg.queries);
    let mut seen = std::collections::HashSet::new();
    let mut guard = 0usize;
    // The OOV space is effectively unbounded while term-bearing queries
    // saturate under deduplication, so the OOV share must be enforced as
    // a hard quota or it silently swallows the log.
    let oov_quota = (cfg.oov_rate * cfg.queries as f64).ceil() as usize;
    let mut oov_used = 0usize;
    while out.len() < cfg.queries && guard < cfg.queries * 20 {
        guard += 1;
        let q = if oov_used < oov_quota && rng.gen_bool(cfg.oov_rate) {
            let a = OOV_WORDS[rng.gen_range(0..OOV_WORDS.len())];
            let b = OOV_WORDS[rng.gen_range(0..OOV_WORDS.len())];
            let n: u32 = rng.gen_range(0..10_000);
            Query {
                text: format!("{a} {b} {n}"),
                concept_mentions: vec![],
                instance_mentions: vec![],
            }
        } else {
            let ci = concepts[concept_zipf.sample(&mut rng)];
            let concept = &world.concepts[ci];
            if rng.gen_bool(cfg.concept_rate) {
                let t = CONCEPT_TEMPLATES[rng.gen_range(0..CONCEPT_TEMPLATES.len())];
                let plural = probase_corpus::generator::pluralize_phrase(&concept.label);
                Query {
                    text: t.replace("{C}", &plural),
                    concept_mentions: vec![concept.label.clone()],
                    instance_mentions: vec![],
                }
            } else {
                let z = Zipf::new(concept.instances.len(), cfg.instance_zipf);
                let inst = world.instance(concept.instances[z.sample(&mut rng)].instance);
                let t = INSTANCE_TEMPLATES[rng.gen_range(0..INSTANCE_TEMPLATES.len())];
                Query {
                    text: t.replace("{I}", &inst.surface),
                    concept_mentions: vec![],
                    instance_mentions: vec![inst.surface.clone()],
                }
            }
        };
        if seen.insert(q.text.clone()) {
            if q.concept_mentions.is_empty() && q.instance_mentions.is_empty() {
                oov_used += 1;
            }
            out.push(q);
        }
    }
    out
}

/// Figure 5 series: number of *distinct relevant concepts* (concepts
/// known to `t` that appear in the top-k queries) at each checkpoint.
pub fn relevant_concepts_series(
    log: &[Query],
    t: &dyn TaxonomyView,
    checkpoints: &[usize],
) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    let mut count = 0usize;
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut ci = 0;
    for (i, q) in log.iter().enumerate() {
        for c in &q.concept_mentions {
            if t.has_concept(c) && seen.insert(c.clone()) {
                count += 1;
            }
        }
        while ci < checkpoints.len() && i + 1 == checkpoints[ci] {
            out.push(count);
            ci += 1;
        }
    }
    while ci < checkpoints.len() {
        out.push(count);
        ci += 1;
    }
    out
}

/// Figure 6/7 series: queries covered (any term / concept only) within
/// the top-k prefix at each checkpoint.
pub fn coverage_series(
    log: &[Query],
    t: &dyn TaxonomyView,
    checkpoints: &[usize],
    concept_only: bool,
) -> Vec<usize> {
    let mut covered = 0usize;
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut ci = 0;
    for (i, q) in log.iter().enumerate() {
        let hit = if concept_only {
            q.concept_covered_by(t)
        } else {
            q.covered_by(t)
        };
        covered += usize::from(hit);
        while ci < checkpoints.len() && i + 1 == checkpoints[ci] {
            out.push(covered);
            ci += 1;
        }
    }
    while ci < checkpoints.len() {
        out.push(covered);
        ci += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_baselines::{sample_rival, RivalConfig};
    use probase_corpus::{generate, WorldConfig};

    fn world() -> World {
        generate(&WorldConfig::small(61))
    }

    fn log(world: &World, n: usize) -> Vec<Query> {
        generate_query_log(
            world,
            &QueryLogConfig {
                queries: n,
                seed: 61,
                ..Default::default()
            },
        )
    }

    #[test]
    fn log_has_requested_size_and_mixture() {
        let w = world();
        let l = log(&w, 3000);
        assert_eq!(l.len(), 3000);
        let with_concepts = l.iter().filter(|q| !q.concept_mentions.is_empty()).count();
        let with_instances = l.iter().filter(|q| !q.instance_mentions.is_empty()).count();
        let oov = l
            .iter()
            .filter(|q| q.concept_mentions.is_empty() && q.instance_mentions.is_empty())
            .count();
        assert!(with_concepts > 500);
        assert!(with_instances > 500);
        assert!(oov > 200);
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = log(&w, 500);
        let b = log(&w, 500);
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text));
    }

    #[test]
    fn series_are_monotone() {
        let w = world();
        let l = log(&w, 2000);
        let yago = sample_rival(&w, &RivalConfig::yago());
        let cps = [200, 500, 1000, 2000];
        let rel = relevant_concepts_series(&l, &yago, &cps);
        let cov = coverage_series(&l, &yago, &cps, false);
        let ccov = coverage_series(&l, &yago, &cps, true);
        for w2 in rel.windows(2) {
            assert!(w2[1] >= w2[0]);
        }
        for w2 in cov.windows(2) {
            assert!(w2[1] >= w2[0]);
        }
        // concept coverage is a subset of full coverage
        for (c, f) in ccov.iter().zip(&cov) {
            assert!(c <= f);
        }
    }

    #[test]
    fn bigger_taxonomy_covers_more() {
        let w = world();
        let l = log(&w, 2000);
        let yago = sample_rival(&w, &RivalConfig::yago());
        let wordnet = sample_rival(&w, &RivalConfig::wordnet());
        let cps = [2000];
        let y = coverage_series(&l, &yago, &cps, false)[0];
        let wn = coverage_series(&l, &wordnet, &cps, false)[0];
        assert!(y >= wn, "yago {y} vs wordnet {wn}");
    }
}
