//! The judge: ground-truth evaluation of extracted knowledge.
//!
//! The paper evaluated precision with human judges over a 40-concept
//! benchmark (§5.2, Table 5, Figure 9). In the reproduction the sentence
//! generator knows the truth, so the judge is exact: an isA pair is
//! correct iff the sub-term is an instance or descendant concept of some
//! sense of the super-label in the ground-truth world (transitive
//! membership counts, as human judges would accept it).

use probase_corpus::benchmark::benchmark_labels;
use probase_corpus::{World, WorldIndex};
use probase_extract::Knowledge;
use probase_text::singularize;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A correct/total tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Precision {
    pub correct: usize,
    pub total: usize,
}

impl Precision {
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    pub fn add(&mut self, ok: bool) {
        self.total += 1;
        self.correct += usize::from(ok);
    }

    pub fn merge(&mut self, other: Precision) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Ground-truth judge over a world.
pub struct Judge<'w> {
    index: WorldIndex<'w>,
}

impl<'w> Judge<'w> {
    pub fn new(world: &'w World) -> Self {
        Self {
            index: WorldIndex::new(world),
        }
    }

    pub fn index(&self) -> &WorldIndex<'w> {
        &self.index
    }

    /// Is `(x isA y)` true in the world? Tries the sub-term verbatim and
    /// with a singularized head (extraction canonicalizes lowercase items,
    /// but judge inputs may come from baselines that do not).
    pub fn pair_valid(&self, x: &str, y: &str) -> bool {
        if self.index.is_valid_isa(x, y) {
            return true;
        }
        let head_singular = match y.rsplit_once(' ') {
            Some((head, last)) => format!("{head} {}", singularize(&last.to_lowercase())),
            None => singularize(&y.to_lowercase()),
        };
        head_singular != y && self.index.is_valid_isa(x, &head_singular)
    }

    /// Precision over an iterator of pairs.
    pub fn precision<'a>(&self, pairs: impl Iterator<Item = (&'a str, &'a str)>) -> Precision {
        let mut p = Precision::default();
        for (x, y) in pairs {
            p.add(self.pair_valid(x, y));
        }
        p
    }

    /// The paper's benchmark protocol (§5.2): for each of the 40 Table 5
    /// concepts, sample up to `sample` extracted subs and judge them.
    /// Returns `(label, precision)` per concept with at least one pair.
    pub fn benchmark_precision(
        &self,
        knowledge: &Knowledge,
        sample: usize,
        seed: u64,
    ) -> Vec<(String, Precision)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for label in benchmark_labels() {
            let Some(sym) = knowledge.lookup(label) else {
                continue;
            };
            let mut subs = knowledge.subs_of(sym);
            if subs.is_empty() {
                continue;
            }
            subs.shuffle(&mut rng);
            subs.truncate(sample);
            let mut p = Precision::default();
            for (y, _) in subs {
                p.add(self.pair_valid(label, knowledge.resolve(y)));
            }
            out.push((label.to_string(), p));
        }
        out
    }

    /// Recall against ground truth: the fraction of true direct
    /// (concept, instance) memberships with typicality at least
    /// `min_typicality` whose pair was extracted into Γ. Heads-weighted
    /// recall is the honest measure at simulation scale — tail instances
    /// may simply never have been rendered in the corpus.
    pub fn recall(&self, knowledge: &Knowledge, min_typicality: f64) -> Precision {
        let world = self.index.world();
        let mut p = Precision::default();
        for c in &world.concepts {
            let Some(x) = knowledge.lookup(&c.label) else {
                for m in c
                    .instances
                    .iter()
                    .filter(|m| m.typicality >= min_typicality)
                {
                    let _ = m;
                    p.add(false);
                }
                continue;
            };
            for m in c
                .instances
                .iter()
                .filter(|m| m.typicality >= min_typicality)
            {
                let surface = &world.instance(m.instance).surface;
                let found = knowledge
                    .lookup(surface)
                    .map(|y| knowledge.count(x, y) > 0)
                    .unwrap_or(false);
                p.add(found);
            }
        }
        p
    }

    /// Overall (macro-averaged) benchmark precision.
    pub fn benchmark_average(&self, knowledge: &Knowledge, sample: usize, seed: u64) -> f64 {
        let per = self.benchmark_precision(knowledge, sample, seed);
        if per.is_empty() {
            return 0.0;
        }
        per.iter().map(|(_, p)| p.ratio()).sum::<f64>() / per.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_corpus::{generate, WorldConfig};

    fn world() -> World {
        generate(&WorldConfig::small(51))
    }

    #[test]
    fn judges_curated_truths() {
        let w = world();
        let j = Judge::new(&w);
        assert!(j.pair_valid("country", "China"));
        assert!(j.pair_valid("animal", "cat"));
        assert!(j.pair_valid("animal", "cats")); // plural sub accepted
        assert!(j.pair_valid("country", "tropical country"));
        assert!(!j.pair_valid("country", "cat"));
        assert!(!j.pair_valid("dog", "cat"));
    }

    #[test]
    fn transitive_membership_accepted() {
        let w = world();
        let j = Judge::new(&w);
        // cat is under household pet / domestic animal / animal.
        assert!(j.pair_valid("organism", "cat"));
    }

    #[test]
    fn precision_counts() {
        let w = world();
        let j = Judge::new(&w);
        let pairs = [("country", "China"), ("country", "cat")];
        let p = j.precision(pairs.iter().map(|&(a, b)| (a, b)));
        assert_eq!(p.total, 2);
        assert_eq!(p.correct, 1);
        assert!((p.ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn benchmark_precision_over_knowledge() {
        let w = world();
        let j = Judge::new(&w);
        let mut g = Knowledge::new();
        let company = g.intern("company");
        let ibm = g.intern("IBM");
        let junk = g.intern("wombatron");
        g.add_pair(company, ibm);
        g.add_pair(company, junk);
        let per = j.benchmark_precision(&g, 50, 1);
        let company_entry = per.iter().find(|(l, _)| l == "company").unwrap();
        assert_eq!(company_entry.1.total, 2);
        assert_eq!(company_entry.1.correct, 1);
    }
}
