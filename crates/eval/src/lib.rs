//! # probase-eval
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! §5 results against the synthetic ground truth.
//!
//! * [`judge`] — exact precision judging (the stand-in for the paper's
//!   human judges), including the 40-concept benchmark protocol.
//! * [`querylog`] — the scaled Bing-log simulator behind Figures 5–7.
//! * [`workloads`] — semantic queries, tweets, and web tables with gold
//!   labels for the §5.3 application experiments.
//! * [`metrics`] — size histograms (Figure 8), precision@k, head
//!   concentration, and plain-text table rendering for the `exp_*`
//!   binaries.

pub mod judge;
pub mod metrics;
pub mod querylog;
pub mod workloads;

pub use judge::{Judge, Precision};
pub use metrics::{
    head_concentration, pr_curve, precision_at_k, render_table, PrPoint, SizeHistogram,
};
pub use querylog::{
    coverage_series, generate_query_log, relevant_concepts_series, Query, QueryLogConfig,
};
pub use workloads::{semantic_queries, table_columns, tweets, GoldColumn, SemanticQuery, Tweet};
