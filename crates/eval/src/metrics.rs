//! Shared evaluation metrics and report formatting.

use serde::{Deserialize, Serialize};

/// A labeled histogram over concept sizes (paper Figure 8). Buckets are
/// half-open `[lo, hi)` ranges scaled down from the paper's
/// `≥1M … <5` intervals to fit the simulated world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeHistogram {
    pub buckets: Vec<(String, usize)>,
}

/// The scaled bucket boundaries: `(label, lo_inclusive)` descending.
pub const SIZE_BUCKETS: &[(&str, usize)] = &[
    (">=1000", 1000),
    ("[300,1000)", 300),
    ("[100,300)", 100),
    ("[30,100)", 30),
    ("[10,30)", 10),
    ("[5,10)", 5),
    ("<5", 0),
];

impl SizeHistogram {
    /// Bucket the concept sizes.
    pub fn compute(sizes: &[usize]) -> Self {
        let mut counts = vec![0usize; SIZE_BUCKETS.len()];
        for &s in sizes {
            for (i, &(_, lo)) in SIZE_BUCKETS.iter().enumerate() {
                if s >= lo {
                    counts[i] += 1;
                    break;
                }
            }
        }
        Self {
            buckets: SIZE_BUCKETS
                .iter()
                .zip(counts)
                .map(|(&(label, _), n)| (label.to_string(), n))
                .collect(),
        }
    }

    pub fn total(&self) -> usize {
        self.buckets.iter().map(|(_, n)| n).sum()
    }
}

/// Share of the top-`k` concepts in the total pair mass (the paper's
/// "top 10 concepts in Freebase contain 70% of all pairs" observation).
pub fn head_concentration(sizes: &[usize], k: usize) -> f64 {
    let total: usize = sizes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let head: usize = sorted.iter().take(k).sum();
    head as f64 / total as f64
}

/// Precision@k of a ranked list against a validity predicate.
pub fn precision_at_k<T>(ranked: &[T], k: usize, valid: impl Fn(&T) -> bool) -> f64 {
    let take = ranked.len().min(k);
    if take == 0 {
        return 0.0;
    }
    ranked[..take].iter().filter(|x| valid(x)).count() as f64 / take as f64
}

/// One point of a precision/recall trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Score threshold the knowledge was filtered at.
    pub threshold: f64,
    /// Precision of the pairs kept.
    pub precision: f64,
    /// Fraction of all *valid* pairs kept (recall relative to what was
    /// extracted, not to the world).
    pub recall: f64,
    /// Pairs kept.
    pub kept: usize,
}

/// Sweep a score threshold over `(score, valid)` pairs and report the
/// precision/recall trade-off — the payoff of plausibility (§4): keep
/// only claims above τ and precision rises as recall falls.
///
/// ```
/// use probase_eval::pr_curve;
/// let scored = [(0.9, true), (0.8, true), (0.2, false)];
/// let curve = pr_curve(&scored, &[0.0, 0.5]);
/// assert!(curve[1].precision >= curve[0].precision);
/// ```
pub fn pr_curve(scored: &[(f64, bool)], thresholds: &[f64]) -> Vec<PrPoint> {
    let total_valid = scored.iter().filter(|(_, ok)| *ok).count().max(1);
    thresholds
        .iter()
        .map(|&threshold| {
            let kept: Vec<&(f64, bool)> = scored.iter().filter(|(s, _)| *s >= threshold).collect();
            let valid = kept.iter().filter(|(_, ok)| *ok).count();
            PrPoint {
                threshold,
                precision: valid as f64 / kept.len().max(1) as f64,
                recall: valid as f64 / total_valid as f64,
                kept: kept.len(),
            }
        })
        .collect()
}

/// Render a simple aligned text table (used by the `exp_*` binaries so
/// their output reads like the paper's tables).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_everything() {
        let sizes = vec![0, 3, 7, 12, 50, 200, 500, 2000];
        let h = SizeHistogram::compute(&sizes);
        assert_eq!(h.total(), sizes.len());
        let big = h.buckets.iter().find(|(l, _)| l == ">=1000").unwrap();
        assert_eq!(big.1, 1);
        let small = h.buckets.iter().find(|(l, _)| l == "<5").unwrap();
        assert_eq!(small.1, 2);
    }

    #[test]
    fn head_concentration_extremes() {
        assert!((head_concentration(&[100, 1, 1], 1) - 100.0 / 102.0).abs() < 1e-12);
        assert_eq!(head_concentration(&[], 5), 0.0);
        assert!((head_concentration(&[5, 5], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k_counts_prefix() {
        let ranked = [1, 0, 1, 1];
        assert!((precision_at_k(&ranked, 2, |&x| x == 1) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&ranked, 4, |&x| x == 1) - 0.75).abs() < 1e-12);
        assert_eq!(precision_at_k::<i32>(&[], 5, |_| true), 0.0);
    }

    #[test]
    fn pr_curve_trades_recall_for_precision() {
        // Scores correlate with validity: valid pairs score higher.
        let mut scored = Vec::new();
        for i in 0..100 {
            let valid = i % 10 != 0; // 90% valid
            let score = if valid {
                0.5 + (i % 50) as f64 / 100.0
            } else {
                0.3
            };
            scored.push((score, valid));
        }
        let curve = pr_curve(&scored, &[0.0, 0.4, 0.9]);
        assert_eq!(curve.len(), 3);
        // Higher threshold: precision up (or equal), recall down.
        assert!(curve[1].precision >= curve[0].precision);
        assert!(curve[1].recall <= curve[0].recall);
        assert!((curve[1].precision - 1.0).abs() < 1e-12, "{curve:?}");
        assert!(curve[2].kept < curve[1].kept);
    }

    #[test]
    fn pr_curve_empty_threshold_keeps_all() {
        let scored = [(0.9, true), (0.1, false)];
        let c = pr_curve(&scored, &[0.0]);
        assert_eq!(c[0].kept, 2);
        assert!((c[0].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_table_aligns() {
        let s = render_table(&["name", "n"], &[vec!["Probase".into(), "42".into()]]);
        assert!(s.contains("Probase"));
        assert!(s.lines().count() == 3);
    }
}
