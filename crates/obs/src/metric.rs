//! The metric primitives: monotonic counters, signed gauges, log-bucketed
//! histograms, and scoped stage timers.
//!
//! Everything on the record path is lock-free atomics with `Relaxed`
//! ordering — instrumentation must be cheap enough to leave on in the
//! extraction inner loop and the serving hot path. The only lock in the
//! module guards the bounded per-call span log of [`Stage`], which is
//! touched once per *stage* (a pipeline phase or an extraction round),
//! not once per record.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A signed gauge for quantities that go up *and* down (queue depth,
/// open connections).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Relaxed);
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Relaxed);
    }

    /// Current value (racy reads can transiently observe inc/dec out of
    /// order; callers that need a floor clamp it themselves).
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// Sub-bucket resolution of the HDR-style histogram: each power-of-two
/// octave above the linear region splits into `2^SUB_BUCKET_BITS` linear
/// sub-buckets, bounding the relative quantile error at
/// `1 / 2^SUB_BUCKET_BITS` (≈ 3.1%).
pub const SUB_BUCKET_BITS: usize = 5;

/// Sub-buckets per octave (see [`SUB_BUCKET_BITS`]).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Values below this are recorded exactly (one bucket per integer).
const LINEAR_MAX: u64 = 2 * SUB_BUCKETS as u64;

/// Number of power-of-two octaves above the linear region: `[2^6, 2^7)`
/// through `[2^63, 2^64)`.
const OCTAVES: usize = 64 - (SUB_BUCKET_BITS + 1);

/// Total bucket count: the exact linear region plus `SUB_BUCKETS` slots
/// per octave. More range than any latency in microseconds or payload
/// size in bytes will ever need, at ~3% worst-case resolution.
pub const BUCKETS: usize = 2 * SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// An HDR-style log-bucketed histogram over `u64` values.
///
/// One type serves both latencies (record microseconds via
/// [`Histogram::record_duration`]) and sizes (record raw values via
/// [`Histogram::record`]). Values below [`LINEAR_MAX`] land in
/// per-integer buckets (exact quantiles — small-sample percentile math
/// cannot be off-by-one); larger values use the HdrHistogram bucketing:
/// the octave `[2^e, 2^(e+1))` splits into [`SUB_BUCKETS`] equal slots,
/// so every quantile is within `1/SUB_BUCKETS` of exact — tight enough
/// to gate p99/p99.9 SLOs on, unlike one-bucket power-of-two resolution
/// where "p99" could be 2× the truth. The true maximum is additionally
/// tracked exactly ([`Histogram::max`]).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            // `[T; N]: Default` stops at N = 32, so build the slots by hand.
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for `value` (see the type docs for the layout).
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        value as usize
    } else {
        let e = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (e - SUB_BUCKET_BITS)) as usize) & (SUB_BUCKETS - 1);
        2 * SUB_BUCKETS + (e - (SUB_BUCKET_BITS + 1)) * SUB_BUCKETS + sub
    }
}

/// The largest value that lands in bucket `idx` — what [`Histogram::quantile`]
/// reports, so the estimate never understates the true quantile.
fn bucket_high(idx: usize) -> u64 {
    if idx < 2 * SUB_BUCKETS {
        idx as u64
    } else {
        let j = idx - 2 * SUB_BUCKETS;
        let e = SUB_BUCKET_BITS + 1 + j / SUB_BUCKETS;
        let sub = (j % SUB_BUCKETS) as u64;
        let width = 1u64 << (e - SUB_BUCKET_BITS);
        (1u64 << e) + sub * width + (width - 1)
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Record a duration in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest recorded value, tracked exactly (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Mean value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank `q`-quantile estimate: the highest value of the
    /// bucket holding the target rank (0 when empty). Exact below
    /// [`LINEAR_MAX`]; within `1/SUB_BUCKETS` above, never understating.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(i);
            }
        }
        bucket_high(BUCKETS - 1)
    }
}

/// How many individual span durations a [`Stage`] keeps verbatim. The
/// pipeline stages this exists for (extraction rounds, merge phases) run
/// a handful to a dozen times; anything chattier only keeps aggregates.
const MAX_RECORDED_SPANS: usize = 256;

/// A named pipeline stage: call count, total wall time, and the first
/// [`MAX_RECORDED_SPANS`] per-call durations (so an extraction run's
/// per-iteration wall times survive into the report verbatim).
#[derive(Debug, Default)]
pub struct Stage {
    calls: AtomicU64,
    total_ns: AtomicU64,
    spans_ns: Mutex<Vec<u64>>,
}

impl Stage {
    /// Start a scoped timer; the elapsed time records when the returned
    /// [`StageSpan`] drops.
    pub fn span(&self) -> StageSpan<'_> {
        StageSpan {
            stage: self,
            start: Instant::now(),
        }
    }

    /// Time a closure as one call of this stage.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _span = self.span();
        f()
    }

    /// Record one completed call of `elapsed` wall time.
    pub fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.calls.fetch_add(1, Relaxed);
        self.total_ns.fetch_add(ns, Relaxed);
        let mut spans = self.spans_ns.lock().expect("stage span log poisoned");
        if spans.len() < MAX_RECORDED_SPANS {
            spans.push(ns);
        }
    }

    /// Number of completed calls.
    pub fn calls(&self) -> u64 {
        self.calls.load(Relaxed)
    }

    /// Total wall time across all calls.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns.load(Relaxed))
    }

    /// The retained per-call durations, in call order.
    pub fn spans(&self) -> Vec<Duration> {
        self.spans_ns
            .lock()
            .expect("stage span log poisoned")
            .iter()
            .map(|&ns| Duration::from_nanos(ns))
            .collect()
    }
}

/// A scoped stage timer; records its elapsed time on drop.
#[must_use = "a StageSpan records on drop; binding it to _ ends the span immediately"]
pub struct StageSpan<'a> {
    stage: &'a Stage,
    start: Instant,
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        self.stage.record(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // The linear region is exact: every value below LINEAR_MAX is its
        // own bucket.
        for v in [0u64, 1, 7, 8, 63] {
            let h = Histogram::default();
            h.record(v);
            assert_eq!(h.quantile(0.5), v, "value {v} must be exact");
        }
        // First octave bucket: 64 and 65 share [64, 66); the estimate is
        // the bucket's highest value.
        let h = Histogram::default();
        h.record(64);
        assert_eq!(h.quantile(0.5), 65);
        // u64::MAX clamps into the last bucket without panicking.
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.99), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_index_and_high_agree() {
        // Every probe value must land in a bucket whose [index → high]
        // round trip contains it, and bucket highs must be monotone.
        let probes = [
            0u64,
            1,
            63,
            64,
            65,
            100,
            127,
            128,
            1_000,
            65_535,
            100_000,
            1 << 32,
            (1 << 40) + 12345,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let high = bucket_high(idx);
            assert!(high >= v, "high({idx}) = {high} < value {v}");
            // Within one bucket: high - v < max(1, v / SUB_BUCKETS + 1).
            assert!(
                high - v <= v / SUB_BUCKETS as u64 + 1,
                "value {v}: bucket high {high} too loose"
            );
        }
        for idx in 1..BUCKETS {
            assert!(bucket_high(idx) > bucket_high(idx - 1), "idx {idx}");
        }
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(10); // linear region: exact
        }
        h.record(100_000); // octave [2^16, 2^17), sub-bucket width 2048
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 10);
        assert_eq!(h.quantile(0.95), 10);
        let top = h.quantile(1.0);
        assert!(
            (100_000..=100_000 + 100_000 / SUB_BUCKETS as u64 + 1).contains(&top),
            "{top}"
        );
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - (99.0 * 10.0 + 100_000.0) / 100.0).abs() < 1e-9);
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.max(), 0);
    }

    /// Regression for the raw-vector percentile the loadgen used to
    /// carry: `round(p * (len - 1))` returned the 6th element as the p50
    /// of 10 samples. Nearest-rank over the exact linear region returns
    /// the 5th.
    #[test]
    fn histogram_small_sample_p50_is_not_off_by_one() {
        let h = Histogram::default();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 5, "p50 of 1..=10 is the 5th sample");
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.9), 9);
    }

    #[test]
    fn histogram_duration_records_micros() {
        let h = Histogram::default();
        h.record_duration(Duration::from_micros(10));
        assert_eq!(h.sum(), 10);
        h.record_duration(Duration::from_nanos(10)); // rounds to 0 µs
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn stage_span_records_on_drop() {
        let s = Stage::default();
        {
            let _span = s.span();
            std::thread::sleep(Duration::from_millis(2));
        }
        s.time(|| ());
        assert_eq!(s.calls(), 2);
        assert!(s.total() >= Duration::from_millis(2));
        let spans = s.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0] >= Duration::from_millis(2));
    }

    #[test]
    fn stage_span_log_is_bounded() {
        let s = Stage::default();
        for _ in 0..(MAX_RECORDED_SPANS + 10) {
            s.record(Duration::from_nanos(1));
        }
        assert_eq!(s.calls() as usize, MAX_RECORDED_SPANS + 10);
        assert_eq!(s.spans().len(), MAX_RECORDED_SPANS);
    }

    #[test]
    fn concurrent_counter_increments() {
        let c = Counter::default();
        let h = Histogram::default();
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 1024);
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
    }
}
