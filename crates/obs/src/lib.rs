//! # probase-obs
//!
//! The workspace-wide observability substrate: lightweight, zero-dep
//! instrumentation for a pipeline the paper ran as a 7-hour, 10-machine
//! job (§2 Algorithm 1) and a serving layer meant for production traffic.
//! Every stage of the reproduction — extraction rounds, the three merge
//! phases of Algorithm 2, plausibility scoring, store swaps, server
//! endpoints — reports through one system, so perf claims get numbers.
//!
//! Three pieces:
//!
//! * **Primitives** ([`metric`]) — [`Counter`], [`Gauge`], log-bucketed
//!   [`Histogram`] (latencies *and* sizes), and [`Stage`] /
//!   [`StageSpan`] scoped timers that retain per-call wall times.
//! * **Registry** ([`registry`]) — a name → metric map handing out
//!   `Arc` handles; [`Registry::snapshot`] renders a deterministic JSON
//!   report. [`global`] is the process-wide instance the pipeline's
//!   default entry points record into; tests and benches construct
//!   isolated registries and use the `*_observed` pipeline variants.
//! * **JSON** ([`json`]) — the hand-rolled, dependency-free codec
//!   (hoisted from `probase-serve`, which now re-exports it) used for
//!   both the wire protocol and the metrics reports.
//!
//! Naming convention (enforced by review, documented in DESIGN.md §10):
//! `<crate>.<subject>[.<aspect>]`, lowercase snake case — e.g.
//! `extract.pairs_committed`, `taxonomy.horizontal_merge`,
//! `serve.isa.latency_us`, `store.snapshot_swaps`.
//!
//! ```
//! use probase_obs::Registry;
//! let reg = Registry::new();
//! reg.counter("extract.pairs_committed").add(3);
//! let stage = reg.stage("taxonomy.horizontal_merge");
//! stage.time(|| { /* merge ... */ });
//! let report = reg.snapshot(); // Json, deterministic key order
//! assert!(report.to_string().contains("pairs_committed"));
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metric;
pub mod registry;

pub use json::Json;
pub use metric::{Counter, Gauge, Histogram, Stage, StageSpan};
pub use registry::{global, Registry};
