//! A minimal, dependency-free JSON value with parser and writer.
//!
//! Two subsystems speak JSON — the newline-delimited serving protocol in
//! `probase-serve` and the metrics reports this crate's registry emits —
//! but the workspace deliberately carries no `serde_json` (the dependency
//! policy in `DESIGN.md` §6 keeps the tree tiny). Both formats are small
//! and fully under our control, so a ~300-line hand-rolled codec is the
//! honest cost — and it is exhaustively unit-tested. The codec was born
//! in `probase-serve` and hoisted here so every crate that reports
//! metrics can share it without depending on the server.
//!
//! Numbers are stored as `f64` (adequate: the formats carry counts,
//! scores, and versions far below 2^53). Object keys keep insertion
//! order, which makes serialized output deterministic — the serve
//! response cache relies on that for canonical cache keys, and the
//! metrics snapshot relies on it for byte-identical reports.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a numeric value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Look up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (numeric, non-negative, integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to a compact single-line string (no embedded newlines:
/// control characters in strings are escaped, so the output is always
/// safe to terminate with `\n` on the wire). `to_string()` comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; degrade to null rather than emit garbage.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON value from `input` (whole input must be consumed, bar
/// trailing whitespace).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser {
        bytes,
        input,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.input[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Called with `pos` on the `u`; consumes `uXXXX` (and a low
    /// surrogate if needed), returning the decoded char.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.input[self.pos..].starts_with("\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = &self.input[self.pos..end];
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad hex digits"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "0", "-7", "3.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string(), src);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"id":1,"endpoint":"typicality","args":{"term":"country","k":5},"tags":[1,2,3],"ok":true,"note":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1}";
        let v = Json::str(original);
        let wire = v.to_string();
        assert!(
            !wire.contains('\n'),
            "wire form must be single-line: {wire}"
        );
        assert_eq!(parse(&wire).unwrap().as_str().unwrap(), original);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::str("A"));
        // Surrogate pair → U+1F600
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
        assert!(
            parse(r#""\ud83d""#).is_err(),
            "unpaired surrogate must fail"
        );
        // Non-ASCII passes through unescaped.
        assert_eq!(
            parse("\"caf\u{e9}\"").unwrap().as_str().unwrap(),
            "caf\u{e9}"
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-2.5e-1").unwrap().as_f64(), Some(-0.25));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert!(parse("1e999").is_err(), "overflow to inf must fail");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a":1,"b":"x","c":[true]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"abc", "[1] x", "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\r\n \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn deep_nesting_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(
            parse(&deep).is_err(),
            "over-deep input must be rejected, not overflow"
        );
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn deterministic_key_order() {
        let v = Json::obj(vec![("b", Json::num(1)), ("a", Json::num(2))]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":2}"#);
    }
}
