//! The metric registry: named handles plus a serializable snapshot.
//!
//! A [`Registry`] is a name → metric map. Components ask it for handles
//! once ([`Registry::counter`] & co. get-or-create and hand back an
//! `Arc`), then record through the handle with no further locking — the
//! registry's mutex is a registration-time cost, never a hot-path cost.
//!
//! [`Registry::snapshot`] renders everything into one [`Json`] report
//! with names sorted (a `BTreeMap` backs each section), so two snapshots
//! of identical metric states serialize byte-identically — CI diffs and
//! the golden tests depend on that.
//!
//! [`global`] is the process-wide default registry the pipeline records
//! into; subsystems that need isolation (one server instance per test,
//! one registry per benchmark profile) construct their own `Registry`
//! and thread it through the `*_observed` entry points.

use crate::json::Json;
use crate::metric::{Counter, Gauge, Histogram, Stage};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A named collection of metrics. See the module docs.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    stages: Mutex<BTreeMap<String, Arc<Stage>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

fn get_or_create<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut guard = map.lock().expect("registry poisoned");
    guard.entry(name.to_string()).or_default().clone()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Get or create the stage timer named `name`.
    pub fn stage(&self, name: &str) -> Arc<Stage> {
        get_or_create(&self.stages, name)
    }

    /// Render every registered metric into one JSON report.
    ///
    /// Shape (all four sections always present, names sorted):
    ///
    /// ```json
    /// {
    ///   "counters":   {"extract.pairs_committed": 1234},
    ///   "gauges":     {"serve.queue.depth": 0},
    ///   "histograms": {"serve.isa.latency_us":
    ///                    {"count": 9, "sum": 90, "mean": 10.0,
    ///                     "p50": 10, "p90": 10, "p99": 10,
    ///                     "p999": 10, "max": 10}},
    ///   "stages":     {"extract.iteration":
    ///                    {"calls": 3, "total_us": 480,
    ///                     "spans_us": [200, 180, 100]}}
    /// }
    /// ```
    pub fn snapshot(&self) -> Json {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), Json::num(c.get() as f64)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), Json::num(g.get() as f64)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    Json::obj(vec![
                        ("count", Json::num(h.count() as f64)),
                        ("sum", Json::num(h.sum() as f64)),
                        ("mean", Json::num((h.mean() * 10.0).round() / 10.0)),
                        ("p50", Json::num(h.quantile(0.50) as f64)),
                        ("p90", Json::num(h.quantile(0.90) as f64)),
                        ("p99", Json::num(h.quantile(0.99) as f64)),
                        ("p999", Json::num(h.quantile(0.999) as f64)),
                        ("max", Json::num(h.max() as f64)),
                    ]),
                )
            })
            .collect();
        let stages = self
            .stages
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, s)| {
                let spans = s
                    .spans()
                    .iter()
                    .map(|d| Json::num(d.as_micros() as f64))
                    .collect();
                (
                    name.clone(),
                    Json::obj(vec![
                        ("calls", Json::num(s.calls() as f64)),
                        ("total_us", Json::num(s.total().as_micros() as f64)),
                        ("spans_us", Json::Arr(spans)),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
            ("stages", Json::Obj(stages)),
        ])
    }
}

/// The process-global registry. The pipeline's default entry points
/// (`extract`, `build_taxonomy`, `build_probase`, `SharedStore`) record
/// here; `probase-cli --metrics-out` and the `exp_*` binaries snapshot it.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        // Different sections never collide on a name.
        r.gauge("x").set(-1);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.gauge("x").get(), -1);
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let build = || {
            let r = Registry::new();
            r.counter("b.second").add(2);
            r.counter("a.first").add(1);
            r.gauge("depth").set(4);
            r.histogram("lat").record(10);
            r.stage("phase").record(Duration::from_micros(250));
            r.snapshot().to_string()
        };
        let one = build();
        let two = build();
        assert_eq!(one, two, "identical states must serialize identically");
        // Sorted key order regardless of registration order.
        let a = one.find("a.first").unwrap();
        let b = one.find("b.second").unwrap();
        assert!(a < b, "{one}");
    }

    #[test]
    fn snapshot_sections_carry_values() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(-2);
        r.histogram("h").record(100);
        r.stage("s").record(Duration::from_micros(50));
        let snap = r.snapshot();
        assert_eq!(
            snap.get("counters")
                .unwrap()
                .get("c")
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            snap.get("gauges").unwrap().get("g").and_then(Json::as_f64),
            Some(-2.0)
        );
        let h = snap.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(1));
        // HDR bucketing: 100 sits in [100, 102), reported as the bucket
        // high — within 1/SUB_BUCKETS of exact instead of the old 128.
        assert_eq!(h.get("p50").and_then(Json::as_u64), Some(101));
        assert_eq!(h.get("p999").and_then(Json::as_u64), Some(101));
        assert_eq!(h.get("max").and_then(Json::as_u64), Some(100));
        let s = snap.get("stages").unwrap().get("s").unwrap();
        assert_eq!(s.get("calls").and_then(Json::as_u64), Some(1));
        assert_eq!(
            s.get("spans_us").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn concurrent_registration_and_recording() {
        let r = Registry::new();
        crossbeam::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    for i in 0..1_000 {
                        r.counter("shared").inc();
                        r.counter(&format!("per.{}", i % 4)).inc();
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(r.counter("shared").get(), 8_000);
        let total: u64 = (0..4).map(|i| r.counter(&format!("per.{i}")).get()).sum();
        assert_eq!(total, 8_000);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global().counter("obs.test.global");
        let b = global().counter("obs.test.global");
        a.inc();
        assert!(b.get() >= 1);
        assert!(Arc::ptr_eq(global(), global()));
    }
}
