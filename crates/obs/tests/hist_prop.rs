//! Property tests for the HDR-style histogram: the log-bucketed
//! quantile must stay within one bucket of the exact nearest-rank
//! quantile on arbitrary inputs, never understating it. The serve SLO
//! gate trusts these numbers (`BENCH_SERVE.json` p99/p99.9), so "within
//! 1/SUB_BUCKETS above the truth" is a load-bearing guarantee, not a
//! nicety.

use probase_obs::metric::{Histogram, SUB_BUCKETS};
use proptest::prelude::*;

/// Exact nearest-rank quantile over raw samples: the smallest value
/// whose rank is ≥ `ceil(q · n)` (rank ≥ 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[target - 1]
}

proptest! {
    /// For any sample set and quantile, the histogram estimate `h`
    /// brackets the exact nearest-rank value `x`:
    /// `x <= h <= x + x/SUB_BUCKETS + 1` — i.e. within one bucket,
    /// and never an underestimate.
    #[test]
    fn quantile_within_one_bucket_of_exact(
        mut values in proptest::collection::vec(0u64..100_000_000, 1..500),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_quantile(&values, q);
        let est = h.quantile(q);
        prop_assert!(est >= exact, "estimate {est} understates exact {exact}");
        prop_assert!(
            est <= exact + exact / SUB_BUCKETS as u64 + 1,
            "estimate {est} more than one bucket above exact {exact}"
        );
    }

    /// Count, sum, and max are exact regardless of bucketing.
    #[test]
    fn count_sum_max_are_exact(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    /// Quantiles are monotone in `q`.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(0u64..10_000_000, 1..200),
    ) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
    }
}
