//! Property tests for the dependency-free JSON codec: encode→parse is
//! the identity on finite values, and the parser never panics on
//! arbitrary input — it is fed raw bytes off sockets by `probase-serve`,
//! so "rejects garbage with an error" is a load-bearing guarantee.

use probase_obs::json::{self, Json};
use proptest::prelude::*;

/// Arbitrary JSON values, nested up to 3 levels. Non-finite numbers are
/// excluded: the encoder deliberately degrades NaN/Inf to `null` (JSON
/// has no spelling for them), so they cannot round-trip by design.
fn json_value() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Json::Num),
        ".*".prop_map(Json::Str),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            proptest::collection::vec((".{0,8}", inner), 0..6).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    /// `parse(encode(v)) == v` for every finite value, including
    /// insertion order of object keys (the codec preserves it).
    #[test]
    fn encode_parse_roundtrip(v in json_value()) {
        let text = v.to_string();
        let back = json::parse(&text)
            .unwrap_or_else(|e| panic!("own output must parse: {e} in {text:?}"));
        prop_assert_eq!(back, v);
    }

    /// Encoding is stable under a round trip: re-encoding the parsed
    /// value yields the same bytes, so cached/compared response lines
    /// are canonical.
    #[test]
    fn encoding_is_canonical(v in json_value()) {
        let text = v.to_string();
        let back = json::parse(&text).expect("own output parses");
        prop_assert_eq!(back.to_string(), text);
    }

    /// The parser never panics on arbitrary strings — it either parses
    /// or returns a `ParseError` with a sane offset.
    #[test]
    fn parse_never_panics_on_strings(s in ".*") {
        if let Err(e) = json::parse(&s) {
            prop_assert!(e.offset <= s.len(), "offset {} beyond input {}", e.offset, s.len());
        }
    }

    /// Byte soup (lossily decoded, as the server does with socket data)
    /// never panics the parser either.
    #[test]
    fn parse_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&s);
    }

    /// A valid document with trailing garbage is rejected, not
    /// silently truncated — the wire protocol is one document per line.
    #[test]
    fn trailing_garbage_rejected(v in json_value(), garbage in "[a-z{\\[]{1,8}") {
        let text = format!("{v}{garbage}");
        prop_assert!(json::parse(&text).is_err(), "accepted {text:?}");
    }
}
