//! The end-to-end Probase pipeline.
//!
//! Corpus sentences → iterative extraction (Algorithm 1) → taxonomy
//! construction (Algorithm 2) → plausibility (Eq. 1–2) → typicality
//! (Eq. 3–4, Algorithm 3) → the queryable [`ProbaseModel`].
//!
//! [`build_probase`] runs the whole chain over any sentence corpus;
//! [`Simulation`] additionally generates the synthetic world and corpus
//! (the reproduction's stand-in for the 1.68 B-page crawl) and derives the
//! WordNet-style seed oracle from the world's curated core.

use probase_corpus::{generate, CorpusConfig, CorpusGenerator, SentenceRecord, World, WorldConfig};
use probase_extract::{
    extract_observed, extract_parallel_observed, ExtractionOutput, ExtractorConfig,
};
use probase_obs::Registry;
use probase_prob::{
    annotate_graph, annotate_graph_urns, compute_plausibility_observed,
    compute_plausibility_parallel_observed, EvidenceModel, PlausibilityConfig, ProbaseModel,
    SeedOracle, SeedSet, UrnsModel,
};
use probase_store::GraphStats;
use probase_taxonomy::{build_taxonomy_observed, BuildStats, TaxonomyConfig};
use probase_text::Lexicon;

/// Which plausibility model annotates the taxonomy edges (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlausibilityKind {
    /// Naive Bayes over extraction features + noisy-or (Eq. 1–2).
    #[default]
    NoisyOr,
    /// The unsupervised Urns redundancy model (\[11\]).
    Urns,
}

/// Every knob of the pipeline in one place.
#[derive(Debug, Clone, Default)]
pub struct ProbaseConfig {
    pub extractor: ExtractorConfig,
    pub taxonomy: TaxonomyConfig,
    pub plausibility: PlausibilityConfig,
    /// Which §4.1 model computes edge plausibility.
    pub plausibility_kind: PlausibilityKind,
    /// Worker threads for the extraction, taxonomy, and plausibility
    /// stages; 0 or 1 = serial drivers. The taxonomy stage's own
    /// `taxonomy.threads` knob wins when set explicitly (non-zero);
    /// otherwise it inherits this value. Parallel and serial paths
    /// produce byte-identical results at every stage.
    pub threads: usize,
}

impl ProbaseConfig {
    /// The defaults used by the paper reproduction.
    pub fn paper() -> Self {
        Self {
            extractor: ExtractorConfig::paper(),
            taxonomy: TaxonomyConfig::default(),
            plausibility: PlausibilityConfig::default(),
            plausibility_kind: PlausibilityKind::default(),
            threads: 4,
        }
    }
}

/// A fully built Probase: the model plus everything produced on the way.
#[derive(Debug)]
pub struct Probase {
    /// The queryable probabilistic taxonomy.
    pub model: ProbaseModel,
    /// Raw extraction output (Γ, evidence log, per-iteration stats).
    pub extraction: ExtractionOutput,
    /// Taxonomy construction counters.
    pub build_stats: BuildStats,
    /// Table 4-style statistics of the final graph.
    pub graph_stats: GraphStats,
}

/// Run the full pipeline over a sentence corpus.
///
/// `oracle` plays WordNet's role for training the evidence model (paper
/// §4.1); pass an empty [`SeedSet`] to fall back to the prior model.
/// Stage timings and counters are reported to the process-global metric
/// registry (`probase-cli --metrics-out` snapshots it).
pub fn build_probase(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    config: &ProbaseConfig,
    oracle: &dyn SeedOracle,
) -> Probase {
    build_probase_observed(records, lexicon, config, oracle, probase_obs::global())
}

/// [`build_probase`] with an explicit metric registry.
///
/// Each top-level phase records a `pipeline.*` stage span; the component
/// crates record their own finer-grained `extract.*`, `taxonomy.*` and
/// `prob.*` metrics into the same registry.
pub fn build_probase_observed(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    config: &ProbaseConfig,
    oracle: &dyn SeedOracle,
    registry: &Registry,
) -> Probase {
    // 1. Iterative semantic extraction.
    let extraction = registry.stage("pipeline.extract").time(|| {
        if config.threads > 1 {
            extract_parallel_observed(
                records,
                lexicon,
                &config.extractor,
                config.threads,
                registry,
            )
        } else {
            extract_observed(records, lexicon, &config.extractor, registry)
        }
    });

    // 2. Taxonomy construction. An explicit (non-zero) taxonomy.threads
    // wins; otherwise the stage inherits the pipeline-wide knob, where
    // 0 or 1 means the exact serial path.
    let taxonomy_cfg = TaxonomyConfig {
        threads: if config.taxonomy.threads == 0 {
            config.threads.max(1)
        } else {
            config.taxonomy.threads
        },
        ..config.taxonomy.clone()
    };
    let built = registry
        .stage("pipeline.taxonomy")
        .time(|| build_taxonomy_observed(&extraction.sentences, &taxonomy_cfg, registry));
    let mut graph = built.graph;

    // 3. Plausibility (§4.1): annotate edges with the configured model.
    registry
        .stage("pipeline.plausibility")
        .time(|| match config.plausibility_kind {
            PlausibilityKind::NoisyOr => {
                let model = EvidenceModel::fit(&extraction.evidence, oracle);
                let table = if config.threads > 1 {
                    compute_plausibility_parallel_observed(
                        &extraction.evidence,
                        &extraction.knowledge,
                        &model,
                        &config.plausibility,
                        config.threads,
                        registry,
                    )
                } else {
                    compute_plausibility_observed(
                        &extraction.evidence,
                        &extraction.knowledge,
                        &model,
                        &config.plausibility,
                        registry,
                    )
                };
                annotate_graph(&mut graph, &table);
            }
            PlausibilityKind::Urns => {
                if extraction.knowledge.pair_count() > 0 {
                    let urns = UrnsModel::fit_knowledge(&extraction.knowledge, 200);
                    annotate_graph_urns(&mut graph, &urns);
                }
            }
        });

    // 4. Typicality + query model.
    let (graph_stats, model) = registry.stage("pipeline.model").time(|| {
        let graph_stats = GraphStats::compute(&graph);
        let model = ProbaseModel::new(graph);
        (graph_stats, model)
    });
    Probase {
        model,
        extraction,
        build_stats: built.stats,
        graph_stats,
    }
}

/// Build the WordNet-style seed oracle from a world: the curated concepts
/// and their curated instances form the seed vocabulary, their true
/// memberships the positive pairs.
pub fn seed_from_world(world: &World) -> SeedSet {
    let mut seed = SeedSet::new();
    for c in world.concepts.iter().filter(|c| c.curated) {
        seed.add_term(&c.label);
        for m in c.instances.iter().take(12) {
            let inst = world.instance(m.instance);
            seed.add_positive(&c.label, &inst.surface);
            // The corpus renders common nouns in canonical singular after
            // extraction; surfaces are already canonical in the world.
        }
        for &ch in &c.children {
            seed.add_positive(&c.label, &world.concept(ch).label);
        }
    }
    seed
}

/// A complete simulated deployment: world, corpus, and the Probase built
/// from it. This is what the examples and the benchmark harness drive.
#[derive(Debug)]
pub struct Simulation {
    pub world: World,
    pub corpus: Vec<SentenceRecord>,
    pub probase: Probase,
}

impl Simulation {
    /// Generate a world and corpus, then build Probase over them.
    pub fn run(world_cfg: &WorldConfig, corpus_cfg: &CorpusConfig, config: &ProbaseConfig) -> Self {
        Self::run_observed(world_cfg, corpus_cfg, config, probase_obs::global())
    }

    /// [`Simulation::run`] with an explicit metric registry, so harnesses
    /// (e.g. the `exp_scaling` per-size profiles) can isolate one run's
    /// stage report from another's.
    pub fn run_observed(
        world_cfg: &WorldConfig,
        corpus_cfg: &CorpusConfig,
        config: &ProbaseConfig,
        registry: &Registry,
    ) -> Self {
        let world = generate(world_cfg);
        let corpus = registry
            .stage("pipeline.corpus")
            .time(|| CorpusGenerator::new(&world, corpus_cfg.clone()).generate_all());
        let seed = seed_from_world(&world);
        let probase = build_probase_observed(&corpus, &world.lexicon, config, &seed, registry);
        Self {
            world,
            corpus,
            probase,
        }
    }

    /// A small, fast simulation for tests and the quickstart example.
    pub fn small(seed: u64) -> Self {
        Self::run(
            &WorldConfig::small(seed),
            &CorpusConfig {
                seed,
                sentences: 4_000,
                ..CorpusConfig::default()
            },
            &ProbaseConfig::paper(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulation {
        Simulation::small(41)
    }

    #[test]
    fn pipeline_produces_nonempty_model() {
        let s = sim();
        assert!(s.probase.extraction.knowledge.pair_count() > 100);
        assert!(s.probase.graph_stats.concepts > 20);
        assert!(s.probase.graph_stats.instances > 50);
        assert!(s.probase.graph_stats.max_level >= 1);
    }

    #[test]
    fn model_answers_paper_queries() {
        let s = sim();
        let m = &s.probase.model;
        // Instantiation over a curated concept.
        let instances = m.typical_instances("country", 5);
        assert!(!instances.is_empty(), "country should have instances");
        // Abstraction over a famous instance.
        let concepts = m.typical_concepts("China", 8);
        assert!(
            concepts
                .iter()
                .any(|(c, _)| c.contains("country") || c == "emerging market"),
            "{concepts:?}"
        );
    }

    #[test]
    fn plausibility_annotated_on_edges() {
        let s = sim();
        let g = s.probase.model.graph();
        let annotated = g.edges().filter(|(_, _, e)| e.plausibility < 1.0).count();
        assert!(
            annotated > 0,
            "some edges must carry non-default plausibility"
        );
        for (_, _, e) in g.edges() {
            assert!((0.0..=1.0).contains(&e.plausibility));
        }
    }

    #[test]
    fn seed_oracle_labels_curated_pairs() {
        let s = sim();
        let seed = seed_from_world(&s.world);
        assert!(seed.positive_count() > 100);
        use probase_prob::SeedOracle as _;
        assert_eq!(seed.label("country", "China"), Some(true));
        assert_eq!(seed.label("country", "nonexistent"), None);
    }

    #[test]
    fn iterations_progress_like_figure_10() {
        let s = sim();
        let iters = &s.probase.extraction.iterations;
        assert!(iters.len() >= 2, "{iters:?}");
        // Monotone accumulation of distinct pairs.
        for w in iters.windows(2) {
            assert!(w[1].distinct_pairs >= w[0].distinct_pairs);
        }
    }

    #[test]
    fn observed_run_reports_every_pipeline_stage() {
        let registry = probase_obs::Registry::new();
        let _ = Simulation::run_observed(
            &WorldConfig::small(41),
            &CorpusConfig {
                seed: 41,
                sentences: 2_000,
                ..CorpusConfig::default()
            },
            &ProbaseConfig::paper(),
            &registry,
        );
        let snap = registry.snapshot();
        let stages = snap.get("stages").expect("stages section");
        for name in [
            "pipeline.corpus",
            "pipeline.extract",
            "pipeline.taxonomy",
            "pipeline.plausibility",
            "pipeline.model",
            "extract.iteration",
            "taxonomy.local_build",
            "taxonomy.horizontal_merge",
            "taxonomy.vertical_merge",
        ] {
            let stage = stages.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(
                stage.get("calls").and_then(probase_obs::Json::as_u64) >= Some(1),
                "{name} never recorded a span"
            );
        }
        let counters = snap.get("counters").expect("counters section");
        assert_eq!(
            counters
                .get("extract.sentences_parsed")
                .and_then(probase_obs::Json::as_u64),
            Some(2_000)
        );
        assert!(
            counters
                .get("extract.pairs_committed")
                .and_then(probase_obs::Json::as_u64)
                > Some(0)
        );
    }

    #[test]
    fn parallel_threads_do_not_change_the_model() {
        let cfg = |threads| ProbaseConfig {
            threads,
            ..ProbaseConfig::paper()
        };
        let world = WorldConfig::small(47);
        let corpus_cfg = CorpusConfig {
            seed: 47,
            sentences: 3_000,
            ..CorpusConfig::default()
        };
        let serial =
            Simulation::run_observed(&world, &corpus_cfg, &cfg(1), &probase_obs::Registry::new());
        let serial_bytes = serial
            .probase
            .model
            .graph()
            .to_packed_bytes()
            .expect("encode");
        for threads in [2, 4] {
            let par = Simulation::run_observed(
                &world,
                &corpus_cfg,
                &cfg(threads),
                &probase_obs::Registry::new(),
            );
            assert_eq!(
                serial.probase.build_stats, par.probase.build_stats,
                "build stats differ at {threads} threads"
            );
            assert_eq!(
                serial_bytes,
                par.probase.model.graph().to_packed_bytes().expect("encode"),
                "graph bytes differ at {threads} threads"
            );
        }
    }

    #[test]
    fn deterministic_end_to_end() {
        let a = Simulation::small(43);
        let b = Simulation::small(43);
        assert_eq!(
            a.probase.extraction.knowledge.pair_count(),
            b.probase.extraction.knowledge.pair_count()
        );
        assert_eq!(a.probase.graph_stats, b.probase.graph_stats);
    }
}
