//! # probase-core
//!
//! The primary public API of the Probase reproduction (SIGMOD 2012):
//! one call from a sentence corpus to a queryable probabilistic taxonomy.
//!
//! ```no_run
//! use probase_core::{ProbaseConfig, Simulation};
//! use probase_corpus::{CorpusConfig, WorldConfig};
//!
//! // Simulate a web crawl and build Probase over it.
//! let sim = Simulation::run(
//!     &WorldConfig::default(),
//!     &CorpusConfig::default(),
//!     &ProbaseConfig::paper(),
//! );
//! // Instantiation: concept → typical instances.
//! for (inst, t) in sim.probase.model.typical_instances("company", 5) {
//!     println!("{inst}: {t:.3}");
//! }
//! // Abstraction: instances → typical concepts.
//! let concepts = sim.probase.model.conceptualize(&["China", "India", "Brazil"], 3);
//! println!("{concepts:?}");
//! ```
//!
//! The stages are re-exported from their home crates: `probase-extract`
//! (iterative extraction, §2), `probase-taxonomy` (construction, §3),
//! `probase-prob` (plausibility & typicality, §4), `probase-store` (the
//! graph store), `probase-corpus` (the synthetic web), `probase-text`
//! (shallow NLP).

pub mod pipeline;

pub use pipeline::{
    build_probase, build_probase_observed, seed_from_world, PlausibilityKind, Probase,
    ProbaseConfig, Simulation,
};

pub use probase_obs as obs;

// Re-export the component crates under stable names.
pub use probase_corpus as corpus;
pub use probase_extract as extract;
pub use probase_prob as prob;
pub use probase_store as store;
pub use probase_taxonomy as taxonomy;
pub use probase_text as text;
