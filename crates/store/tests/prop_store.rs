//! Property tests for the graph store: snapshot round-trips, interner
//! consistency, and level-map correctness on random DAGs.

use probase_store::query::{ancestors, descendants, LevelMap};
use probase_store::{snapshot, ConceptGraph, GraphStats, NodeId};
use proptest::prelude::*;

/// A random DAG: edges only go from lower to higher node index, so
/// acyclicity holds by construction.
fn dag() -> impl Strategy<Value = ConceptGraph> {
    (
        2usize..30,
        proptest::collection::vec((any::<u16>(), any::<u16>(), 1u32..5), 0..80),
    )
        .prop_map(|(n, raw_edges)| {
            let mut g = ConceptGraph::new();
            let nodes: Vec<NodeId> = (0..n)
                .map(|i| g.ensure_node(&format!("n{i}"), (i % 3) as u32))
                .collect();
            for (a, b, w) in raw_edges {
                let i = a as usize % n;
                let j = b as usize % n;
                if i < j {
                    g.add_evidence(nodes[i], nodes[j], w);
                }
            }
            g
        })
}

proptest! {
    /// Snapshot round-trip preserves nodes, edges, counts, plausibility.
    #[test]
    fn snapshot_roundtrip(g in dag()) {
        let bytes = snapshot::to_bytes(&g).expect("encode");
        let h = snapshot::from_bytes(bytes).expect("roundtrip decodes");
        prop_assert_eq!(h.node_count(), g.node_count());
        prop_assert_eq!(h.edge_count(), g.edge_count());
        for (from, to, data) in g.edges() {
            let hf = h.find_node(g.label(from), g.sense(from)).expect("node survives");
            let ht = h.find_node(g.label(to), g.sense(to)).expect("node survives");
            let hd = h.edge(hf, ht).expect("edge survives");
            prop_assert_eq!(hd.count, data.count);
            prop_assert!((hd.plausibility - data.plausibility).abs() < 1e-12);
        }
    }

    /// Levels satisfy the defining recurrence: leaf = 0, otherwise
    /// 1 + max(children).
    #[test]
    fn levels_satisfy_recurrence(g in dag()) {
        let levels = LevelMap::compute(&g);
        for node in g.nodes() {
            let expect = g
                .children(node)
                .map(|(c, _)| levels.level(c) + 1)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(levels.level(node), expect);
        }
    }

    /// Descendants and ancestors are mutually consistent.
    #[test]
    fn reachability_symmetry(g in dag()) {
        for node in g.nodes() {
            for d in descendants(&g, node) {
                prop_assert!(ancestors(&g, d).contains(&node));
            }
        }
    }

    /// Graph stats invariants: counts partition the edge set; instances
    /// plus concepts cover the node set.
    #[test]
    fn stats_partition(g in dag()) {
        let s = GraphStats::compute(&g);
        prop_assert_eq!(s.concept_subconcept_pairs + s.concept_instance_pairs, g.edge_count());
        prop_assert_eq!(s.concepts + s.instances, g.node_count());
        prop_assert_eq!(u32::from(s.max_level > 0), u32::from(g.edge_count() > 0));
    }

    /// Evidence accumulation is additive.
    #[test]
    fn evidence_additive(increments in proptest::collection::vec(1u32..10, 1..20)) {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("a", 0);
        let b = g.ensure_node("b", 0);
        let mut total = 0;
        for inc in &increments {
            total += inc;
            prop_assert_eq!(g.add_evidence(a, b, *inc), total);
        }
        prop_assert_eq!(g.edge_count(), 1);
    }

    /// Arbitrary garbage never panics the snapshot decoder: every
    /// failure mode surfaces as a structured [`snapshot::SnapshotError`].
    #[test]
    fn decoder_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = snapshot::from_bytes(bytes.as_slice());
    }

    /// Every strict prefix of a valid snapshot is rejected: the format
    /// is length-guarded end to end, so a truncated file can never be
    /// mistaken for a smaller valid graph.
    #[test]
    fn truncated_snapshots_are_rejected(g in dag(), cut in any::<proptest::sample::Index>()) {
        let bytes = snapshot::to_bytes(&g).expect("encode");
        let cut = cut.index(bytes.len());
        prop_assert!(snapshot::from_bytes(&bytes[..cut]).is_err());
    }

    /// Flipping one byte of a valid snapshot never panics the decoder,
    /// and anything that still decodes re-encodes cleanly (the decoder
    /// only admits graphs the encoder can represent).
    #[test]
    fn corrupted_snapshots_never_panic(
        g in dag(),
        pos in any::<proptest::sample::Index>(),
        xor in 1u8..,
    ) {
        let bytes = snapshot::to_bytes(&g).expect("encode");
        let mut corrupt = bytes.to_vec();
        let i = pos.index(corrupt.len());
        corrupt[i] ^= xor;
        if let Ok(h) = snapshot::from_bytes(corrupt.as_slice()) {
            snapshot::to_bytes(&h).expect("decoded graph re-encodes");
        }
    }
}
