//! Property tests for the zero-copy packed snapshot format: packed and
//! pointer representations answer every [`GraphView`] query identically
//! on random DAGs, the encoding is byte-deterministic and survives a
//! thaw/re-pack cycle bit-for-bit, and the validator rejects truncation
//! and corruption without ever panicking.

use probase_store::query::{ancestors, descendants, LevelMap};
use probase_store::{pack, ConceptGraph, GraphHandle, GraphStats, NodeId, PackedGraph};
use proptest::prelude::*;

/// A random DAG with multi-sense labels and non-trivial plausibilities;
/// edges only go from lower to higher node index, so acyclicity holds by
/// construction.
fn dag() -> impl Strategy<Value = ConceptGraph> {
    (
        2usize..30,
        proptest::collection::vec((any::<u16>(), any::<u16>(), 1u32..9, 0.0f64..1.0), 0..80),
    )
        .prop_map(|(n, raw_edges)| {
            let mut g = ConceptGraph::new();
            let nodes: Vec<NodeId> = (0..n)
                .map(|i| g.ensure_node(&format!("n{i}"), (i % 3) as u32))
                .collect();
            for (a, b, w, p) in raw_edges {
                let i = a as usize % n;
                let j = b as usize % n;
                if i < j {
                    g.add_evidence(nodes[i], nodes[j], w);
                    g.set_plausibility(nodes[i], nodes[j], p);
                }
            }
            g.rebuild_indexes();
            g
        })
}

fn packed(g: &ConceptGraph) -> PackedGraph {
    PackedGraph::from_bytes(pack(g).expect("encode")).expect("validate")
}

proptest! {
    /// The packed representation answers every read query exactly like
    /// the pointer graph it was packed from — same ids, same adjacency
    /// order, and bit-identical floats.
    #[test]
    fn packed_view_is_equivalent(g in dag()) {
        let p = packed(&g);
        prop_assert_eq!(p.node_count(), g.node_count());
        prop_assert_eq!(p.edge_count(), g.edge_count());
        for n in g.nodes() {
            prop_assert_eq!(p.label(n), g.label(n));
            prop_assert_eq!(p.sense(n), g.sense(n));
            prop_assert_eq!(p.is_instance(n), g.is_instance(n));
            prop_assert_eq!(p.find_node(g.label(n), g.sense(n)), Some(n));
            prop_assert_eq!(p.senses_of(g.label(n)), g.senses_of(g.label(n)));
            let gk: Vec<(NodeId, u32, u64)> = g
                .children(n)
                .map(|(c, d)| (c, d.count, d.plausibility.to_bits()))
                .collect();
            let pk: Vec<(NodeId, u32, u64)> = p
                .children(n)
                .map(|(c, d)| (c, d.count, d.plausibility.to_bits()))
                .collect();
            prop_assert_eq!(gk, pk, "children order/payload must match");
            let gp: Vec<NodeId> = g.parents(n).map(|(q, _)| q).collect();
            let pp: Vec<NodeId> = p.parents(n).map(|(q, _)| q).collect();
            prop_assert_eq!(gp, pp, "parent order must match");
        }
        for (from, to, d) in g.edges() {
            let pd = p.edge(from, to).expect("edge present");
            prop_assert_eq!(pd.count, d.count);
            prop_assert_eq!(pd.plausibility.to_bits(), d.plausibility.to_bits());
        }
    }

    /// Derived structures (levels, stats, reachability) computed over
    /// the packed view agree with the pointer graph.
    #[test]
    fn derived_queries_agree(g in dag()) {
        let p = packed(&g);
        let gl = LevelMap::compute(&g);
        let pl = LevelMap::compute(&p);
        for n in g.nodes() {
            prop_assert_eq!(gl.level(n), pl.level(n));
        }
        let gs = GraphStats::compute(&g);
        let ps = GraphStats::compute(&p);
        prop_assert_eq!(gs, ps);
        for n in g.nodes() {
            prop_assert_eq!(ancestors(&g, n), ancestors(&p, n));
            prop_assert_eq!(descendants(&g, n), descendants(&p, n));
        }
    }

    /// Packing is byte-deterministic: the same graph always encodes to
    /// the identical buffer (sharded serving and the differential test
    /// harness both compare checkpoints byte-for-byte).
    #[test]
    fn packing_is_deterministic(g in dag()) {
        prop_assert_eq!(pack(&g).expect("encode"), pack(&g).expect("encode"));
    }

    /// Thawing a packed graph and re-packing reproduces the exact same
    /// bytes: `edge_order` preserves global insertion order, so the
    /// cycle loses nothing.
    #[test]
    fn thaw_repack_roundtrip_is_byte_identical(g in dag()) {
        let bytes = pack(&g).expect("encode");
        let thawed = PackedGraph::from_bytes(bytes.clone()).expect("validate").unpack();
        prop_assert_eq!(pack(&thawed).expect("re-encode"), bytes);
        // And the handle-level shortcut returns the buffer verbatim.
        let handle = GraphHandle::Packed(PackedGraph::from_bytes(bytes.clone()).expect("validate"));
        prop_assert_eq!(handle.to_packed_bytes().expect("verbatim"), bytes);
    }

    /// Every strict prefix of a valid packed snapshot is rejected — the
    /// header records the exact buffer length, so truncation can never
    /// validate.
    #[test]
    fn truncated_packed_is_rejected(g in dag(), cut in any::<proptest::sample::Index>()) {
        let bytes = pack(&g).expect("encode");
        let cut = cut.index(bytes.len());
        prop_assert!(PackedGraph::from_bytes(bytes.slice(..cut)).is_err());
    }

    /// Single-bit corruption anywhere in the buffer is caught by the
    /// checksum/validators and never panics.
    #[test]
    fn bit_flips_never_panic(g in dag(), pos in any::<proptest::sample::Index>(), bit in 0u8..8) {
        let bytes = pack(&g).expect("encode");
        let mut corrupt = bytes.to_vec();
        let pos = pos.index(corrupt.len());
        corrupt[pos] ^= 1 << bit;
        if corrupt != bytes.as_ref() {
            prop_assert!(
                PackedGraph::from_bytes(bytes::Bytes::from(corrupt)).is_err(),
                "flipped bit {bit} at byte {pos} must be rejected"
            );
        }
    }

    /// Arbitrary garbage never panics the packed validator.
    #[test]
    fn validator_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = PackedGraph::from_bytes(bytes::Bytes::from(bytes));
    }
}
