//! Snapshot hot-swap: the serving-side maintenance path (paper §5.3's
//! "taxonomy refresh" shape). A new taxonomy build is serialized with
//! `snapshot::to_bytes`, shipped, decoded, and swapped into a live
//! [`SharedStore`] under the write lock — readers either see the old
//! graph or the new one, never a mix, and the version counter tells
//! caches which.

use probase_store::{query, snapshot, ConceptGraph, SharedStore};

fn old_world() -> ConceptGraph {
    let mut g = ConceptGraph::new();
    let country = g.ensure_node("country", 0);
    let china = g.ensure_node("China", 0);
    let india = g.ensure_node("India", 0);
    g.add_evidence(country, china, 8);
    g.add_evidence(country, india, 3);
    g.rebuild_indexes();
    g
}

fn new_world() -> ConceptGraph {
    let mut g = ConceptGraph::new();
    let company = g.ensure_node("company", 0);
    let msft = g.ensure_node("Microsoft", 0);
    let apple = g.ensure_node("Apple", 0);
    let fruit = g.ensure_node("fruit", 0);
    let apple_fruit = g.ensure_node("Apple", 1);
    g.add_evidence(company, msft, 10);
    g.add_evidence(company, apple, 7);
    g.add_evidence(fruit, apple_fruit, 4);
    g.rebuild_indexes();
    g
}

#[test]
fn snapshot_round_trip_preserves_structure() {
    let original = new_world();
    let bytes = snapshot::to_bytes(&original).expect("encode");
    let mut decoded = snapshot::from_bytes(&bytes[..]).expect("snapshot decodes");
    decoded.rebuild_indexes();

    assert_eq!(decoded.node_count(), original.node_count());
    assert_eq!(decoded.edge_count(), original.edge_count());
    let company = decoded.find_node("company", 0).expect("company survives");
    let msft = decoded
        .find_node("Microsoft", 0)
        .expect("Microsoft survives");
    let edge = decoded.edge(company, msft).expect("edge survives");
    assert_eq!(edge.count, 10);
    // Both senses of "Apple" must come back, in ascending sense order.
    assert_eq!(decoded.senses_of("Apple").len(), 2);
}

#[test]
fn hot_swap_through_shared_store_bumps_version_and_serves_new_graph() {
    let store = SharedStore::new(old_world());
    let v0 = store.version();
    assert!(store.read(|g| g.find_node("country", 0).is_some()));
    assert!(store.read(|g| g.find_node("company", 0).is_none()));

    // Ship the new build through the snapshot wire format, exactly as a
    // `snapshot-load` request does.
    let bytes = snapshot::to_bytes(&new_world()).expect("encode");
    let mut incoming = snapshot::from_bytes(&bytes[..]).expect("snapshot decodes");
    incoming.rebuild_indexes();
    let (nodes, v1) = store.update_versioned(move |g| {
        *g = incoming;
        g.node_count()
    });

    assert_eq!(v1, v0 + 1, "a swap is one write: exactly one version bump");
    assert_eq!(store.version(), v1);
    assert_eq!(nodes, 5);

    // Queries now resolve against the new graph only.
    let ((old_gone, company), v_read) = store.read_versioned(|g| {
        (
            g.find_node("country", 0),
            g.find_node("company", 0).expect("new concept queryable"),
        )
    });
    assert!(old_gone.is_none(), "old taxonomy fully replaced");
    assert_eq!(v_read, v1);

    // The rebuilt indexes work through the store: reachability queries
    // see the new edges.
    store.read(|g| {
        let msft = g.find_node("Microsoft", 0).expect("new instance queryable");
        assert!(query::ancestors(g, msft).contains(&company));
        assert_eq!(g.children(company).count(), 2);
    });
}

#[test]
fn swap_is_atomic_under_concurrent_readers() {
    let store = SharedStore::new(old_world());
    let bytes = snapshot::to_bytes(&new_world()).expect("encode");

    crossbeam::thread::scope(|scope| {
        for _ in 0..4 {
            let store = store.clone();
            scope.spawn(move |_| {
                for _ in 0..500 {
                    // Readers must see exactly one world, never a blend.
                    let (consistent, _v) = store.read_versioned(|g| {
                        let old = g.find_node("country", 0).is_some();
                        let new = g.find_node("company", 0).is_some();
                        old != new
                    });
                    assert!(consistent, "reader observed a half-swapped graph");
                }
            });
        }
        let store = store.clone();
        let bytes = bytes.clone();
        scope.spawn(move |_| {
            let mut incoming = snapshot::from_bytes(&bytes[..]).expect("snapshot decodes");
            incoming.rebuild_indexes();
            store.update(move |g| *g = incoming);
        });
    })
    .expect("threads join");

    assert_eq!(store.version(), 1);
    assert!(store.read(|g| g.find_node("company", 0).is_some()));
}
