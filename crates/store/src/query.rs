//! Graph queries: levels, statistics, reachability.
//!
//! * **Levels** (paper §5.2): "The level of a concept is defined to be the
//!   length of the longest path from it to a leaf node (i.e. an instance)."
//!   Instances have level 0; the paper's Table 4 reports average and
//!   maximum level over concepts.
//! * **Statistics** ([`GraphStats`]) reproduce the columns of Table 4.
//! * **Parent level sets** implement the traversal order Algorithm 3 needs:
//!   `L1` = concepts with no parents, `Lk` = concepts whose parents all lie
//!   in earlier levels.

use crate::graph::NodeId;
use crate::view::GraphView;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Longest-path-to-leaf level for every node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelMap {
    levels: Vec<u32>,
}

impl LevelMap {
    /// Compute levels over `graph`. The graph must be acyclic (the
    /// taxonomy layer guarantees that); a cycle makes this panic rather
    /// than loop.
    pub fn compute<G: GraphView>(graph: &G) -> Self {
        let n = graph.node_count();
        let mut levels = vec![u32::MAX; n];
        // Kahn-style: process nodes whose children are all resolved,
        // starting from leaves.
        let mut pending_children: Vec<usize> = (0..n)
            .map(|i| graph.child_count(NodeId(i as u32)))
            .collect();
        let mut queue: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|&id| pending_children[id.index()] == 0)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let node = queue[head];
            head += 1;
            let level = graph
                .children(node)
                .map(|(c, _)| levels[c.index()] + 1)
                .max()
                .unwrap_or(0);
            levels[node.index()] = level;
            for (p, _) in graph.parents(node) {
                pending_children[p.index()] -= 1;
                if pending_children[p.index()] == 0 {
                    queue.push(p);
                }
            }
        }
        assert!(
            head == n,
            "level computation visited {head}/{n} nodes — graph has a cycle"
        );
        Self { levels }
    }

    /// Level of one node (longest path to a leaf).
    pub fn level(&self, n: NodeId) -> u32 {
        self.levels[n.index()]
    }

    /// Largest level in the graph.
    pub fn max_level(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }
}

/// The concept-subconcept relationship statistics of paper Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Distinct concept-subconcept edges (edges between two non-leaf nodes).
    pub concept_subconcept_pairs: usize,
    /// Distinct concept-instance edges (edges into leaf nodes).
    pub concept_instance_pairs: usize,
    /// Average out-degree over concept nodes.
    pub avg_children: f64,
    /// Average in-degree over nodes that have at least one parent.
    pub avg_parents: f64,
    /// Average level over concept nodes.
    pub avg_level: f64,
    /// Maximum level.
    pub max_level: u32,
    /// Total concepts (non-leaf nodes).
    pub concepts: usize,
    /// Total instances (leaf nodes).
    pub instances: usize,
}

impl GraphStats {
    /// Compute the Table 4 statistics for `graph`.
    pub fn compute<G: GraphView>(graph: &G) -> Self {
        let levels = LevelMap::compute(graph);
        let mut concept_subconcept = 0usize;
        let mut concept_instance = 0usize;
        for (_, to, _) in graph.edges() {
            if graph.is_instance(to) {
                concept_instance += 1;
            } else {
                concept_subconcept += 1;
            }
        }
        let concepts: Vec<NodeId> = graph.concepts().collect();
        let instances = graph.node_count() - concepts.len();
        let avg_children = if concepts.is_empty() {
            0.0
        } else {
            concepts
                .iter()
                .map(|&c| graph.child_count(c) as f64)
                .sum::<f64>()
                / concepts.len() as f64
        };
        let with_parents: Vec<NodeId> = graph
            .nodes()
            .filter(|&n| graph.parent_count(n) > 0)
            .collect();
        let avg_parents = if with_parents.is_empty() {
            0.0
        } else {
            with_parents
                .iter()
                .map(|&n| graph.parent_count(n) as f64)
                .sum::<f64>()
                / with_parents.len() as f64
        };
        let avg_level = if concepts.is_empty() {
            0.0
        } else {
            concepts
                .iter()
                .map(|&c| levels.level(c) as f64)
                .sum::<f64>()
                / concepts.len() as f64
        };
        Self {
            concept_subconcept_pairs: concept_subconcept,
            concept_instance_pairs: concept_instance,
            avg_children,
            avg_parents,
            avg_level,
            max_level: levels.max_level(),
            concepts: concepts.len(),
            instances,
        }
    }
}

/// Group concepts into parent-complete level sets: `result\[0\]` holds nodes
/// with no parents, `result[k]` holds nodes whose parents all appear in
/// `result[..k]`. This is exactly the `L^k` sequence of paper Algorithm 3.
pub fn parent_level_sets<G: GraphView>(graph: &G) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut remaining: Vec<usize> = (0..n)
        .map(|i| graph.parent_count(NodeId(i as u32)))
        .collect();
    let mut assigned = vec![false; n];
    let mut levels: Vec<Vec<NodeId>> = Vec::new();
    let mut current: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|&id| remaining[id.index()] == 0)
        .collect();
    while !current.is_empty() {
        for &id in &current {
            assigned[id.index()] = true;
        }
        let mut next = Vec::new();
        for &id in &current {
            for (c, _) in graph.children(id) {
                remaining[c.index()] -= 1;
                if remaining[c.index()] == 0 {
                    next.push(c);
                }
            }
        }
        levels.push(std::mem::replace(&mut current, next));
    }
    debug_assert!(
        assigned.iter().all(|&a| a),
        "cycle detected in parent_level_sets"
    );
    levels
}

/// All nodes reachable from `start` by descending isA edges (excluding
/// `start` itself).
pub fn descendants<G: GraphView>(graph: &G, start: NodeId) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    let mut stack: Vec<NodeId> = graph.children(start).map(|(c, _)| c).collect();
    while let Some(n) = stack.pop() {
        if out.insert(n) {
            stack.extend(graph.children(n).map(|(c, _)| c));
        }
    }
    out
}

/// All nodes that can reach `start` by descending isA edges (its ancestor
/// concepts).
pub fn ancestors<G: GraphView>(graph: &G, start: NodeId) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    let mut stack: Vec<NodeId> = graph.parents(start).map(|(p, _)| p).collect();
    while let Some(n) = stack.pop() {
        if out.insert(n) {
            stack.extend(graph.parents(n).map(|(p, _)| p));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConceptGraph;

    /// animal → domestic animal → cat; animal → cat; animal → bird → robin
    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let animal = g.ensure_node("animal", 0);
        let dom = g.ensure_node("domestic animal", 0);
        let bird = g.ensure_node("bird", 0);
        let cat = g.ensure_node("cat", 0);
        let robin = g.ensure_node("robin", 0);
        g.add_evidence(animal, dom, 1);
        g.add_evidence(animal, bird, 1);
        g.add_evidence(animal, cat, 1);
        g.add_evidence(dom, cat, 1);
        g.add_evidence(bird, robin, 1);
        g
    }

    #[test]
    fn levels_are_longest_paths() {
        let g = sample();
        let l = LevelMap::compute(&g);
        assert_eq!(l.level(g.find_node("cat", 0).unwrap()), 0);
        assert_eq!(l.level(g.find_node("robin", 0).unwrap()), 0);
        assert_eq!(l.level(g.find_node("domestic animal", 0).unwrap()), 1);
        assert_eq!(l.level(g.find_node("bird", 0).unwrap()), 1);
        // animal: longest path animal → domestic animal → cat = 2
        assert_eq!(l.level(g.find_node("animal", 0).unwrap()), 2);
        assert_eq!(l.max_level(), 2);
    }

    #[test]
    fn stats_match_hand_count() {
        let g = sample();
        let s = GraphStats::compute(&g);
        assert_eq!(s.concepts, 3);
        assert_eq!(s.instances, 2);
        assert_eq!(s.concept_subconcept_pairs, 2); // animal→dom, animal→bird
        assert_eq!(s.concept_instance_pairs, 3); // animal→cat, dom→cat, bird→robin
        assert!((s.avg_children - (3.0 + 1.0 + 1.0) / 3.0).abs() < 1e-12);
        // nodes with parents: dom(1), bird(1), cat(2), robin(1) → avg 1.25
        assert!((s.avg_parents - 1.25).abs() < 1e-12);
        assert_eq!(s.max_level, 2);
    }

    #[test]
    fn parent_level_sets_partition_in_order() {
        let g = sample();
        let sets = parent_level_sets(&g);
        let total: usize = sets.iter().map(|s| s.len()).sum();
        assert_eq!(total, g.node_count());
        // level 0 is exactly the root
        assert_eq!(sets[0].len(), 1);
        assert_eq!(g.label(sets[0][0]), "animal");
        // every node's parents lie in strictly earlier sets
        let mut seen = HashSet::new();
        for set in &sets {
            for &n in set {
                for (p, _) in g.parents(n) {
                    assert!(
                        seen.contains(&p),
                        "parent of {} not yet emitted",
                        g.label(n)
                    );
                }
            }
            seen.extend(set.iter().copied());
        }
    }

    #[test]
    fn descendants_and_ancestors() {
        let g = sample();
        let animal = g.find_node("animal", 0).unwrap();
        let cat = g.find_node("cat", 0).unwrap();
        let d = descendants(&g, animal);
        assert_eq!(d.len(), 4);
        let a = ancestors(&g, cat);
        assert_eq!(a.len(), 2); // domestic animal, animal
        assert!(a.contains(&animal));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn level_map_panics_on_cycle() {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("a", 0);
        let b = g.ensure_node("b", 0);
        g.add_evidence(a, b, 1);
        g.add_evidence(b, a, 1);
        let _ = LevelMap::compute(&g);
    }

    #[test]
    fn empty_graph_stats() {
        let g = ConceptGraph::new();
        let s = GraphStats::compute(&g);
        assert_eq!(s.concepts, 0);
        assert_eq!(s.instances, 0);
        assert_eq!(s.max_level, 0);
    }
}
