//! Label-component surgery for online shard migration.
//!
//! The router's partitioner places whole weakly-connected components of
//! the *label* graph on one shard (all senses of a label travel
//! together — see `probase-router`'s `partition`). When a write bridges
//! two components that live on different shards, the smaller one has to
//! move over the wire. These are the store-level pieces of that
//! protocol:
//!
//! * [`component_labels`] — the label component containing a label,
//!   discovered by the same connectivity rule the partitioner uses
//!   (same-label senses are one unit; every edge connects its
//!   endpoints' labels).
//! * [`export_component`] — a standalone [`ConceptGraph`] holding
//!   exactly that component, with node and edge insertion order
//!   preserved *relative to the source graph* so per-label read answers
//!   (children/parents iterate in edge order) stay byte-identical after
//!   a move.
//! * [`merge_subgraph`] — graft an exported component into another
//!   graph, appending nodes and edges in the exported order.
//! * [`remove_labels`] — rebuild a graph without a set of labels (the
//!   drain side; `ConceptGraph` is append-only, so removal is a
//!   filtered rebuild).
//!
//! Invariant (property-tested in `probase-router`'s
//! `partition_prop.rs`): `merge_subgraph(remove_labels(g, C), export(g,
//! C))` over any component C reproduces `g` up to node renumbering —
//! the canonical-bytes union of the shards never changes under a
//! migration.

use crate::graph::{ConceptGraph, NodeId};
use crate::view::GraphView;
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Every label in the weakly-connected label component containing
/// `label`, sorted by label bytes. Empty when the label has no node.
///
/// Connectivity matches the partitioner: all senses of one label are a
/// single unit, and an edge connects its endpoints' labels.
pub fn component_labels<G: GraphView>(g: &G, label: &str) -> Vec<String> {
    if g.senses_of(label).is_empty() {
        return Vec::new();
    }
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    seen.insert(label.to_string());
    queue.push_back(label.to_string());
    while let Some(current) = queue.pop_front() {
        for node in g.senses_of(&current) {
            let neighbors = g
                .children(node)
                .map(|(c, _)| c)
                .chain(g.parents(node).map(|(p, _)| p));
            for other in neighbors {
                let other_label = g.label(other);
                if !seen.contains(other_label) {
                    seen.insert(other_label.to_string());
                    queue.push_back(other_label.to_string());
                }
            }
        }
    }
    seen.into_iter().collect()
}

/// Extract the labels in `labels` into a standalone graph, preserving
/// the source's node and edge insertion order among the extracted
/// items. Edges are copied with their exact counts and plausibility
/// bits. Edges with only one endpoint inside the set are *not* copied —
/// callers pass a closed component, where that case cannot arise.
pub fn export_component<G: GraphView>(g: &G, labels: &HashSet<String>) -> ConceptGraph {
    let mut sub = ConceptGraph::new();
    let mut map: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for n in g.nodes() {
        if labels.contains(g.label(n)) {
            map[n.index()] = Some(sub.ensure_node(g.label(n), g.sense(n)));
        }
    }
    for (from, to, data) in g.edges() {
        if let (Some(f), Some(t)) = (map[from.index()], map[to.index()]) {
            sub.add_evidence(f, t, data.count);
            sub.set_plausibility(f, t, data.plausibility);
        }
    }
    sub
}

/// Graft `sub` onto `dst`: nodes are ensured in `sub`'s node order,
/// edges re-added in `sub`'s edge order with exact counts and
/// plausibility bits. Labels already present in `dst` merge into their
/// existing nodes (evidence accumulates), so importing is tolerant of a
/// half-completed earlier import.
pub fn merge_subgraph<G: GraphView>(dst: &mut ConceptGraph, sub: &G) {
    let mut map: Vec<NodeId> = Vec::with_capacity(sub.node_count());
    for n in sub.nodes() {
        map.push(dst.ensure_node(sub.label(n), sub.sense(n)));
    }
    for (from, to, data) in sub.edges() {
        let f = map[from.index()];
        let t = map[to.index()];
        dst.add_evidence(f, t, data.count);
        dst.set_plausibility(f, t, data.plausibility);
    }
}

/// A copy of `g` without any node whose label is in `labels` (and
/// without their edges). Remaining nodes and edges keep their relative
/// order, so untouched components answer byte-identically afterwards.
pub fn remove_labels<G: GraphView>(g: &G, labels: &HashSet<String>) -> ConceptGraph {
    let mut out = ConceptGraph::new();
    let mut map: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for n in g.nodes() {
        if !labels.contains(g.label(n)) {
            map[n.index()] = Some(out.ensure_node(g.label(n), g.sense(n)));
        }
    }
    for (from, to, data) in g.edges() {
        if let (Some(f), Some(t)) = (map[from.index()], map[to.index()]) {
            out.add_evidence(f, t, data.count);
            out.set_plausibility(f, t, data.plausibility);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot;

    /// Two components (fruit/apple/pear and animal/cat) plus a
    /// multi-sense label ("bank") joined to the fruit component.
    fn fixture() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let fruit = g.ensure_node("fruit", 0);
        let apple = g.ensure_node("apple", 0);
        let pear = g.ensure_node("pear", 0);
        g.add_evidence(fruit, apple, 5);
        g.add_evidence(fruit, pear, 2);
        let animal = g.ensure_node("animal", 0);
        let cat = g.ensure_node("cat", 0);
        g.add_evidence(animal, cat, 7);
        let bank0 = g.ensure_node("bank", 0);
        let bank1 = g.ensure_node("bank", 1);
        g.add_evidence(fruit, bank0, 1);
        let vault = g.ensure_node("vault", 0);
        g.add_evidence(bank1, vault, 3);
        g.set_plausibility(fruit, apple, 0.75);
        g
    }

    fn canon(g: &ConceptGraph) -> Vec<(String, u32, String, u32, u32, u64)> {
        let mut v: Vec<_> = g
            .edges()
            .map(|(f, t, e)| {
                (
                    g.label(f).to_string(),
                    g.sense(f),
                    g.label(t).to_string(),
                    g.sense(t),
                    e.count,
                    e.plausibility.to_bits(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn component_spans_senses_and_edges() {
        let g = fixture();
        // "bank" sense 0 hangs off fruit; sense 1 drags vault in too.
        let c = component_labels(&g, "apple");
        assert_eq!(c, vec!["apple", "bank", "fruit", "pear", "vault"]);
        let c2 = component_labels(&g, "vault");
        assert_eq!(c, c2, "same component from any member");
        assert_eq!(component_labels(&g, "cat"), vec!["animal", "cat"]);
        assert!(component_labels(&g, "nope").is_empty());
    }

    #[test]
    fn export_then_remove_partitions_the_graph() {
        let g = fixture();
        let labels: HashSet<String> = component_labels(&g, "cat").into_iter().collect();
        let sub = export_component(&g, &labels);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        let rest = remove_labels(&g, &labels);
        assert_eq!(rest.node_count(), g.node_count() - 2);
        assert_eq!(rest.edge_count(), g.edge_count() - 1);

        // Re-merging reproduces the original graph up to renumbering.
        let mut rebuilt = rest.clone();
        merge_subgraph(&mut rebuilt, &sub);
        assert_eq!(canon(&rebuilt), canon(&g));
    }

    #[test]
    fn export_preserves_plausibility_bits_and_counts() {
        let g = fixture();
        let labels: HashSet<String> = component_labels(&g, "apple").into_iter().collect();
        let sub = export_component(&g, &labels);
        let f = sub.find_node("fruit", 0).unwrap();
        let a = sub.find_node("apple", 0).unwrap();
        let e = sub.edge(f, a).unwrap();
        assert_eq!(e.count, 5);
        assert_eq!(e.plausibility.to_bits(), 0.75f64.to_bits());
    }

    #[test]
    fn merge_accumulates_into_existing_nodes() {
        let mut dst = ConceptGraph::new();
        let fruit = dst.ensure_node("fruit", 0);
        let apple = dst.ensure_node("apple", 0);
        dst.add_evidence(fruit, apple, 2);
        let mut sub = ConceptGraph::new();
        let f = sub.ensure_node("fruit", 0);
        let a = sub.ensure_node("apple", 0);
        sub.add_evidence(f, a, 3);
        merge_subgraph(&mut dst, &sub);
        let e = dst.edge(fruit, apple).unwrap();
        assert_eq!(e.count, 5, "evidence accumulates on re-import");
    }

    #[test]
    fn untouched_component_keeps_adjacency_order() {
        let g = fixture();
        let gone: HashSet<String> = component_labels(&g, "cat").into_iter().collect();
        let rest = remove_labels(&g, &gone);
        let fruit = rest.find_node("fruit", 0).unwrap();
        let kids: Vec<&str> = rest.children(fruit).map(|(c, _)| rest.label(c)).collect();
        assert_eq!(kids, vec!["apple", "pear", "bank"], "edge order preserved");
    }

    #[test]
    fn roundtrips_through_snapshot_encoding() {
        let g = fixture();
        let labels: HashSet<String> = component_labels(&g, "apple").into_iter().collect();
        let sub = export_component(&g, &labels);
        let bytes = snapshot::to_bytes(&sub).unwrap();
        let mut back = snapshot::from_bytes(&bytes[..]).unwrap();
        back.rebuild_indexes();
        assert_eq!(canon(&back), canon(&sub));
    }
}
