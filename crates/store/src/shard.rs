//! Partitioned on-disk layout for sharded deployments.
//!
//! A sharded serve deployment keeps one durability directory per shard
//! under a common root:
//!
//! ```text
//! <root>/shard-0/   snapshot-*.pb, wal-*.log
//! <root>/shard-1/   ...
//! ```
//!
//! Each shard directory is an ordinary single-node durability directory
//! (DESIGN.md §13) — the shard's serve stack owns it exclusively, so WAL
//! append, recovery, and background rebuild all work unchanged. These
//! helpers only name and discover the directories; the router crate
//! decides what goes in them.

use std::io;
use std::path::{Path, PathBuf};

/// The durability directory for shard `i` under `root`.
pub fn shard_dir(root: &Path, i: usize) -> PathBuf {
    root.join(format!("shard-{i}"))
}

/// Discover an existing sharded layout under `root`: returns the shard
/// directories `shard-0 ..= shard-(n-1)` in order, or an empty vector if
/// `shard-0` does not exist (fresh root). Errors if the numbering has a
/// gap — a half-provisioned root is more likely an operator mistake than
/// an intent to run with fewer shards.
pub fn discover_shard_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::new();
    loop {
        let dir = shard_dir(root, dirs.len());
        if dir.is_dir() {
            dirs.push(dir);
        } else {
            break;
        }
    }
    if !dirs.is_empty() {
        // A gap past the contiguous prefix means shard-k exists without
        // shard-(k-1) having been counted; scan for strays.
        if let Ok(entries) = std::fs::read_dir(root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(idx) = name.strip_prefix("shard-") {
                    if let Ok(idx) = idx.parse::<usize>() {
                        if idx >= dirs.len() && entry.path().is_dir() {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "sharded root {}: found {} but shard-{} is missing",
                                    root.display(),
                                    name,
                                    dirs.len()
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(dirs)
}

/// Create the shard directories `shard-0 ..= shard-(n-1)` under `root`
/// (and `root` itself), returning them in order.
pub fn provision_shard_dirs(root: &Path, n: usize) -> io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::with_capacity(n);
    for i in 0..n {
        let dir = shard_dir(root, i);
        std::fs::create_dir_all(&dir)?;
        dirs.push(dir);
    }
    Ok(dirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("probase-shard-layout-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn provision_then_discover_round_trips() {
        let root = temp_root("roundtrip");
        let made = provision_shard_dirs(&root, 4).unwrap();
        assert_eq!(made.len(), 4);
        assert_eq!(discover_shard_dirs(&root).unwrap(), made);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fresh_root_discovers_empty() {
        let root = temp_root("fresh");
        assert!(discover_shard_dirs(&root).unwrap().is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn gap_in_numbering_is_an_error() {
        let root = temp_root("gap");
        std::fs::create_dir_all(shard_dir(&root, 0)).unwrap();
        std::fs::create_dir_all(shard_dir(&root, 2)).unwrap();
        assert!(discover_shard_dirs(&root).is_err());
        std::fs::remove_dir_all(&root).ok();
    }
}
