//! [`GraphHandle`]: the store's unit of hot-swap.
//!
//! A [`crate::shared::SharedStore`] serves either representation of the
//! taxonomy — the pointer-rich mutable [`ConceptGraph`] (write/fold
//! path) or the contiguous mmap-backed [`PackedGraph`] (read path after
//! recovery from a packed snapshot). `GraphHandle` wraps the two behind
//! the full read API so serve-path closures don't care which one is
//! installed, and thaws packed → mutable in place the moment a write
//! arrives.

use crate::graph::{ConceptGraph, EdgeData, NodeId};
use crate::packed::PackedGraph;
use crate::view::{Either, GraphView};

/// A taxonomy graph in either mutable or packed form.
///
/// Cloning a `Packed` handle is O(1) (the buffer is shared); cloning a
/// `Mutable` handle deep-copies, exactly like cloning the graph itself.
#[derive(Debug, Clone)]
pub enum GraphHandle {
    /// Pointer-rich, writable representation.
    Mutable(ConceptGraph),
    /// Immutable zero-copy representation.
    Packed(PackedGraph),
}

impl Default for GraphHandle {
    fn default() -> Self {
        GraphHandle::Mutable(ConceptGraph::new())
    }
}

impl From<ConceptGraph> for GraphHandle {
    fn from(g: ConceptGraph) -> Self {
        GraphHandle::Mutable(g)
    }
}

impl From<PackedGraph> for GraphHandle {
    fn from(p: PackedGraph) -> Self {
        GraphHandle::Packed(p)
    }
}

macro_rules! dispatch {
    ($self:expr, $g:ident => $body:expr) => {
        match $self {
            GraphHandle::Mutable($g) => $body,
            GraphHandle::Packed($g) => $body,
        }
    };
}

impl GraphHandle {
    /// True when the packed representation is installed.
    pub fn is_packed(&self) -> bool {
        matches!(self, GraphHandle::Packed(_))
    }

    /// The mutable graph, if that is the current representation.
    pub fn as_mutable(&self) -> Option<&ConceptGraph> {
        match self {
            GraphHandle::Mutable(g) => Some(g),
            GraphHandle::Packed(_) => None,
        }
    }

    /// The packed graph, if that is the current representation.
    pub fn as_packed(&self) -> Option<&PackedGraph> {
        match self {
            GraphHandle::Mutable(_) => None,
            GraphHandle::Packed(p) => Some(p),
        }
    }

    /// An owned mutable [`ConceptGraph`] equivalent to this handle —
    /// a clone for `Mutable`, a thaw ([`PackedGraph::unpack`]) for
    /// `Packed`. Either way the result is structurally identical to the
    /// graph the handle was built from.
    pub fn materialize(&self) -> ConceptGraph {
        match self {
            GraphHandle::Mutable(g) => g.clone(),
            GraphHandle::Packed(p) => p.unpack(),
        }
    }

    /// Thaw in place if packed and return the mutable graph. The write
    /// path calls this on first mutation; subsequent calls are free.
    /// Returns `(graph, thawed_now)`.
    pub fn make_mutable(&mut self) -> (&mut ConceptGraph, bool) {
        let thawed = if let GraphHandle::Packed(p) = self {
            *self = GraphHandle::Mutable(p.unpack());
            true
        } else {
            false
        };
        match self {
            GraphHandle::Mutable(g) => (g, thawed),
            GraphHandle::Packed(_) => unreachable!("just thawed"),
        }
    }

    /// Packed snapshot bytes for this handle: the packed buffer verbatim
    /// (no re-encode — byte-identical to the file it was opened from),
    /// or a fresh [`crate::packed::pack`] of the mutable graph.
    pub fn to_packed_bytes(&self) -> Result<bytes::Bytes, crate::snapshot::SnapshotError> {
        match self {
            GraphHandle::Mutable(g) => crate::packed::pack(g),
            GraphHandle::Packed(p) => Ok(p.to_bytes()),
        }
    }

    // ------------------------------------------------------------------
    // Read API, mirroring `ConceptGraph` so existing `store.read(|g| …)`
    // closures keep compiling against a handle.
    // ------------------------------------------------------------------

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        dispatch!(self, g => g.node_count())
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        dispatch!(self, g => g.edge_count())
    }

    /// Find the node for `(label, sense)` without creating it.
    pub fn find_node(&self, label: &str, sense: u32) -> Option<NodeId> {
        dispatch!(self, g => g.find_node(label, sense))
    }

    /// All senses of `label` present in the graph, ascending by sense.
    pub fn senses_of(&self, label: &str) -> Vec<NodeId> {
        dispatch!(self, g => g.senses_of(label))
    }

    /// Edge data for `from → to`.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Option<EdgeData> {
        match self {
            GraphHandle::Mutable(g) => g.edge(from, to).copied(),
            GraphHandle::Packed(p) => p.edge(from, to),
        }
    }

    /// Children of `n` with edge data, in adjacency insertion order.
    pub fn children(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        match self {
            GraphHandle::Mutable(g) => Either::Left(g.children(n).map(|(c, d)| (c, *d))),
            GraphHandle::Packed(p) => Either::Right(p.children(n)),
        }
    }

    /// Parents of `n` with edge data, in adjacency insertion order.
    pub fn parents(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        match self {
            GraphHandle::Mutable(g) => Either::Left(g.parents(n).map(|(p, d)| (p, *d))),
            GraphHandle::Packed(p) => Either::Right(p.parents(n)),
        }
    }

    /// Out-degree of `n`.
    pub fn child_count(&self, n: NodeId) -> usize {
        dispatch!(self, g => g.child_count(n))
    }

    /// In-degree of `n`.
    pub fn parent_count(&self, n: NodeId) -> usize {
        dispatch!(self, g => g.parent_count(n))
    }

    /// A node with no out-edges is an instance (leaf).
    pub fn is_instance(&self, n: NodeId) -> bool {
        dispatch!(self, g => g.is_instance(n))
    }

    /// Label string of a node.
    pub fn label(&self, n: NodeId) -> &str {
        dispatch!(self, g => g.label(n))
    }

    /// Sense number of a node.
    pub fn sense(&self, n: NodeId) -> u32 {
        dispatch!(self, g => g.sense(n))
    }

    /// Display form: `label` for sense 0, `label#k` otherwise.
    pub fn display(&self, n: NodeId) -> String {
        dispatch!(self, g => g.display(n))
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterate all edges `(from, to, data)`. Per-row order follows
    /// `children`; the interleaving of rows is representation-defined.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeData)> + '_ {
        match self {
            GraphHandle::Mutable(g) => {
                Either::Left(ConceptGraph::edges(g).map(|(f, t, d)| (f, t, *d)))
            }
            GraphHandle::Packed(p) => Either::Right(p.edges()),
        }
    }

    /// Concept nodes (non-leaves).
    pub fn concepts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&n| !self.is_instance(n))
    }

    /// Instance nodes (leaves).
    pub fn instances(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&n| self.is_instance(n))
    }
}

impl GraphView for GraphHandle {
    fn node_count(&self) -> usize {
        GraphHandle::node_count(self)
    }

    fn edge_count(&self) -> usize {
        GraphHandle::edge_count(self)
    }

    fn find_node(&self, label: &str, sense: u32) -> Option<NodeId> {
        GraphHandle::find_node(self, label, sense)
    }

    fn senses_of(&self, label: &str) -> Vec<NodeId> {
        GraphHandle::senses_of(self, label)
    }

    fn edge(&self, from: NodeId, to: NodeId) -> Option<EdgeData> {
        GraphHandle::edge(self, from, to)
    }

    fn children(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        GraphHandle::children(self, n)
    }

    fn parents(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        GraphHandle::parents(self, n)
    }

    fn child_count(&self, n: NodeId) -> usize {
        GraphHandle::child_count(self, n)
    }

    fn parent_count(&self, n: NodeId) -> usize {
        GraphHandle::parent_count(self, n)
    }

    fn is_instance(&self, n: NodeId) -> bool {
        GraphHandle::is_instance(self, n)
    }

    fn label(&self, n: NodeId) -> &str {
        GraphHandle::label(self, n)
    }

    fn sense(&self, n: NodeId) -> u32 {
        GraphHandle::sense(self, n)
    }

    fn display(&self, n: NodeId) -> String {
        GraphHandle::display(self, n)
    }

    fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeData)> + '_ {
        GraphHandle::edges(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::pack;

    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let animal = g.ensure_node("animal", 0);
        let dom = g.ensure_node("domestic animal", 0);
        let cat = g.ensure_node("cat", 0);
        g.add_evidence(animal, dom, 5);
        g.add_evidence(animal, cat, 10);
        g.add_evidence(dom, cat, 3);
        g.set_plausibility(animal, cat, 0.9);
        g
    }

    fn packed_handle() -> GraphHandle {
        GraphHandle::Packed(PackedGraph::from_bytes(pack(&sample()).unwrap()).unwrap())
    }

    #[test]
    fn both_representations_answer_identically() {
        let mutable = GraphHandle::from(sample());
        let packed = packed_handle();
        assert!(!mutable.is_packed());
        assert!(packed.is_packed());
        for h in [&mutable, &packed] {
            assert_eq!(h.node_count(), 3);
            assert_eq!(h.edge_count(), 3);
            let animal = h.find_node("animal", 0).unwrap();
            let cat = h.find_node("cat", 0).unwrap();
            assert_eq!(h.edge(animal, cat).unwrap().count, 10);
            let kids: Vec<NodeId> = h.children(animal).map(|(n, _)| n).collect();
            assert_eq!(kids.len(), 2);
            let parents: Vec<NodeId> = h.parents(cat).map(|(n, _)| n).collect();
            assert_eq!(parents.len(), 2);
            assert_eq!(h.concepts().count(), 2);
            assert_eq!(h.instances().count(), 1);
            assert_eq!(h.label(cat), "cat");
        }
    }

    #[test]
    fn make_mutable_thaws_once() {
        let mut h = packed_handle();
        let (g, thawed) = h.make_mutable();
        assert!(thawed);
        let animal = g.find_node("animal", 0).unwrap();
        let extra = g.ensure_node("extra", 0);
        g.add_evidence(animal, extra, 1);
        let (g2, thawed2) = h.make_mutable();
        assert!(!thawed2);
        assert_eq!(g2.node_count(), 4);
    }

    #[test]
    fn materialize_matches_source() {
        let g = sample();
        let packed = packed_handle();
        let thawed = packed.materialize();
        assert_eq!(
            crate::snapshot::to_bytes(&thawed).unwrap(),
            crate::snapshot::to_bytes(&g).unwrap()
        );
    }

    #[test]
    fn to_packed_bytes_is_stable_across_representations() {
        let bytes = pack(&sample()).unwrap();
        let mutable = GraphHandle::from(sample());
        let packed = GraphHandle::Packed(PackedGraph::from_bytes(bytes.clone()).unwrap());
        assert_eq!(mutable.to_packed_bytes().unwrap(), bytes);
        assert_eq!(packed.to_packed_bytes().unwrap(), bytes);
    }
}
