//! GraphViz DOT export of a concept graph (or a neighborhood of it).
//!
//! Useful for eyeballing sense separation — the two *plant* senses, the
//! modifier hierarchy under *country* — the way the paper's figures draw
//! local taxonomies.

use crate::graph::NodeId;
use crate::query::descendants;
use crate::view::GraphView;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Include edge counts and plausibilities as edge labels.
    pub edge_labels: bool,
    /// Cap on rendered nodes (breadth-first from the roots given).
    pub max_nodes: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            edge_labels: true,
            max_nodes: 200,
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the sub-DAG reachable from `roots` as DOT. With no roots, the
/// whole graph is rendered (subject to `max_nodes`).
pub fn to_dot<G: GraphView>(graph: &G, roots: &[NodeId], opts: &DotOptions) -> String {
    let mut include: HashSet<NodeId> = HashSet::new();
    if roots.is_empty() {
        include.extend(graph.nodes().take(opts.max_nodes));
    } else {
        for &r in roots {
            if include.len() >= opts.max_nodes {
                break;
            }
            include.insert(r);
            for d in descendants(graph, r) {
                if include.len() >= opts.max_nodes {
                    break;
                }
                include.insert(d);
            }
        }
    }

    let mut out =
        String::from("digraph probase {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n");
    let mut nodes: Vec<NodeId> = include.iter().copied().collect();
    nodes.sort();
    for n in &nodes {
        let shape = if graph.is_instance(*n) { "oval" } else { "box" };
        let style = if graph.is_instance(*n) {
            ""
        } else {
            ", style=filled, fillcolor=\"#eef3fb\""
        };
        writeln!(
            out,
            "  n{} [label=\"{}\", shape={shape}{style}];",
            n.0,
            escape(&graph.display(*n))
        )
        .expect("write to string");
    }
    for (from, to, data) in graph.edges() {
        if !include.contains(&from) || !include.contains(&to) {
            continue;
        }
        if opts.edge_labels {
            writeln!(
                out,
                "  n{} -> n{} [label=\"n={} p={:.2}\"];",
                from.0, to.0, data.count, data.plausibility
            )
            .expect("write to string");
        } else {
            writeln!(out, "  n{} -> n{};", from.0, to.0).expect("write to string");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConceptGraph;

    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let plant0 = g.ensure_node("plant", 0);
        let plant1 = g.ensure_node("plant", 1);
        let tree = g.ensure_node("tree", 0);
        let boiler = g.ensure_node("boiler", 0);
        g.add_evidence(plant0, tree, 3);
        g.add_evidence(plant1, boiler, 2);
        g
    }

    #[test]
    fn renders_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g, &[], &DotOptions::default());
        assert!(dot.starts_with("digraph probase {"));
        assert!(dot.contains("label=\"plant\""));
        assert!(dot.contains("label=\"plant#1\""));
        assert!(dot.contains("n=3 p=1.00"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn root_restriction_limits_scope() {
        let g = sample();
        let plant0 = g.find_node("plant", 0).unwrap();
        let dot = to_dot(&g, &[plant0], &DotOptions::default());
        assert!(dot.contains("tree"));
        assert!(!dot.contains("boiler"));
    }

    #[test]
    fn max_nodes_caps_output() {
        let mut g = ConceptGraph::new();
        let root = g.ensure_node("root", 0);
        for i in 0..50 {
            let c = g.ensure_node(&format!("leaf{i}"), 0);
            g.add_evidence(root, c, 1);
        }
        let dot = to_dot(
            &g,
            &[root],
            &DotOptions {
                max_nodes: 10,
                ..Default::default()
            },
        );
        let node_lines = dot.lines().filter(|l| l.contains("shape=")).count();
        assert!(node_lines <= 10, "{node_lines}");
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("say \"hi\"", 0);
        let b = g.ensure_node("x", 0);
        g.add_evidence(a, b, 1);
        let dot = to_dot(&g, &[], &DotOptions::default());
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
