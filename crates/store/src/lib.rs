//! # probase-store
//!
//! In-memory concept-graph store: the reproduction's stand-in for the
//! Trinity graph engine that hosts Probase in the paper (§5, [29, 30]).
//!
//! The store holds the taxonomy DAG produced by `probase-taxonomy` and
//! annotated by `probase-prob`: interned labels, sense-disambiguated
//! nodes, counted and weighted isA edges, plus the queries every
//! downstream application needs — instances-of, concepts-of, level
//! computation, degree statistics (paper Table 4), and snapshot
//! persistence.
//!
//! ## Layout
//!
//! * [`intern`] — string interning ([`intern::Symbol`], [`intern::Interner`]).
//! * [`hash`] — the FxHash-style fast hasher used by every hot map.
//! * [`graph`] — the [`graph::ConceptGraph`] itself.
//! * [`query`] — levels, statistics, reachability (generic over [`view::GraphView`]).
//! * [`snapshot`] — legacy (v1) length-prefixed binary snapshots.
//! * [`packed`] — zero-copy packed (v2) snapshots: the mmap-able CSR
//!   [`packed::PackedGraph`] whose in-memory layout is the on-disk format.
//! * [`view`] — the [`view::GraphView`] read abstraction both graph
//!   representations implement.
//! * [`handle`] — [`handle::GraphHandle`], the mutable-or-packed unit of
//!   hot swap.
//! * [`dot`] — GraphViz export for eyeballing sense separation.
//! * [`shared`] — concurrent serving wrapper (many readers, one writer).
//! * [`wal`] — checksummed write-ahead log for durable serve-path writes.
//! * [`shard`] — partitioned `shard-N/` durability layout for sharded serving.
//! * [`component`] — label-component export/import/removal for online
//!   shard migration.

#![warn(missing_docs)]

pub mod component;
pub mod dot;
pub mod graph;
pub mod handle;
pub mod hash;
pub mod intern;
pub mod packed;
pub mod query;
pub mod shard;
pub mod shared;
pub mod snapshot;
pub mod view;
pub mod wal;

pub use component::{component_labels, export_component, merge_subgraph, remove_labels};
pub use dot::{to_dot, DotOptions};
pub use graph::{ConceptGraph, EdgeData, NodeId};
pub use handle::GraphHandle;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::{Interner, Symbol};
pub use packed::{pack, PackedGraph, PackedOpenError};
pub use query::{GraphStats, LevelMap};
pub use shard::{discover_shard_dirs, provision_shard_dirs, shard_dir};
pub use shared::SharedStore;
pub use snapshot::{sniff_format, SnapshotFormat};
pub use view::GraphView;
pub use wal::{WalEntry, WalOp, WalSync};
