//! Zero-copy packed snapshots: the mmap-able CSR graph format.
//!
//! A [`PackedGraph`] is an immutable taxonomy whose in-memory layout *is*
//! the on-disk snapshot: one contiguous buffer holding a validated
//! header, a packed string arena, the node table, CSR adjacency for both
//! directions, fixed-width edge payloads, and sorted indexes for name and
//! edge lookup. Opening a snapshot is `open + mmap + validate` — no
//! per-edge decode, no per-string allocation — and sibling shard
//! processes mapping the same file share page cache.
//!
//! Format v2 (all integers little-endian, sections 8-byte aligned):
//!
//! ```text
//! header (64 B):
//!   0  magic      u32 = 0x50425350 ("PSBP" on disk; first byte differs
//!                       from the legacy v1 magic so format sniffing is
//!                       a one-byte read)
//!   4  version    u32 = 2
//!   8  n_strings  u32
//!   12 n_nodes    u32
//!   16 n_edges    u32
//!   20 arena_len  u32
//!   24 total_len  u64   (must equal the length derived from the counts)
//!   32 crc32      u32   (over bytes[36..total_len])
//!   36 zeros to 64
//! sections, in order:
//!   arena        arena_len bytes, all interned strings concatenated in
//!                symbol order
//!   str_off      (n_strings+1) × u32, arena byte offsets (monotone)
//!   node_tab     n_nodes × {label_sym u32, sense u32}
//!   out_off      (n_nodes+1) × u32, CSR row offsets into out_edges
//!   out_edges    n_edges × {to u32, count u32, plausibility f64},
//!                row-major, each row in adjacency *insertion* order
//!   in_off       (n_nodes+1) × u32, CSR row offsets into in_refs
//!   in_refs      n_edges × {from u32, edge_idx u32}, each row in
//!                adjacency insertion order; edge_idx points into
//!                out_edges so payloads are stored once
//!   name_idx     n_nodes × u32 node ids sorted by (label bytes, sense) —
//!                binary-searchable name lookup and prefix scans
//!   edge_sorted  n_edges × u32; positions out_off[f]..out_off[f+1] hold
//!                row f's edge indices sorted by `to` — binary-searchable
//!                edge(from, to) lookup
//!   edge_order   n_edges × u32 edge indices in the original graph's
//!                global insertion order, so thawing reconstructs the
//!                mutable graph bit-for-bit
//! ```
//!
//! CSR rows deliberately preserve the `ConceptGraph` adjacency insertion
//! order rather than sorting by target: downstream float accumulations
//! (reachability Eq. 7, typicality mass sums) iterate `children`/`parents`
//! and must see edges in the same order to produce byte-identical
//! answers. Sorted-order lookup is provided by the separate `edge_sorted`
//! permutation instead.
//!
//! Every section is validated once at open (see [`PackedGraph::from_bytes`]);
//! a truncated or bit-flipped file is rejected — the whole-body CRC plus
//! the count/total cross-check catch any single-bit corruption — and the
//! structural pass rejects files that are internally inconsistent, so a
//! corrupt snapshot can never silently mis-answer.

use crate::graph::{ConceptGraph, EdgeData, NodeId};
use crate::hash::FxHashMap;
use crate::snapshot::{SnapshotError, LEGACY_MAGIC};
use crate::view::GraphView;
use crate::wal::crc32;
use bytes::Bytes;
use std::path::Path;
use std::sync::Arc;

/// Magic number of packed (v2) snapshots.
pub const PACKED_MAGIC: u32 = 0x5042_5350;
/// Format version of packed snapshots.
pub const PACKED_VERSION: u32 = 2;
const HEADER_LEN: usize = 64;
/// CRC coverage starts right after the crc field itself.
const CRC_START: usize = 36;

/// Errors opening a packed snapshot file (I/O or format).
#[derive(Debug)]
pub enum PackedOpenError {
    /// The file could not be opened, read, or mapped.
    Io(std::io::Error),
    /// The bytes failed format validation.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for PackedOpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedOpenError::Io(e) => write!(f, "packed snapshot io error: {e}"),
            PackedOpenError::Snapshot(e) => write!(f, "packed snapshot invalid: {e}"),
        }
    }
}

impl std::error::Error for PackedOpenError {}

impl From<std::io::Error> for PackedOpenError {
    fn from(e: std::io::Error) -> Self {
        PackedOpenError::Io(e)
    }
}

impl From<SnapshotError> for PackedOpenError {
    fn from(e: SnapshotError) -> Self {
        PackedOpenError::Snapshot(e)
    }
}

/// Read-only, file-backed memory mapping (hand-rolled `mmap` binding —
/// the workspace carries no libc-style dependency).
#[cfg(unix)]
mod mapped {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A `PROT_READ`/`MAP_PRIVATE` mapping of a whole file. Read-only
    /// private mappings are never copied, so every process mapping the
    /// same snapshot shares the kernel page cache.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only for its whole lifetime.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub fn map(file: &File) -> io::Result<Mmap> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            if len == 0 {
                // mmap(len = 0) is EINVAL; an empty file maps to an
                // empty slice (validation rejects it as truncated).
                return Ok(Mmap {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: requesting a fresh read-only mapping of a file we
            // hold open; the kernel picks the address.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                &[]
            } else {
                // SAFETY: ptr/len describe a live PROT_READ mapping.
                unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
            }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: unmapping exactly what map() created.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

/// The buffer behind a [`PackedGraph`]: an owned heap buffer or a shared
/// file mapping. Cloning is O(1) either way.
#[derive(Clone)]
enum PackedBuf {
    Heap(Bytes),
    #[cfg(unix)]
    Mapped(Arc<mapped::Mmap>),
}

impl PackedBuf {
    fn as_slice(&self) -> &[u8] {
        match self {
            PackedBuf::Heap(b) => b,
            #[cfg(unix)]
            PackedBuf::Mapped(m) => m.as_slice(),
        }
    }
}

/// Byte offsets of every section, derived from the header counts.
#[derive(Debug, Clone, Copy)]
struct Layout {
    n_strings: usize,
    n_nodes: usize,
    n_edges: usize,
    arena: usize,
    arena_len: usize,
    str_off: usize,
    node_tab: usize,
    out_off: usize,
    out_edges: usize,
    in_off: usize,
    in_refs: usize,
    name_idx: usize,
    edge_sorted: usize,
    edge_order: usize,
    total_len: usize,
}

fn align8(x: u64) -> u64 {
    (x + 7) & !7
}

impl Layout {
    /// Compute section offsets. Inputs come from u32 header fields, so
    /// all intermediate sums fit comfortably in u64; `None` only when the
    /// derived total does not fit the platform's `usize`.
    fn new(n_strings: u32, n_nodes: u32, n_edges: u32, arena_len: u32) -> Option<Layout> {
        let (s, n, e, a) = (
            n_strings as u64,
            n_nodes as u64,
            n_edges as u64,
            arena_len as u64,
        );
        let arena = HEADER_LEN as u64;
        let str_off = align8(arena + a);
        let node_tab = align8(str_off + 4 * (s + 1));
        let out_off = align8(node_tab + 8 * n);
        let out_edges = align8(out_off + 4 * (n + 1));
        let in_off = align8(out_edges + 16 * e);
        let in_refs = align8(in_off + 4 * (n + 1));
        let name_idx = align8(in_refs + 8 * e);
        let edge_sorted = align8(name_idx + 4 * n);
        let edge_order = align8(edge_sorted + 4 * e);
        let total_len = align8(edge_order + 4 * e);
        if usize::try_from(total_len).is_err() {
            return None;
        }
        Some(Layout {
            n_strings: s as usize,
            n_nodes: n as usize,
            n_edges: e as usize,
            arena: arena as usize,
            arena_len: a as usize,
            str_off: str_off as usize,
            node_tab: node_tab as usize,
            out_off: out_off as usize,
            out_edges: out_edges as usize,
            in_off: in_off as usize,
            in_refs: in_refs as usize,
            name_idx: name_idx as usize,
            edge_sorted: edge_sorted as usize,
            edge_order: edge_order as usize,
            total_len: total_len as usize,
        })
    }
}

#[inline]
fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

#[inline]
fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

#[inline]
fn f64_at(b: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

#[inline]
fn put_u32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(b: &mut [u8], off: usize, v: u64) {
    b[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_f64(b: &mut [u8], off: usize, v: f64) {
    b[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn len_u32(n: usize, what: &'static str) -> Result<u32, SnapshotError> {
    u32::try_from(n).map_err(|_| SnapshotError::TooLarge(what))
}

/// Encode `graph` into the packed v2 format. Byte-deterministic: the
/// same graph (same node/edge insertion history) always yields the same
/// bytes, extending the PR 4/8 byte-identity contracts to packed
/// snapshots. Plausibility is clamped to `[0, 1]` (NaN → 0) exactly like
/// the legacy encoder's decode guard, so the output always re-validates.
pub fn pack(graph: &ConceptGraph) -> Result<Bytes, SnapshotError> {
    let interner = graph.interner();
    let n_strings = len_u32(interner.len(), "string table")?;
    let n_nodes = len_u32(graph.node_count(), "node table")?;
    let n_edges = len_u32(graph.edge_count(), "edge table")?;
    let arena_len_usize: usize = interner.iter().map(|(_, s)| s.len()).sum();
    let arena_len = len_u32(arena_len_usize, "string arena")?;
    let layout = Layout::new(n_strings, n_nodes, n_edges, arena_len)
        .ok_or(SnapshotError::TooLarge("packed snapshot"))?;

    let mut buf = vec![0u8; layout.total_len];
    put_u32(&mut buf, 0, PACKED_MAGIC);
    put_u32(&mut buf, 4, PACKED_VERSION);
    put_u32(&mut buf, 8, n_strings);
    put_u32(&mut buf, 12, n_nodes);
    put_u32(&mut buf, 16, n_edges);
    put_u32(&mut buf, 20, arena_len);
    put_u64(&mut buf, 24, layout.total_len as u64);

    // Arena + string offsets, in symbol (insertion) order.
    let mut cursor = 0usize;
    for (sym, s) in interner.iter() {
        put_u32(&mut buf, layout.str_off + 4 * sym.index(), cursor as u32);
        buf[layout.arena + cursor..layout.arena + cursor + s.len()].copy_from_slice(s.as_bytes());
        cursor += s.len();
    }
    put_u32(&mut buf, layout.str_off + 4 * layout.n_strings, arena_len);

    // Node table.
    for n in graph.nodes() {
        let sym = interner.get(graph.label(n)).expect("node label interned");
        put_u32(&mut buf, layout.node_tab + 8 * n.index(), sym.0);
        put_u32(
            &mut buf,
            layout.node_tab + 8 * n.index() + 4,
            graph.sense(n),
        );
    }

    // Out-CSR + payloads, rows in node order, each row in adjacency
    // insertion order. Remember each edge's packed index for the in-refs
    // and edge-order sections.
    let mut edge_pos: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    let mut next = 0u32;
    for n in graph.nodes() {
        put_u32(&mut buf, layout.out_off + 4 * n.index(), next);
        for (to, data) in graph.children(n) {
            let off = layout.out_edges + 16 * next as usize;
            put_u32(&mut buf, off, to.0);
            put_u32(&mut buf, off + 4, data.count);
            let p = if data.plausibility.is_nan() {
                0.0
            } else {
                data.plausibility.clamp(0.0, 1.0)
            };
            put_f64(&mut buf, off + 8, p);
            edge_pos.insert((n.0, to.0), next);
            next += 1;
        }
    }
    put_u32(&mut buf, layout.out_off + 4 * layout.n_nodes, n_edges);

    // In-CSR + refs, rows in node order, each row in adjacency insertion
    // order.
    let mut next_in = 0u32;
    for n in graph.nodes() {
        put_u32(&mut buf, layout.in_off + 4 * n.index(), next_in);
        for (from, _) in graph.parents(n) {
            let off = layout.in_refs + 8 * next_in as usize;
            put_u32(&mut buf, off, from.0);
            put_u32(&mut buf, off + 4, edge_pos[&(from.0, n.0)]);
            next_in += 1;
        }
    }
    put_u32(&mut buf, layout.in_off + 4 * layout.n_nodes, n_edges);

    // Name index: node ids sorted by (label bytes, sense).
    let mut by_name: Vec<u32> = (0..n_nodes).collect();
    by_name.sort_unstable_by(|&a, &b| {
        let (na, nb) = (NodeId(a), NodeId(b));
        graph
            .label(na)
            .as_bytes()
            .cmp(graph.label(nb).as_bytes())
            .then(graph.sense(na).cmp(&graph.sense(nb)))
    });
    for (i, id) in by_name.iter().enumerate() {
        put_u32(&mut buf, layout.name_idx + 4 * i, *id);
    }

    // Per-row edge indices sorted by target node.
    for n in graph.nodes() {
        let start = u32_at(&buf, layout.out_off + 4 * n.index());
        let end = u32_at(&buf, layout.out_off + 4 * (n.index() + 1));
        let mut row: Vec<u32> = (start..end).collect();
        row.sort_unstable_by_key(|&e| u32_at(&buf, layout.out_edges + 16 * e as usize));
        for (i, e) in row.iter().enumerate() {
            put_u32(&mut buf, layout.edge_sorted + 4 * (start as usize + i), *e);
        }
    }

    // Global insertion order, so thawing replays edges exactly as the
    // original graph accumulated them.
    for (i, (from, to, _)) in graph.edges().enumerate() {
        put_u32(
            &mut buf,
            layout.edge_order + 4 * i,
            edge_pos[&(from.0, to.0)],
        );
    }

    let crc = crc32(&buf[CRC_START..]);
    put_u32(&mut buf, 32, crc);
    Ok(Bytes::from(buf))
}

/// Full open-time validation. Returns the trusted layout; after this,
/// every accessor read is in bounds and every string is valid UTF-8.
fn validate(b: &[u8]) -> Result<Layout, SnapshotError> {
    if b.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    let magic = u32_at(b, 0);
    if magic == LEGACY_MAGIC {
        return Err(SnapshotError::LegacyNotPacked);
    }
    if magic != PACKED_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32_at(b, 4);
    if version != PACKED_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let layout = Layout::new(u32_at(b, 8), u32_at(b, 12), u32_at(b, 16), u32_at(b, 20))
        .ok_or(SnapshotError::TooLarge("packed snapshot"))?;
    // The stored total cross-checks the counts: corrupting either side
    // breaks the equality.
    if u64_at(b, 24) != layout.total_len as u64 {
        return Err(SnapshotError::Corrupt("header length mismatch"));
    }
    if b.len() < layout.total_len {
        return Err(SnapshotError::Truncated);
    }
    if b.len() > layout.total_len {
        return Err(SnapshotError::Corrupt("trailing bytes after snapshot"));
    }
    if u32_at(b, 32) != crc32(&b[CRC_START..]) {
        return Err(SnapshotError::Corrupt("checksum mismatch"));
    }

    // String offsets: monotone, spanning the arena exactly; every string
    // valid UTF-8 (checked once here so accessors can skip it).
    if u32_at(b, layout.str_off) != 0 {
        return Err(SnapshotError::Corrupt("string offsets must start at 0"));
    }
    let mut prev = 0u32;
    for i in 1..=layout.n_strings {
        let off = u32_at(b, layout.str_off + 4 * i);
        if off < prev || off as usize > layout.arena_len {
            return Err(SnapshotError::Corrupt("string offsets not monotone"));
        }
        let s = &b[layout.arena + prev as usize..layout.arena + off as usize];
        if std::str::from_utf8(s).is_err() {
            return Err(SnapshotError::BadUtf8);
        }
        prev = off;
    }
    if prev as usize != layout.arena_len {
        return Err(SnapshotError::Corrupt("string offsets do not span arena"));
    }

    // Node table: label symbols in range.
    for i in 0..layout.n_nodes {
        if u32_at(b, layout.node_tab + 8 * i) as usize >= layout.n_strings {
            return Err(SnapshotError::BadIndex);
        }
    }

    // Out-CSR: offsets monotone and spanning; edges well-formed. Builds
    // the edge → owning-row table the later passes need.
    let read_offsets = |base: usize| -> Result<(), SnapshotError> {
        if u32_at(b, base) != 0 {
            return Err(SnapshotError::Corrupt("csr offsets must start at 0"));
        }
        let mut prev = 0u32;
        for i in 1..=layout.n_nodes {
            let off = u32_at(b, base + 4 * i);
            if off < prev || off as usize > layout.n_edges {
                return Err(SnapshotError::Corrupt("csr offsets not monotone"));
            }
            prev = off;
        }
        if prev as usize != layout.n_edges {
            return Err(SnapshotError::Corrupt("csr offsets do not span edges"));
        }
        Ok(())
    };
    read_offsets(layout.out_off)?;
    read_offsets(layout.in_off)?;

    let mut owner = vec![0u32; layout.n_edges];
    for f in 0..layout.n_nodes {
        let start = u32_at(b, layout.out_off + 4 * f) as usize;
        let end = u32_at(b, layout.out_off + 4 * (f + 1)) as usize;
        for (e, own) in owner.iter_mut().enumerate().take(end).skip(start) {
            *own = f as u32;
            let off = layout.out_edges + 16 * e;
            let to = u32_at(b, off) as usize;
            if to >= layout.n_nodes {
                return Err(SnapshotError::BadIndex);
            }
            if to == f {
                return Err(SnapshotError::Corrupt("self loop"));
            }
            let p = f64_at(b, off + 8);
            if !(0.0..=1.0).contains(&p) {
                return Err(SnapshotError::Corrupt("plausibility out of range"));
            }
        }
    }

    // In-refs: every ref points into the out row of its claimed source,
    // and that edge really targets this row's node.
    for t in 0..layout.n_nodes {
        let start = u32_at(b, layout.in_off + 4 * t) as usize;
        let end = u32_at(b, layout.in_off + 4 * (t + 1)) as usize;
        for i in start..end {
            let off = layout.in_refs + 8 * i;
            let from = u32_at(b, off) as usize;
            let e = u32_at(b, off + 4) as usize;
            if from >= layout.n_nodes || e >= layout.n_edges {
                return Err(SnapshotError::BadIndex);
            }
            if owner[e] as usize != from {
                return Err(SnapshotError::Corrupt("in-ref source mismatch"));
            }
            if u32_at(b, layout.out_edges + 16 * e) as usize != t {
                return Err(SnapshotError::Corrupt("in-ref target mismatch"));
            }
        }
    }

    // Name index: a permutation of node ids with strictly increasing
    // (label, sense) keys — strictness also proves (label, sense) is
    // unique across nodes, which binary search and thawing rely on.
    let str_bounds = |sym: u32| -> (usize, usize) {
        let lo = u32_at(b, layout.str_off + 4 * sym as usize) as usize;
        let hi = u32_at(b, layout.str_off + 4 * (sym as usize + 1)) as usize;
        (layout.arena + lo, layout.arena + hi)
    };
    let node_key = |id: usize| -> (&[u8], u32) {
        let sym = u32_at(b, layout.node_tab + 8 * id);
        let sense = u32_at(b, layout.node_tab + 8 * id + 4);
        let (lo, hi) = str_bounds(sym);
        (&b[lo..hi], sense)
    };
    let mut prev_key: Option<(&[u8], u32)> = None;
    let mut seen_node = vec![false; layout.n_nodes];
    for i in 0..layout.n_nodes {
        let id = u32_at(b, layout.name_idx + 4 * i) as usize;
        if id >= layout.n_nodes {
            return Err(SnapshotError::BadIndex);
        }
        if std::mem::replace(&mut seen_node[id], true) {
            return Err(SnapshotError::Corrupt("name index not a permutation"));
        }
        let key = node_key(id);
        if let Some(p) = prev_key {
            if p >= key {
                return Err(SnapshotError::Corrupt("name index not strictly sorted"));
            }
        }
        prev_key = Some(key);
    }

    // Sorted edge index: each row span stays inside its row and is
    // strictly increasing by target.
    for f in 0..layout.n_nodes {
        let start = u32_at(b, layout.out_off + 4 * f) as usize;
        let end = u32_at(b, layout.out_off + 4 * (f + 1)) as usize;
        let mut prev_to: Option<u32> = None;
        for i in start..end {
            let e = u32_at(b, layout.edge_sorted + 4 * i) as usize;
            if e < start || e >= end {
                return Err(SnapshotError::Corrupt("sorted edge index out of row"));
            }
            let to = u32_at(b, layout.out_edges + 16 * e);
            if let Some(p) = prev_to {
                if p >= to {
                    return Err(SnapshotError::Corrupt("sorted edge index not sorted"));
                }
            }
            prev_to = Some(to);
        }
    }

    // Edge order: a permutation consistent with both adjacency
    // directions — replaying it must walk every out row and every in row
    // front to back. This is what makes thaw(pack(g)) reproduce g's
    // adjacency lists exactly.
    let mut seen_edge = vec![false; layout.n_edges];
    let mut out_cursor: Vec<u32> = (0..layout.n_nodes)
        .map(|f| u32_at(b, layout.out_off + 4 * f))
        .collect();
    let mut in_cursor: Vec<u32> = (0..layout.n_nodes)
        .map(|t| u32_at(b, layout.in_off + 4 * t))
        .collect();
    for i in 0..layout.n_edges {
        let e = u32_at(b, layout.edge_order + 4 * i) as usize;
        if e >= layout.n_edges {
            return Err(SnapshotError::BadIndex);
        }
        if std::mem::replace(&mut seen_edge[e], true) {
            return Err(SnapshotError::Corrupt("edge order not a permutation"));
        }
        let f = owner[e] as usize;
        if out_cursor[f] as usize != e {
            return Err(SnapshotError::Corrupt("edge order breaks out-row order"));
        }
        out_cursor[f] += 1;
        let t = u32_at(b, layout.out_edges + 16 * e) as usize;
        let in_end = u32_at(b, layout.in_off + 4 * (t + 1));
        if in_cursor[t] >= in_end {
            return Err(SnapshotError::Corrupt("in row shorter than edge order"));
        }
        if u32_at(b, layout.in_refs + 8 * in_cursor[t] as usize + 4) as usize != e {
            return Err(SnapshotError::Corrupt("edge order breaks in-row order"));
        }
        in_cursor[t] += 1;
    }

    Ok(layout)
}

/// An immutable, contiguous, mmap-able taxonomy graph. Cloning shares
/// the underlying buffer (O(1)).
#[derive(Clone)]
pub struct PackedGraph {
    buf: PackedBuf,
    layout: Layout,
}

impl std::fmt::Debug for PackedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedGraph")
            .field("nodes", &self.layout.n_nodes)
            .field("edges", &self.layout.n_edges)
            .field("bytes", &self.layout.total_len)
            .finish()
    }
}

impl PackedGraph {
    /// Validate and adopt an in-memory packed snapshot.
    pub fn from_bytes(bytes: Bytes) -> Result<Self, SnapshotError> {
        let layout = validate(&bytes)?;
        Ok(Self {
            buf: PackedBuf::Heap(bytes),
            layout,
        })
    }

    /// Validate and adopt owned packed bytes (convenience over
    /// [`PackedGraph::from_bytes`] for callers that do not hold a
    /// `Bytes` handle, e.g. WAL replay of a migration payload).
    pub fn from_vec(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        Self::from_bytes(Bytes::from(bytes))
    }

    /// Open a packed snapshot file. On unix the file is memory-mapped
    /// (zero-copy, page cache shared across processes); elsewhere it is
    /// read into memory. Either way the bytes are fully validated.
    pub fn open(path: &Path) -> Result<Self, PackedOpenError> {
        #[cfg(unix)]
        {
            let file = std::fs::File::open(path)?;
            let map = mapped::Mmap::map(&file)?;
            let layout = validate(map.as_slice())?;
            Ok(Self {
                buf: PackedBuf::Mapped(Arc::new(map)),
                layout,
            })
        }
        #[cfg(not(unix))]
        {
            let bytes = std::fs::read(path)?;
            Ok(Self::from_bytes(Bytes::from(bytes))?)
        }
    }

    /// The raw snapshot bytes (exactly what [`pack`] produced).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf.as_slice()[..self.layout.total_len]
    }

    /// Owned copy of the snapshot bytes — O(1) for heap-backed graphs,
    /// one memcpy for mapped ones. Checkpointing a still-packed store
    /// writes these bytes verbatim, preserving byte-identity without any
    /// re-encode.
    pub fn to_bytes(&self) -> Bytes {
        match &self.buf {
            PackedBuf::Heap(b) => b.clone(),
            #[cfg(unix)]
            PackedBuf::Mapped(_) => Bytes::copy_from_slice(self.as_bytes()),
        }
    }

    /// Snapshot size in bytes.
    pub fn snapshot_len(&self) -> usize {
        self.layout.total_len
    }

    /// True when the buffer is a file mapping rather than heap memory.
    pub fn is_mapped(&self) -> bool {
        match &self.buf {
            PackedBuf::Heap(_) => false,
            #[cfg(unix)]
            PackedBuf::Mapped(_) => true,
        }
    }

    #[inline]
    fn b(&self) -> &[u8] {
        self.buf.as_slice()
    }

    fn string(&self, sym: u32) -> &str {
        let lo = u32_at(self.b(), self.layout.str_off + 4 * sym as usize) as usize;
        let hi = u32_at(self.b(), self.layout.str_off + 4 * (sym as usize + 1)) as usize;
        let bytes = &self.b()[self.layout.arena + lo..self.layout.arena + hi];
        // SAFETY: validated as UTF-8 once at open.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.layout.n_nodes
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.layout.n_edges
    }

    /// Label string of a node.
    pub fn label(&self, n: NodeId) -> &str {
        self.string(u32_at(self.b(), self.layout.node_tab + 8 * n.index()))
    }

    /// Sense number of a node.
    pub fn sense(&self, n: NodeId) -> u32 {
        u32_at(self.b(), self.layout.node_tab + 8 * n.index() + 4)
    }

    /// Display form: `label` for sense 0, `label#k` otherwise.
    pub fn display(&self, n: NodeId) -> String {
        let sense = self.sense(n);
        if sense == 0 {
            self.label(n).to_string()
        } else {
            format!("{}#{}", self.label(n), sense)
        }
    }

    #[inline]
    fn out_range(&self, n: NodeId) -> (usize, usize) {
        (
            u32_at(self.b(), self.layout.out_off + 4 * n.index()) as usize,
            u32_at(self.b(), self.layout.out_off + 4 * (n.index() + 1)) as usize,
        )
    }

    #[inline]
    fn in_range(&self, n: NodeId) -> (usize, usize) {
        (
            u32_at(self.b(), self.layout.in_off + 4 * n.index()) as usize,
            u32_at(self.b(), self.layout.in_off + 4 * (n.index() + 1)) as usize,
        )
    }

    #[inline]
    fn edge_at(&self, e: usize) -> (NodeId, EdgeData) {
        let off = self.layout.out_edges + 16 * e;
        (
            NodeId(u32_at(self.b(), off)),
            EdgeData {
                count: u32_at(self.b(), off + 4),
                plausibility: f64_at(self.b(), off + 8),
            },
        )
    }

    /// Children of `n` with edge data, in adjacency insertion order.
    pub fn children(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        let (start, end) = self.out_range(n);
        (start..end).map(move |e| self.edge_at(e))
    }

    /// Parents of `n` with edge data, in adjacency insertion order.
    pub fn parents(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        let (start, end) = self.in_range(n);
        (start..end).map(move |i| {
            let off = self.layout.in_refs + 8 * i;
            let from = NodeId(u32_at(self.b(), off));
            let e = u32_at(self.b(), off + 4) as usize;
            (from, self.edge_at(e).1)
        })
    }

    /// Out-degree of `n`.
    pub fn child_count(&self, n: NodeId) -> usize {
        let (start, end) = self.out_range(n);
        end - start
    }

    /// In-degree of `n`.
    pub fn parent_count(&self, n: NodeId) -> usize {
        let (start, end) = self.in_range(n);
        end - start
    }

    /// A node with no out-edges is an instance (leaf).
    pub fn is_instance(&self, n: NodeId) -> bool {
        self.child_count(n) == 0
    }

    /// Edge data for `from → to` via binary search of the row's sorted
    /// index — O(log deg) instead of the mutable graph's hash probe.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Option<EdgeData> {
        if from.index() >= self.layout.n_nodes {
            return None;
        }
        let (start, end) = self.out_range(from);
        let (mut lo, mut hi) = (start, end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let e = u32_at(self.b(), self.layout.edge_sorted + 4 * mid) as usize;
            let (t, data) = self.edge_at(e);
            match t.cmp(&to) {
                std::cmp::Ordering::Equal => return Some(data),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    #[inline]
    fn name_entry(&self, i: usize) -> NodeId {
        NodeId(u32_at(self.b(), self.layout.name_idx + 4 * i))
    }

    /// First name-index position whose (label, sense) key is ≥ the probe.
    fn name_lower_bound(&self, label: &[u8], sense: u32) -> usize {
        let (mut lo, mut hi) = (0usize, self.layout.n_nodes);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let id = self.name_entry(mid);
            let key = (self.label(id).as_bytes(), self.sense(id));
            if key < (label, sense) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Find the node for `(label, sense)`.
    pub fn find_node(&self, label: &str, sense: u32) -> Option<NodeId> {
        let i = self.name_lower_bound(label.as_bytes(), sense);
        if i >= self.layout.n_nodes {
            return None;
        }
        let id = self.name_entry(i);
        (self.label(id) == label && self.sense(id) == sense).then_some(id)
    }

    /// All senses of `label`, ascending by sense (a contiguous run of the
    /// sorted name index).
    pub fn senses_of(&self, label: &str) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut i = self.name_lower_bound(label.as_bytes(), 0);
        while i < self.layout.n_nodes {
            let id = self.name_entry(i);
            if self.label(id) != label {
                break;
            }
            out.push(id);
            i += 1;
        }
        out
    }

    /// Nodes whose label starts with `prefix`, in (label, sense) order —
    /// a range scan over the sorted name index.
    pub fn nodes_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        let start = self.name_lower_bound(prefix.as_bytes(), 0);
        (start..self.layout.n_nodes)
            .map(move |i| self.name_entry(i))
            .take_while(move |&id| self.label(id).as_bytes().starts_with(prefix.as_bytes()))
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.layout.n_nodes as u32).map(NodeId)
    }

    /// Iterate all edges `(from, to, data)` in row-major order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeData)> + '_ {
        self.nodes().flat_map(move |f| {
            let (start, end) = self.out_range(f);
            (start..end).map(move |e| {
                let (to, data) = self.edge_at(e);
                (f, to, data)
            })
        })
    }

    /// Concept nodes (non-leaves).
    pub fn concepts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&n| !self.is_instance(n))
    }

    /// Instance nodes (leaves).
    pub fn instances(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&n| self.is_instance(n))
    }

    /// Thaw into a mutable [`ConceptGraph`]. Nodes are re-ensured in id
    /// order (reproducing the original interner exactly, since every
    /// symbol is first interned by `ensure_node`) and edges are replayed
    /// in the recorded global insertion order, so the result is
    /// structurally identical to the graph [`pack`] encoded —
    /// `pack(&packed.unpack()) == packed.as_bytes()`.
    pub fn unpack(&self) -> ConceptGraph {
        let mut g = ConceptGraph::new();
        for n in self.nodes() {
            let id = g.ensure_node(self.label(n), self.sense(n));
            debug_assert_eq!(id, n, "node ids must be dense and in order");
        }
        let mut owner = vec![0u32; self.layout.n_edges];
        for f in self.nodes() {
            let (start, end) = self.out_range(f);
            for slot in &mut owner[start..end] {
                *slot = f.0;
            }
        }
        for i in 0..self.layout.n_edges {
            let e = u32_at(self.b(), self.layout.edge_order + 4 * i) as usize;
            let from = NodeId(owner[e]);
            let (to, data) = self.edge_at(e);
            g.add_evidence(from, to, data.count);
            g.set_plausibility(from, to, data.plausibility);
        }
        g
    }
}

impl GraphView for PackedGraph {
    fn node_count(&self) -> usize {
        PackedGraph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        PackedGraph::edge_count(self)
    }

    fn find_node(&self, label: &str, sense: u32) -> Option<NodeId> {
        PackedGraph::find_node(self, label, sense)
    }

    fn senses_of(&self, label: &str) -> Vec<NodeId> {
        PackedGraph::senses_of(self, label)
    }

    fn edge(&self, from: NodeId, to: NodeId) -> Option<EdgeData> {
        PackedGraph::edge(self, from, to)
    }

    fn children(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        PackedGraph::children(self, n)
    }

    fn parents(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        PackedGraph::parents(self, n)
    }

    fn child_count(&self, n: NodeId) -> usize {
        PackedGraph::child_count(self, n)
    }

    fn parent_count(&self, n: NodeId) -> usize {
        PackedGraph::parent_count(self, n)
    }

    fn is_instance(&self, n: NodeId) -> bool {
        PackedGraph::is_instance(self, n)
    }

    fn label(&self, n: NodeId) -> &str {
        PackedGraph::label(self, n)
    }

    fn sense(&self, n: NodeId) -> u32 {
        PackedGraph::sense(self, n)
    }

    fn display(&self, n: NodeId) -> String {
        PackedGraph::display(self, n)
    }

    fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeData)> + '_ {
        PackedGraph::edges(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let animal = g.ensure_node("animal", 0);
        let dom = g.ensure_node("domestic animal", 0);
        let p0 = g.ensure_node("plant", 0);
        let p1 = g.ensure_node("plant", 1);
        let cat = g.ensure_node("cat", 0);
        let tree = g.ensure_node("tree", 0);
        // Interleave rows so global insertion order differs from
        // row-major order — the case edge_order exists for.
        g.add_evidence(dom, cat, 3);
        g.add_evidence(animal, dom, 5);
        g.add_evidence(p0, tree, 7);
        g.add_evidence(animal, cat, 10);
        g.add_evidence(p1, tree, 2);
        g.set_plausibility(animal, cat, 0.97);
        g.set_plausibility(dom, cat, 0.5);
        g
    }

    #[test]
    fn pack_roundtrip_preserves_reads() {
        let g = sample();
        let p = PackedGraph::from_bytes(pack(&g).expect("packs")).expect("validates");
        assert_eq!(p.node_count(), g.node_count());
        assert_eq!(p.edge_count(), g.edge_count());
        for n in g.nodes() {
            assert_eq!(p.label(n), g.label(n));
            assert_eq!(p.sense(n), g.sense(n));
            let gc: Vec<(NodeId, EdgeData)> = g.children(n).map(|(c, d)| (c, *d)).collect();
            let pc: Vec<(NodeId, EdgeData)> = p.children(n).collect();
            assert_eq!(gc, pc, "children of {n:?}");
            let gp: Vec<(NodeId, EdgeData)> = g.parents(n).map(|(c, d)| (c, *d)).collect();
            let pp: Vec<(NodeId, EdgeData)> = p.parents(n).collect();
            assert_eq!(gp, pp, "parents of {n:?}");
        }
        let animal = g.find_node("animal", 0).unwrap();
        let cat = g.find_node("cat", 0).unwrap();
        assert_eq!(p.find_node("animal", 0), Some(animal));
        assert_eq!(p.find_node("animal", 1), None);
        assert_eq!(p.find_node("missing", 0), None);
        assert_eq!(p.senses_of("plant"), g.senses_of("plant"));
        assert_eq!(p.edge(animal, cat), g.edge(animal, cat).copied());
        assert_eq!(p.edge(cat, animal), None);
    }

    #[test]
    fn pack_is_byte_deterministic() {
        let a = pack(&sample()).unwrap();
        let b = pack(&sample()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unpack_is_exact_inverse() {
        let g = sample();
        let bytes = pack(&g).unwrap();
        let p = PackedGraph::from_bytes(bytes.clone()).unwrap();
        let thawed = p.unpack();
        // Structural identity: repacking and legacy-encoding both match.
        assert_eq!(pack(&thawed).unwrap(), bytes);
        assert_eq!(
            crate::snapshot::to_bytes(&thawed).unwrap(),
            crate::snapshot::to_bytes(&g).unwrap()
        );
        // Global edge order survived the trip.
        let orig: Vec<(NodeId, NodeId)> = g.edges().map(|(f, t, _)| (f, t)).collect();
        let back: Vec<(NodeId, NodeId)> = thawed.edges().map(|(f, t, _)| (f, t)).collect();
        assert_eq!(orig, back);
    }

    #[test]
    fn empty_graph_packs() {
        let g = ConceptGraph::new();
        let p = PackedGraph::from_bytes(pack(&g).unwrap()).unwrap();
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.find_node("x", 0), None);
        assert!(p.senses_of("x").is_empty());
        assert_eq!(p.unpack().node_count(), 0);
    }

    #[test]
    fn legacy_bytes_rejected_with_clear_error() {
        let legacy = crate::snapshot::to_bytes(&sample()).unwrap();
        assert_eq!(
            PackedGraph::from_bytes(legacy).unwrap_err(),
            SnapshotError::LegacyNotPacked
        );
    }

    #[test]
    fn garbage_magic_rejected() {
        let mut b = pack(&sample()).unwrap().to_vec();
        b[0] ^= 0xFF;
        assert_eq!(
            PackedGraph::from_bytes(Bytes::from(b)).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn future_version_rejected() {
        let mut b = pack(&sample()).unwrap().to_vec();
        b[4] = 9;
        // Re-stamp the checksum so the version check is what fires.
        let crc = crc32(&b[CRC_START..]);
        put_u32(&mut b, 32, crc);
        assert_eq!(
            PackedGraph::from_bytes(Bytes::from(b)).unwrap_err(),
            SnapshotError::BadVersion(9)
        );
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = pack(&sample()).unwrap();
        for cut in 0..bytes.len() {
            let r = PackedGraph::from_bytes(bytes.slice(..cut));
            assert!(r.is_err(), "no error at cut {cut}");
        }
    }

    #[test]
    fn single_bit_flips_rejected() {
        let bytes = pack(&sample()).unwrap();
        // Every byte, one flipped bit — the crc/count cross-checks must
        // catch all of them.
        for i in 0..bytes.len() {
            let mut b = bytes.to_vec();
            b[i] ^= 1 << (i % 8);
            assert!(
                PackedGraph::from_bytes(Bytes::from(b)).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn open_maps_file_and_reads_identically() {
        let g = sample();
        let bytes = pack(&g).unwrap();
        let dir = std::env::temp_dir().join(format!("probase-packed-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pbp");
        std::fs::write(&path, &bytes).unwrap();
        let p = PackedGraph::open(&path).unwrap();
        #[cfg(unix)]
        assert!(p.is_mapped());
        assert_eq!(p.as_bytes(), &bytes[..]);
        assert_eq!(p.node_count(), g.node_count());
        let animal = g.find_node("animal", 0).unwrap();
        let cat = g.find_node("cat", 0).unwrap();
        assert_eq!(p.edge(animal, cat).unwrap().count, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefix_scan_walks_sorted_names() {
        let mut g = ConceptGraph::new();
        g.ensure_node("planet", 0);
        g.ensure_node("plant", 1);
        g.ensure_node("plant", 0);
        g.ensure_node("animal", 0);
        let p = PackedGraph::from_bytes(pack(&g).unwrap()).unwrap();
        let hits: Vec<String> = p.nodes_with_prefix("plan").map(|n| p.display(n)).collect();
        assert_eq!(hits, ["planet", "plant", "plant#1"]);
        assert_eq!(p.nodes_with_prefix("z").count(), 0);
    }

    #[test]
    fn edge_lookup_binary_search_covers_large_rows() {
        let mut g = ConceptGraph::new();
        let hub = g.ensure_node("hub", 0);
        let ids: Vec<NodeId> = (0..200)
            .map(|i| g.ensure_node(&format!("leaf {i:03}"), 0))
            .collect();
        // Insert in a scrambled order so the sorted index differs from
        // row order.
        for (k, &id) in ids.iter().enumerate().rev() {
            g.add_evidence(hub, id, k as u32 + 1);
        }
        let p = PackedGraph::from_bytes(pack(&g).unwrap()).unwrap();
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(p.edge(hub, id).unwrap().count, k as u32 + 1);
        }
        assert_eq!(p.edge(ids[0], hub), None);
    }
}
