//! Write-ahead log for serve-path evidence writes.
//!
//! The paper's taxonomy is persistent and continuously grown (§2's
//! iterative extraction accumulates Γ across runs); an in-memory-only
//! write path loses every acked mutation on a crash. This module gives
//! the serving layer a durable append log in the same zero-dependency
//! style as [`crate::snapshot`]: a small binary format, explicit
//! checksums, and torn-tail tolerance instead of a framework.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! header:  magic u32 = 0x5042574C ("PBWL"), version u32 = 1, seq u64
//! record:  payload_len u32, crc32 u32 (over payload), payload
//! payload: index u64, op u8, op-specific body
//!   op 1 (add-evidence):    parent_len u32 + utf8, child_len u32 + utf8,
//!                           count u32
//!   op 2 (import-component): source_shard u32, label_count u32,
//!                           (len u32 + utf8)*, payload_len u32 + packed
//!                           snapshot bytes of the imported subgraph
//!   op 3 (drop-component):  target_shard u32, label_count u32,
//!                           (len u32 + utf8)*
//! ```
//!
//! Ops 2 and 3 journal the two sides of an online component migration
//! (see `probase-router`): the importing shard logs the whole transfer
//! payload *before* applying it, the draining shard logs the drop before
//! removing, so either side's crash recovery replays a consistent half
//! that the fleet-level reconciler can finish.
//!
//! Every record carries a *global* monotone `index` assigned by the
//! writer. Snapshots record the index they cover through, so recovery
//! can union records from any number of log generations, deduplicate by
//! index, and replay exactly the suffix a snapshot does not already
//! contain — crashes between snapshot persist and log rotation neither
//! lose nor double-apply a write.
//!
//! A torn tail (partial record from a crash mid-append) is expected, not
//! an error: [`read_wal`] stops at the first record whose length prefix
//! overruns the file or whose checksum mismatches, and reports the byte
//! offset of the valid prefix so the caller can truncate before
//! re-opening the file for append.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x5042_574C;
const VERSION: u32 = 1;
/// Fixed byte length of the file header.
pub const HEADER_LEN: u64 = 16;
/// Upper bound on a single record payload; anything larger is treated
/// as corruption on read and refused on append. Evidence records are two
/// labels and a count; import-component records carry a whole packed
/// component, so this also caps how large a component can migrate
/// through the WAL (the wire line cap is tighter in practice).
pub const MAX_PAYLOAD: u32 = 1 << 20;

const OP_ADD_EVIDENCE: u8 = 1;
const OP_IMPORT_COMPONENT: u8 = 2;
const OP_DROP_COMPONENT: u8 = 3;

/// One durable write-path operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// `AddEvidence { parent, child, count }` as acked by the server.
    AddEvidence {
        /// Parent (concept) label.
        parent: String,
        /// Child (sub-concept or instance) label.
        child: String,
        /// Evidence count added to the edge.
        count: u32,
    },
    /// A migrated component grafted onto this shard. Logged *before* the
    /// graft is applied, so recovery re-imports it idempotently (the
    /// graft merges by label) and the fleet reconciler can tell this
    /// shard won the component.
    ImportComponent {
        /// Shard index the component came from.
        source: u32,
        /// Labels of the component, sorted by label bytes.
        labels: Vec<String>,
        /// Packed (v2) snapshot bytes of the component subgraph.
        payload: Vec<u8>,
    },
    /// A component drained off this shard after a successful import on
    /// `target`. Logged before the removal; replay re-removes.
    DropComponent {
        /// Shard index that now owns the component.
        target: u32,
        /// Labels removed, sorted by label bytes.
        labels: Vec<String>,
    },
}

/// A decoded log record: a global index plus the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Global monotone record index (never reused across rotations).
    pub index: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// When the writer calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSync {
    /// Fsync after every append — an ack implies the record is on disk.
    Always,
    /// Fsync every N appends (and on rotation/shutdown); a crash can
    /// lose up to N-1 acked writes. `EveryN(0)` behaves like `EveryN(1)`.
    EveryN(u32),
    /// Never fsync explicitly; leave flushing to the OS page cache.
    Os,
}

impl WalSync {
    /// Parse a CLI-style spec: `always`, `os`/`none`, or `batch:N`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "always" => Ok(WalSync::Always),
            "os" | "none" => Ok(WalSync::Os),
            _ => match spec.strip_prefix("batch:") {
                Some(n) => n
                    .parse::<u32>()
                    .map(WalSync::EveryN)
                    .map_err(|_| format!("bad --wal-sync batch size {n:?}")),
                None => Err(format!(
                    "bad --wal-sync {spec:?} (expected always, os, or batch:N)"
                )),
            },
        }
    }
}

/// Result of scanning a log file.
#[derive(Debug)]
pub struct WalRead {
    /// Sequence number from the file header (the log generation).
    pub seq: u64,
    /// All records with valid checksums, in file order.
    pub entries: Vec<WalEntry>,
    /// Byte length of the valid prefix (header + whole records).
    pub valid_len: u64,
    /// True when trailing bytes past `valid_len` were ignored.
    pub torn: bool,
}

/// Errors reading a log file. Torn tails are *not* errors — only a
/// header that identifies the file as something else entirely.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Header magic mismatch — not a Probase WAL.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::BadMagic => write!(f, "bad wal magic"),
            WalError::BadVersion(v) => write!(f, "unsupported wal version {v}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

// CRC-32 (IEEE 802.3 polynomial, reflected). Hand-rolled so the store
// stays dependency-free; the table is built at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn put_str(p: &mut Vec<u8>, s: &str) {
    p.extend_from_slice(&(s.len() as u32).to_le_bytes());
    p.extend_from_slice(s.as_bytes());
}

fn put_labels(p: &mut Vec<u8>, labels: &[String]) {
    p.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for l in labels {
        put_str(p, l);
    }
}

fn encode_payload(entry: &WalEntry) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    p.extend_from_slice(&entry.index.to_le_bytes());
    match &entry.op {
        WalOp::AddEvidence {
            parent,
            child,
            count,
        } => {
            p.push(OP_ADD_EVIDENCE);
            put_str(&mut p, parent);
            put_str(&mut p, child);
            p.extend_from_slice(&count.to_le_bytes());
        }
        WalOp::ImportComponent {
            source,
            labels,
            payload,
        } => {
            p.push(OP_IMPORT_COMPONENT);
            p.extend_from_slice(&source.to_le_bytes());
            put_labels(&mut p, labels);
            p.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            p.extend_from_slice(payload);
        }
        WalOp::DropComponent { target, labels } => {
            p.push(OP_DROP_COMPONENT);
            p.extend_from_slice(&target.to_le_bytes());
            put_labels(&mut p, labels);
        }
    }
    p
}

/// Encode one record (length prefix + checksum + payload) as written to
/// the file. Exposed for tests that craft corrupt logs.
pub fn encode_record(entry: &WalEntry) -> Vec<u8> {
    let payload = encode_payload(entry);
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

fn decode_payload(payload: &[u8]) -> Option<WalEntry> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = payload.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    let take_u32 = |at: &mut usize| -> Option<u32> {
        let s = payload.get(*at..*at + 4)?;
        *at += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    };
    let take_str = |at: &mut usize| -> Option<String> {
        let len = take_u32(at)? as usize;
        let s = payload.get(*at..*at + len)?;
        *at += len;
        String::from_utf8(s.to_vec()).ok()
    };
    let take_labels = |at: &mut usize| -> Option<Vec<String>> {
        let n = take_u32(at)? as usize;
        // A label is at least 4 bytes of length prefix; bound n so a
        // corrupt count cannot trigger a huge allocation.
        if n > payload.len() / 4 {
            return None;
        }
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(take_str(at)?);
        }
        Some(labels)
    };
    let index = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
    let op = match take(&mut at, 1)?[0] {
        OP_ADD_EVIDENCE => {
            let parent = take_str(&mut at)?;
            let child = take_str(&mut at)?;
            let count = take_u32(&mut at)?;
            WalOp::AddEvidence {
                parent,
                child,
                count,
            }
        }
        OP_IMPORT_COMPONENT => {
            let source = take_u32(&mut at)?;
            let labels = take_labels(&mut at)?;
            let plen = take_u32(&mut at)? as usize;
            let bytes = take(&mut at, plen)?.to_vec();
            WalOp::ImportComponent {
                source,
                labels,
                payload: bytes,
            }
        }
        OP_DROP_COMPONENT => {
            let target = take_u32(&mut at)?;
            let labels = take_labels(&mut at)?;
            WalOp::DropComponent { target, labels }
        }
        _ => return None,
    };
    if at != payload.len() {
        return None;
    }
    Some(WalEntry { index, op })
}

/// Scan a log file, returning every record in its valid prefix.
pub fn read_wal(path: &Path) -> Result<WalRead, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN as usize {
        return Err(WalError::BadMagic);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(WalError::BadVersion(version));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());

    let mut entries = Vec::new();
    let mut at = HEADER_LEN as usize;
    loop {
        if at == bytes.len() {
            return Ok(WalRead {
                seq,
                entries,
                valid_len: at as u64,
                torn: false,
            });
        }
        let valid_len = at as u64;
        let torn = |entries| {
            Ok(WalRead {
                seq,
                entries,
                valid_len,
                torn: true,
            })
        };
        if bytes.len() - at < 8 {
            return torn(entries);
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if len > MAX_PAYLOAD || bytes.len() - at - 8 < len as usize {
            return torn(entries);
        }
        let payload = &bytes[at + 8..at + 8 + len as usize];
        if crc32(payload) != crc {
            return torn(entries);
        }
        match decode_payload(payload) {
            Some(e) => entries.push(e),
            // Checksum held but the payload does not parse: a future op
            // or corruption that collided with the CRC. Stop here.
            None => return torn(entries),
        }
        at += 8 + len as usize;
    }
}

/// Append-side handle on a log file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    sync: WalSync,
    unsynced: u32,
}

impl WalWriter {
    /// Create a fresh log file at `path` with generation `seq`. The
    /// header is written and fsynced before returning, so an empty log
    /// is already a valid file.
    pub fn create(path: &Path, seq: u64, sync: WalSync) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&seq.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(Self {
            file,
            sync,
            unsynced: 0,
        })
    }

    /// Re-open an existing log for append, truncating anything past
    /// `valid_len` (the torn tail reported by [`read_wal`]).
    pub fn open_append(path: &Path, valid_len: u64, sync: WalSync) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut w = Self {
            file,
            sync,
            unsynced: 0,
        };
        use std::io::Seek;
        w.file.seek(io::SeekFrom::End(0))?;
        Ok(w)
    }

    /// Append one record; returns `true` when the append was fsynced.
    /// Records whose payload exceeds [`MAX_PAYLOAD`] are refused (the
    /// read side would treat them as corruption), so an oversized
    /// component migration fails cleanly before any bytes are written.
    pub fn append(&mut self, entry: &WalEntry) -> io::Result<bool> {
        let rec = encode_record(entry);
        if rec.len() - 8 > MAX_PAYLOAD as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "wal record payload {} exceeds cap {}",
                    rec.len() - 8,
                    MAX_PAYLOAD
                ),
            ));
        }
        self.file.write_all(&rec)?;
        let due = match self.sync {
            WalSync::Always => true,
            WalSync::EveryN(n) => {
                self.unsynced += 1;
                self.unsynced >= n.max(1)
            }
            WalSync::Os => false,
        };
        if due {
            self.file.sync_all()?;
            self.unsynced = 0;
        }
        Ok(due)
    }

    /// Fsync any batched appends (used on rotation and shutdown).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(index: u64, parent: &str, child: &str, count: u32) -> WalEntry {
        WalEntry {
            index,
            op: WalOp::AddEvidence {
                parent: parent.to_string(),
                child: child.to_string(),
                count,
            },
        }
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_then_read_roundtrips() {
        let dir = tempdir("roundtrip");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path, 7, WalSync::Always).unwrap();
        let entries = vec![
            entry(0, "country", "China", 5),
            entry(1, "animal", "ostrich", 1),
            entry(2, "animal", "robin", 3),
        ];
        for e in &entries {
            assert!(w.append(e).unwrap());
        }
        let r = read_wal(&path).unwrap();
        assert_eq!(r.seq, 7);
        assert_eq!(r.entries, entries);
        assert!(!r.torn);
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncatable() {
        let dir = tempdir("torn");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        w.append(&entry(0, "a", "b", 1)).unwrap();
        w.append(&entry(1, "a", "c", 2)).unwrap();
        drop(w);
        // Simulate a crash mid-append: half a record at the tail.
        let rec = encode_record(&entry(2, "a", "d", 3));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&rec[..rec.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let r = read_wal(&path).unwrap();
        assert_eq!(r.entries.len(), 2);
        assert!(r.torn);

        // Truncate and keep appending; the log reads back whole.
        let mut w = WalWriter::open_append(&path, r.valid_len, WalSync::Always).unwrap();
        w.append(&entry(2, "a", "d", 3)).unwrap();
        let r = read_wal(&path).unwrap();
        assert_eq!(r.entries.len(), 3);
        assert!(!r.torn);
        assert_eq!(r.entries[2], entry(2, "a", "d", 3));
    }

    #[test]
    fn migration_ops_roundtrip() {
        let dir = tempdir("migration");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path, 3, WalSync::Always).unwrap();
        let entries = vec![
            entry(0, "country", "China", 5),
            WalEntry {
                index: 1,
                op: WalOp::ImportComponent {
                    source: 2,
                    labels: vec!["apple".into(), "fruit".into()],
                    payload: vec![0xDE, 0xAD, 0xBE, 0xEF, 0x00],
                },
            },
            WalEntry {
                index: 2,
                op: WalOp::DropComponent {
                    target: 0,
                    labels: vec!["apple".into(), "fruit".into()],
                },
            },
            entry(3, "fruit", "apple", 1),
        ];
        for e in &entries {
            assert!(w.append(e).unwrap());
        }
        let r = read_wal(&path).unwrap();
        assert_eq!(r.seq, 3);
        assert_eq!(r.entries, entries);
        assert!(!r.torn);
    }

    #[test]
    fn unknown_op_stops_the_scan() {
        let dir = tempdir("unknown-op");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        w.append(&entry(0, "a", "b", 1)).unwrap();
        drop(w);
        // Craft a record with a future op code and a valid CRC.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(99);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        let r = read_wal(&path).unwrap();
        assert_eq!(r.entries.len(), 1, "scan keeps the prefix, drops the op");
        assert!(r.torn);
    }

    #[test]
    fn oversized_payload_is_refused_on_append() {
        let dir = tempdir("oversized");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        let big = WalEntry {
            index: 0,
            op: WalOp::ImportComponent {
                source: 1,
                labels: vec!["x".into()],
                payload: vec![0u8; MAX_PAYLOAD as usize + 1],
            },
        };
        assert!(w.append(&big).is_err());
        // The file is untouched: still a valid, empty log.
        let r = read_wal(&path).unwrap();
        assert!(r.entries.is_empty());
        assert!(!r.torn);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let dir = tempdir("crc");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path, 0, WalSync::Always).unwrap();
        w.append(&entry(0, "a", "b", 1)).unwrap();
        w.append(&entry(1, "a", "c", 2)).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first record's payload.
        let at = HEADER_LEN as usize + 10;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let r = read_wal(&path).unwrap();
        assert!(r.entries.is_empty(), "scan must stop at the bad record");
        assert!(r.torn);
        assert_eq!(r.valid_len, HEADER_LEN);
    }

    #[test]
    fn non_wal_file_is_rejected() {
        let dir = tempdir("notawal");
        let path = dir.join("not-a-wal");
        std::fs::write(&path, b"hello world, definitely not a wal").unwrap();
        assert!(matches!(read_wal(&path), Err(WalError::BadMagic)));
        std::fs::write(&path, b"tiny").unwrap();
        assert!(matches!(read_wal(&path), Err(WalError::BadMagic)));
    }

    #[test]
    fn batched_sync_policy_syncs_every_n() {
        let dir = tempdir("batch");
        let path = dir.join("wal-0.log");
        let mut w = WalWriter::create(&path, 0, WalSync::EveryN(3)).unwrap();
        assert!(!w.append(&entry(0, "a", "b", 1)).unwrap());
        assert!(!w.append(&entry(1, "a", "c", 1)).unwrap());
        assert!(w.append(&entry(2, "a", "d", 1)).unwrap());
        assert!(!w.append(&entry(3, "a", "e", 1)).unwrap());
        // EveryN(0) degrades to every append.
        let mut w0 = WalWriter::create(&dir.join("wal-1.log"), 1, WalSync::EveryN(0)).unwrap();
        assert!(w0.append(&entry(0, "a", "b", 1)).unwrap());
    }

    #[test]
    fn wal_sync_parses_cli_specs() {
        assert_eq!(WalSync::parse("always"), Ok(WalSync::Always));
        assert_eq!(WalSync::parse("os"), Ok(WalSync::Os));
        assert_eq!(WalSync::parse("none"), Ok(WalSync::Os));
        assert_eq!(WalSync::parse("batch:16"), Ok(WalSync::EveryN(16)));
        assert!(WalSync::parse("batch:x").is_err());
        assert!(WalSync::parse("sometimes").is_err());
    }

    fn tempdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("probase-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
