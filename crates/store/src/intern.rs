//! String interning.
//!
//! Probase handles millions of distinct labels; comparing and hashing them
//! as strings everywhere would dominate runtime. The [`Interner`] maps each
//! distinct string to a dense [`Symbol`] (a `u32` newtype) so the graph can
//! store and compare labels as integers. See the hashing chapter of the
//! Rust Performance Book for why small integer keys matter here.

use crate::hash::FxHasher;
use serde::{Deserialize, Serialize};
use std::hash::Hasher;

/// A handle to an interned string. Cheap to copy, hash, and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Index into the interner's string table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Slot marker for an empty `SymbolIndex` cell.
const EMPTY: u32 = u32::MAX;

/// An open-addressing hash index from string content to [`Symbol`],
/// storing only symbol ids — the strings themselves live in the
/// interner's table, so interning a new string costs exactly one
/// allocation (the table copy). A map keyed by owned `String`s would pay
/// a second allocation per distinct string on the hottest path of local
/// taxonomy construction (every label of every sentence goes through
/// [`Interner::intern`]).
#[derive(Debug, Clone, Default)]
struct SymbolIndex {
    /// Power-of-two slot table of symbol ids (`EMPTY` = vacant).
    slots: Vec<u32>,
    /// Occupied slot count.
    len: usize,
}

fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

impl SymbolIndex {
    fn get(&self, s: &str, strings: &[String]) -> Option<Symbol> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_str(s) as usize & mask;
        loop {
            match self.slots[i] {
                EMPTY => return None,
                sym if strings[sym as usize] == s => return Some(Symbol(sym)),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Insert `sym`, whose string is `strings[sym.index()]`. The caller
    /// guarantees the string is not already present.
    fn insert(&mut self, sym: Symbol, strings: &[String]) {
        if self.slots.len() < 2 * (self.len + 1) {
            self.grow(strings);
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_str(&strings[sym.index()]) as usize & mask;
        while self.slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = sym.0;
        self.len += 1;
    }

    /// Double the slot table (min 16) and rehash every occupied slot.
    fn grow(&mut self, strings: &[String]) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        let mask = new_cap - 1;
        for sym in old.into_iter().filter(|&s| s != EMPTY) {
            let mut i = hash_str(&strings[sym as usize]) as usize & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = sym;
        }
    }
}

/// An append-only string interner. Symbols are dense indices in insertion
/// order, which snapshots rely on.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    lookup: SymbolIndex,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(sym) = self.lookup.get(s, &self.strings) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.lookup.insert(sym, &self.strings);
        sym
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s, &self.strings)
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Rebuild the lookup table after deserialization (the index is
    /// skipped in serde to halve snapshot size).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = SymbolIndex::default();
        for i in 0..self.strings.len() {
            self.lookup.insert(Symbol(i as u32), &self.strings);
        }
    }

    /// Iterate `(Symbol, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("animal");
        let b = i.intern("animal");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), Symbol(0));
        assert_eq!(i.intern("b"), Symbol(1));
        assert_eq!(i.intern("a"), Symbol(0));
        assert_eq!(i.intern("c"), Symbol(2));
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let s = i.intern("tropical country");
        assert_eq!(i.resolve(s), "tropical country");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        assert_eq!(i.len(), 0);
        i.intern("x");
        assert_eq!(i.get("x"), Some(Symbol(0)));
    }

    #[test]
    fn rebuild_lookup_restores_get() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let mut j = i.clone();
        j.lookup = SymbolIndex::default(); // what serde deserialization yields
        assert_eq!(j.get("b"), None);
        j.rebuild_lookup();
        assert_eq!(j.get("b"), Some(Symbol(1)));
    }

    #[test]
    fn index_survives_growth_and_collisions() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..5_000)
            .map(|n| i.intern(&format!("label {n}")))
            .collect();
        assert_eq!(i.len(), 5_000);
        for (n, &sym) in syms.iter().enumerate() {
            assert_eq!(i.get(&format!("label {n}")), Some(sym));
            assert_eq!(i.intern(&format!("label {n}")), sym);
        }
        assert_eq!(i.get("label 5000"), None);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let v: Vec<_> = i.iter().map(|(s, t)| (s.0, t.to_string())).collect();
        assert_eq!(v, [(0, "x".to_string()), (1, "y".to_string())]);
    }
}
