//! String interning.
//!
//! Probase handles millions of distinct labels; comparing and hashing them
//! as strings everywhere would dominate runtime. The [`Interner`] maps each
//! distinct string to a dense [`Symbol`] (a `u32` newtype) so the graph can
//! store and compare labels as integers. See the hashing chapter of the
//! Rust Performance Book for why small integer keys matter here.

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A handle to an interned string. Cheap to copy, hash, and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Index into the interner's string table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner. Symbols are dense indices in insertion
/// order, which snapshots rely on.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    lookup: FxHashMap<String, Symbol>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.lookup.insert(s.to_string(), sym);
        sym
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Rebuild the lookup table after deserialization (the map is skipped
    /// in serde to halve snapshot size).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), Symbol(i as u32)))
            .collect();
    }

    /// Iterate `(Symbol, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("animal");
        let b = i.intern("animal");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), Symbol(0));
        assert_eq!(i.intern("b"), Symbol(1));
        assert_eq!(i.intern("a"), Symbol(0));
        assert_eq!(i.intern("c"), Symbol(2));
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let s = i.intern("tropical country");
        assert_eq!(i.resolve(s), "tropical country");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        assert_eq!(i.len(), 0);
        i.intern("x");
        assert_eq!(i.get("x"), Some(Symbol(0)));
    }

    #[test]
    fn rebuild_lookup_restores_get() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let mut j = i.clone();
        j.lookup.clear();
        assert_eq!(j.get("b"), None);
        j.rebuild_lookup();
        assert_eq!(j.get("b"), Some(Symbol(1)));
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let v: Vec<_> = i.iter().map(|(s, t)| (s.0, t.to_string())).collect();
        assert_eq!(v, [(0, "x".to_string()), (1, "y".to_string())]);
    }
}
