//! Concurrent serving wrapper around a concept graph.
//!
//! The paper hosts Probase in the Trinity graph engine and serves many
//! applications concurrently (§5.3) while table understanding *writes
//! back* enrichments. [`SharedStore`] reproduces that serving shape: many
//! concurrent readers, exclusive writers, over a `parking_lot` RwLock
//! (chosen per the Rust Performance Book's synchronization guidance).
//!
//! Reads take a guard and run closures against the graph so no data is
//! copied; writes go through [`SharedStore::update`], which also bumps a
//! version counter that caches (e.g. a memoized typicality model) can use
//! for invalidation.

use crate::graph::ConceptGraph;
use parking_lot::RwLock;
use probase_obs::{Counter, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable, concurrently readable concept graph.
#[derive(Debug, Clone)]
pub struct SharedStore {
    inner: Arc<Shared>,
}

#[derive(Debug)]
struct Shared {
    graph: RwLock<ConceptGraph>,
    version: AtomicU64,
    queries: Arc<Counter>,
    updates: Arc<Counter>,
    snapshot_swaps: Arc<Counter>,
}

impl SharedStore {
    /// Wrap a graph for shared access. Reports `store.*` counters to the
    /// process-global metric registry.
    pub fn new(graph: ConceptGraph) -> Self {
        Self::with_registry(graph, probase_obs::global())
    }

    /// [`SharedStore::new`] with an explicit metric registry. Installing
    /// the initial graph counts as the first snapshot swap.
    pub fn with_registry(graph: ConceptGraph, registry: &Registry) -> Self {
        let snapshot_swaps = registry.counter("store.snapshot_swaps");
        snapshot_swaps.inc();
        Self {
            inner: Arc::new(Shared {
                graph: RwLock::new(graph),
                version: AtomicU64::new(0),
                queries: registry.counter("store.queries"),
                updates: registry.counter("store.updates"),
                snapshot_swaps,
            }),
        }
    }

    /// Run a read-only closure against the graph (many may run at once).
    pub fn read<R>(&self, f: impl FnOnce(&ConceptGraph) -> R) -> R {
        self.inner.queries.inc();
        f(&self.inner.graph.read())
    }

    /// Like [`SharedStore::read`], but also returns the version the
    /// closure observed, read *under the read guard*. Because
    /// [`SharedStore::update`] bumps the counter while still holding the
    /// write lock, the pair is atomic: a cache keyed on the returned
    /// version can never associate an answer with a version the graph
    /// had already moved past.
    pub fn read_versioned<R>(&self, f: impl FnOnce(&ConceptGraph) -> R) -> (R, u64) {
        self.inner.queries.inc();
        let guard = self.inner.graph.read();
        let version = self.inner.version.load(Ordering::Acquire);
        (f(&guard), version)
    }

    /// Run a mutating closure under the exclusive lock; bumps the version.
    pub fn update<R>(&self, f: impl FnOnce(&mut ConceptGraph) -> R) -> R {
        self.update_versioned(f).0
    }

    /// Like [`SharedStore::update`], but also returns the post-write
    /// version. The bump happens while the write lock is still held, so
    /// the returned version is exactly the one at which the mutation
    /// became visible (no interleaved writer can sit between them).
    pub fn update_versioned<R>(&self, f: impl FnOnce(&mut ConceptGraph) -> R) -> (R, u64) {
        self.inner.updates.inc();
        let mut guard = self.inner.graph.write();
        let out = f(&mut guard);
        let version = self.inner.version.fetch_add(1, Ordering::Release) + 1;
        (out, version)
    }

    /// Replace the entire graph with a freshly built one (e.g. after an
    /// offline pipeline rerun), bumping the version so versioned caches
    /// drop stale answers. Returns the post-swap version.
    pub fn swap_snapshot(&self, graph: ConceptGraph) -> u64 {
        self.inner.snapshot_swaps.inc();
        let mut guard = self.inner.graph.write();
        *guard = graph;
        self.inner.version.fetch_add(1, Ordering::Release) + 1
    }

    /// Like [`SharedStore::swap_snapshot`], but runs `patch` on the
    /// incoming graph *under the write lock* before installing it. The
    /// serve rebuild worker uses this to fold writes that landed during
    /// an off-path rebuild into the rebuilt graph at the moment of the
    /// swap, so no concurrent write is lost. `patch` returning `false`
    /// aborts: the current graph stays, the version does not move, and
    /// `None` is returned.
    pub fn swap_snapshot_patched(
        &self,
        mut graph: ConceptGraph,
        patch: impl FnOnce(&mut ConceptGraph) -> bool,
    ) -> Option<u64> {
        let mut guard = self.inner.graph.write();
        if !patch(&mut graph) {
            return None;
        }
        self.inner.snapshot_swaps.inc();
        *guard = graph;
        Some(self.inner.version.fetch_add(1, Ordering::Release) + 1)
    }

    /// Monotone write counter for cache invalidation.
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// Clone the current graph out (for snapshotting or rebuilding a
    /// query model off the serving path).
    pub fn clone_graph(&self) -> ConceptGraph {
        self.inner.graph.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> SharedStore {
        let mut g = ConceptGraph::new();
        let c = g.ensure_node("country", 0);
        let china = g.ensure_node("China", 0);
        g.add_evidence(c, china, 5);
        SharedStore::new(g)
    }

    #[test]
    fn read_sees_graph() {
        let s = seeded();
        let n = s.read(|g| g.node_count());
        assert_eq!(n, 2);
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn update_bumps_version_and_is_visible() {
        let s = seeded();
        s.update(|g| {
            let c = g.find_node("country", 0).unwrap();
            let india = g.ensure_node("India", 0);
            g.add_evidence(c, india, 1);
        });
        assert_eq!(s.version(), 1);
        assert_eq!(s.read(|g| g.node_count()), 3);
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let s = seeded();
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move |_| {
                    for _ in 0..200 {
                        let n = s.read(|g| g.node_count());
                        assert!(n >= 2);
                    }
                });
            }
            let s2 = s.clone();
            scope.spawn(move |_| {
                for i in 0..50 {
                    s2.update(|g| {
                        let c = g.find_node("country", 0).unwrap();
                        let node = g.ensure_node(&format!("X{i}"), 0);
                        g.add_evidence(c, node, 1);
                    });
                }
            });
        })
        .expect("threads join");
        assert_eq!(s.version(), 50);
        assert_eq!(s.read(|g| g.node_count()), 52);
    }

    #[test]
    fn read_versioned_pairs_graph_with_version() {
        let s = seeded();
        let (n, v) = s.read_versioned(|g| g.node_count());
        assert_eq!((n, v), (2, 0));
        s.update(|g| {
            let c = g.find_node("country", 0).unwrap();
            let n = g.ensure_node("India", 0);
            g.add_evidence(c, n, 1);
        });
        let (n, v) = s.read_versioned(|g| g.node_count());
        assert_eq!((n, v), (3, 1));
    }

    #[test]
    fn update_versioned_returns_postwrite_version() {
        let s = seeded();
        let (count, v) = s.update_versioned(|g| {
            let c = g.find_node("country", 0).unwrap();
            let n = g.ensure_node("India", 0);
            g.add_evidence(c, n, 4)
        });
        assert_eq!(count, 4);
        assert_eq!(v, 1);
        assert_eq!(s.version(), 1);
    }

    /// The invalidation-ordering contract a versioned cache depends on:
    /// a `(result, version)` pair from `read_versioned` is internally
    /// consistent even with a writer racing it — the observed node count
    /// always matches what the observed version implies, because the
    /// version is bumped while the write lock is still held.
    #[test]
    fn read_versioned_never_tears_under_concurrent_updates() {
        let s = seeded();
        let base = s.read(|g| g.node_count());
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move |_| {
                    for _ in 0..300 {
                        let (nodes, v) = s.read_versioned(|g| g.node_count());
                        // Writer adds exactly one node per version bump.
                        assert_eq!(
                            nodes as u64,
                            base as u64 + v,
                            "version {v} must imply exactly {v} added nodes"
                        );
                    }
                });
            }
            let s2 = s.clone();
            scope.spawn(move |_| {
                for i in 0..100 {
                    s2.update(|g| {
                        let c = g.find_node("country", 0).unwrap();
                        let node = g.ensure_node(&format!("N{i}"), 0);
                        g.add_evidence(c, node, 1);
                    });
                }
            });
        })
        .expect("threads join");
        let (nodes, v) = s.read_versioned(|g| g.node_count());
        assert_eq!(v, 100);
        assert_eq!(nodes, base + 100);
    }

    #[test]
    fn swap_snapshot_replaces_graph_and_bumps_version() {
        let s = seeded();
        let mut replacement = ConceptGraph::new();
        replacement.ensure_node("company", 0);
        let v = s.swap_snapshot(replacement);
        assert_eq!(v, 1);
        assert_eq!(s.version(), 1);
        assert_eq!(s.read(|g| g.node_count()), 1);
    }

    #[test]
    fn swap_snapshot_patched_folds_writes_and_can_abort() {
        let s = seeded();
        let mut replacement = ConceptGraph::new();
        replacement.ensure_node("company", 0);
        let v = s.swap_snapshot_patched(replacement.clone(), |g| {
            let c = g.find_node("company", 0).unwrap();
            let m = g.ensure_node("Microsoft", 0);
            g.add_evidence(c, m, 2);
            true
        });
        assert_eq!(v, Some(1));
        assert_eq!(s.read(|g| g.node_count()), 2);
        assert!(s.read(|g| g.find_node("Microsoft", 0).is_some()));

        // Aborted patch: graph and version untouched.
        let v = s.swap_snapshot_patched(ConceptGraph::new(), |_| false);
        assert_eq!(v, None);
        assert_eq!(s.version(), 1);
        assert_eq!(s.read(|g| g.node_count()), 2);
    }

    #[test]
    fn counters_track_reads_updates_and_swaps() {
        let registry = Registry::new();
        let mut g = ConceptGraph::new();
        g.ensure_node("country", 0);
        let s = SharedStore::with_registry(g, &registry);
        s.read(|g| g.node_count());
        s.read_versioned(|g| g.node_count());
        s.update(|g| {
            g.ensure_node("China", 0);
        });
        s.swap_snapshot(ConceptGraph::new());
        let snap = registry.snapshot();
        let counters = snap.get("counters").expect("counters section");
        assert_eq!(
            counters.get("store.queries").and_then(|v| v.as_u64()),
            Some(2)
        );
        assert_eq!(
            counters.get("store.updates").and_then(|v| v.as_u64()),
            Some(1)
        );
        // One swap from construction, one explicit.
        assert_eq!(
            counters
                .get("store.snapshot_swaps")
                .and_then(|v| v.as_u64()),
            Some(2)
        );
    }

    #[test]
    fn clone_graph_detaches() {
        let s = seeded();
        let snapshot = s.clone_graph();
        s.update(|g| {
            let c = g.find_node("country", 0).unwrap();
            let n = g.ensure_node("New", 0);
            g.add_evidence(c, n, 1);
        });
        assert_eq!(snapshot.node_count(), 2);
        assert_eq!(s.read(|g| g.node_count()), 3);
    }
}
