//! Concurrent serving wrapper around a concept graph.
//!
//! The paper hosts Probase in the Trinity graph engine and serves many
//! applications concurrently (§5.3) while table understanding *writes
//! back* enrichments. [`SharedStore`] reproduces that serving shape: many
//! concurrent readers, exclusive writers, over a `parking_lot` RwLock
//! (chosen per the Rust Performance Book's synchronization guidance).
//!
//! The store holds a [`GraphHandle`] — either the mutable
//! [`ConceptGraph`] or the zero-copy [`crate::packed::PackedGraph`] —
//! and hot-swaps between them. Reads take a guard and run closures
//! against the handle so no data is copied; writes go through
//! [`SharedStore::update`], which thaws a packed handle in place on the
//! first mutation and bumps a version counter that caches (e.g. a
//! memoized typicality model) can use for invalidation.

use crate::graph::ConceptGraph;
use crate::handle::GraphHandle;
use parking_lot::RwLock;
use probase_obs::{Counter, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable, concurrently readable concept graph.
#[derive(Debug, Clone)]
pub struct SharedStore {
    inner: Arc<Shared>,
}

#[derive(Debug)]
struct Shared {
    graph: RwLock<GraphHandle>,
    version: AtomicU64,
    queries: Arc<Counter>,
    updates: Arc<Counter>,
    snapshot_swaps: Arc<Counter>,
    thaws: Arc<Counter>,
}

impl SharedStore {
    /// Wrap a graph (mutable or packed) for shared access. Reports
    /// `store.*` counters to the process-global metric registry.
    pub fn new(graph: impl Into<GraphHandle>) -> Self {
        Self::with_registry(graph, probase_obs::global())
    }

    /// [`SharedStore::new`] with an explicit metric registry. Installing
    /// the initial graph counts as the first snapshot swap.
    pub fn with_registry(graph: impl Into<GraphHandle>, registry: &Registry) -> Self {
        let snapshot_swaps = registry.counter("store.snapshot_swaps");
        snapshot_swaps.inc();
        Self {
            inner: Arc::new(Shared {
                graph: RwLock::new(graph.into()),
                version: AtomicU64::new(0),
                queries: registry.counter("store.queries"),
                updates: registry.counter("store.updates"),
                snapshot_swaps,
                thaws: registry.counter("store.thaws"),
            }),
        }
    }

    /// Run a read-only closure against the graph (many may run at once).
    pub fn read<R>(&self, f: impl FnOnce(&GraphHandle) -> R) -> R {
        self.inner.queries.inc();
        f(&self.inner.graph.read())
    }

    /// Like [`SharedStore::read`], but also returns the version the
    /// closure observed, read *under the read guard*. Because
    /// [`SharedStore::update`] bumps the counter while still holding the
    /// write lock, the pair is atomic: a cache keyed on the returned
    /// version can never associate an answer with a version the graph
    /// had already moved past.
    pub fn read_versioned<R>(&self, f: impl FnOnce(&GraphHandle) -> R) -> (R, u64) {
        self.inner.queries.inc();
        let guard = self.inner.graph.read();
        let version = self.inner.version.load(Ordering::Acquire);
        (f(&guard), version)
    }

    /// Run a mutating closure under the exclusive lock; bumps the
    /// version. A packed handle is thawed to its mutable form in place
    /// before the closure runs (counted in `store.thaws`).
    pub fn update<R>(&self, f: impl FnOnce(&mut ConceptGraph) -> R) -> R {
        self.update_versioned(f).0
    }

    /// Like [`SharedStore::update`], but also returns the post-write
    /// version. The bump happens while the write lock is still held, so
    /// the returned version is exactly the one at which the mutation
    /// became visible (no interleaved writer can sit between them).
    pub fn update_versioned<R>(&self, f: impl FnOnce(&mut ConceptGraph) -> R) -> (R, u64) {
        self.inner.updates.inc();
        let mut guard = self.inner.graph.write();
        let (graph, thawed) = guard.make_mutable();
        if thawed {
            self.inner.thaws.inc();
        }
        let out = f(graph);
        let version = self.inner.version.fetch_add(1, Ordering::Release) + 1;
        (out, version)
    }

    /// Replace the entire graph with a freshly built one (e.g. after an
    /// offline pipeline rerun or a packed-snapshot recovery), bumping the
    /// version so versioned caches drop stale answers. Returns the
    /// post-swap version.
    pub fn swap_snapshot(&self, graph: impl Into<GraphHandle>) -> u64 {
        self.inner.snapshot_swaps.inc();
        let mut guard = self.inner.graph.write();
        *guard = graph.into();
        self.inner.version.fetch_add(1, Ordering::Release) + 1
    }

    /// Like [`SharedStore::swap_snapshot`], but runs `patch` on the
    /// incoming graph *under the write lock* before installing it. The
    /// serve rebuild worker uses this to fold writes that landed during
    /// an off-path rebuild into the rebuilt graph at the moment of the
    /// swap, so no concurrent write is lost. `patch` returning `false`
    /// aborts: the current graph stays, the version does not move, and
    /// `None` is returned.
    pub fn swap_snapshot_patched(
        &self,
        mut graph: ConceptGraph,
        patch: impl FnOnce(&mut ConceptGraph) -> bool,
    ) -> Option<u64> {
        let mut guard = self.inner.graph.write();
        if !patch(&mut graph) {
            return None;
        }
        self.inner.snapshot_swaps.inc();
        *guard = GraphHandle::Mutable(graph);
        Some(self.inner.version.fetch_add(1, Ordering::Release) + 1)
    }

    /// Monotone write counter for cache invalidation.
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// True when the currently installed handle is the packed
    /// representation (no write has thawed it yet).
    pub fn is_packed(&self) -> bool {
        self.inner.graph.read().is_packed()
    }

    /// Clone the current graph out as a mutable [`ConceptGraph`] (for
    /// snapshotting or rebuilding a query model off the serving path).
    /// Thaws a copy if the store is packed; the installed handle is
    /// untouched.
    pub fn clone_graph(&self) -> ConceptGraph {
        self.inner.graph.read().materialize()
    }

    /// Clone the current handle — O(1) when packed, a deep copy when
    /// mutable.
    pub fn clone_handle(&self) -> GraphHandle {
        self.inner.graph.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> SharedStore {
        let mut g = ConceptGraph::new();
        let c = g.ensure_node("country", 0);
        let china = g.ensure_node("China", 0);
        g.add_evidence(c, china, 5);
        SharedStore::new(g)
    }

    fn seeded_packed(registry: &Registry) -> SharedStore {
        let mut g = ConceptGraph::new();
        let c = g.ensure_node("country", 0);
        let china = g.ensure_node("China", 0);
        g.add_evidence(c, china, 5);
        let packed =
            crate::packed::PackedGraph::from_bytes(crate::packed::pack(&g).unwrap()).unwrap();
        SharedStore::with_registry(packed, registry)
    }

    #[test]
    fn read_sees_graph() {
        let s = seeded();
        let n = s.read(|g| g.node_count());
        assert_eq!(n, 2);
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn update_bumps_version_and_is_visible() {
        let s = seeded();
        s.update(|g| {
            let c = g.find_node("country", 0).unwrap();
            let india = g.ensure_node("India", 0);
            g.add_evidence(c, india, 1);
        });
        assert_eq!(s.version(), 1);
        assert_eq!(s.read(|g| g.node_count()), 3);
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let s = seeded();
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move |_| {
                    for _ in 0..200 {
                        let n = s.read(|g| g.node_count());
                        assert!(n >= 2);
                    }
                });
            }
            let s2 = s.clone();
            scope.spawn(move |_| {
                for i in 0..50 {
                    s2.update(|g| {
                        let c = g.find_node("country", 0).unwrap();
                        let node = g.ensure_node(&format!("X{i}"), 0);
                        g.add_evidence(c, node, 1);
                    });
                }
            });
        })
        .expect("threads join");
        assert_eq!(s.version(), 50);
        assert_eq!(s.read(|g| g.node_count()), 52);
    }

    #[test]
    fn read_versioned_pairs_graph_with_version() {
        let s = seeded();
        let (n, v) = s.read_versioned(|g| g.node_count());
        assert_eq!((n, v), (2, 0));
        s.update(|g| {
            let c = g.find_node("country", 0).unwrap();
            let n = g.ensure_node("India", 0);
            g.add_evidence(c, n, 1);
        });
        let (n, v) = s.read_versioned(|g| g.node_count());
        assert_eq!((n, v), (3, 1));
    }

    #[test]
    fn update_versioned_returns_postwrite_version() {
        let s = seeded();
        let (count, v) = s.update_versioned(|g| {
            let c = g.find_node("country", 0).unwrap();
            let n = g.ensure_node("India", 0);
            g.add_evidence(c, n, 4)
        });
        assert_eq!(count, 4);
        assert_eq!(v, 1);
        assert_eq!(s.version(), 1);
    }

    /// The invalidation-ordering contract a versioned cache depends on:
    /// a `(result, version)` pair from `read_versioned` is internally
    /// consistent even with a writer racing it — the observed node count
    /// always matches what the observed version implies, because the
    /// version is bumped while the write lock is still held.
    #[test]
    fn read_versioned_never_tears_under_concurrent_updates() {
        let s = seeded();
        let base = s.read(|g| g.node_count());
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move |_| {
                    for _ in 0..300 {
                        let (nodes, v) = s.read_versioned(|g| g.node_count());
                        // Writer adds exactly one node per version bump.
                        assert_eq!(
                            nodes as u64,
                            base as u64 + v,
                            "version {v} must imply exactly {v} added nodes"
                        );
                    }
                });
            }
            let s2 = s.clone();
            scope.spawn(move |_| {
                for i in 0..100 {
                    s2.update(|g| {
                        let c = g.find_node("country", 0).unwrap();
                        let node = g.ensure_node(&format!("N{i}"), 0);
                        g.add_evidence(c, node, 1);
                    });
                }
            });
        })
        .expect("threads join");
        let (nodes, v) = s.read_versioned(|g| g.node_count());
        assert_eq!(v, 100);
        assert_eq!(nodes, base + 100);
    }

    #[test]
    fn swap_snapshot_replaces_graph_and_bumps_version() {
        let s = seeded();
        let mut replacement = ConceptGraph::new();
        replacement.ensure_node("company", 0);
        let v = s.swap_snapshot(replacement);
        assert_eq!(v, 1);
        assert_eq!(s.version(), 1);
        assert_eq!(s.read(|g| g.node_count()), 1);
    }

    #[test]
    fn swap_snapshot_patched_folds_writes_and_can_abort() {
        let s = seeded();
        let mut replacement = ConceptGraph::new();
        replacement.ensure_node("company", 0);
        let v = s.swap_snapshot_patched(replacement.clone(), |g| {
            let c = g.find_node("company", 0).unwrap();
            let m = g.ensure_node("Microsoft", 0);
            g.add_evidence(c, m, 2);
            true
        });
        assert_eq!(v, Some(1));
        assert_eq!(s.read(|g| g.node_count()), 2);
        assert!(s.read(|g| g.find_node("Microsoft", 0).is_some()));

        // Aborted patch: graph and version untouched.
        let v = s.swap_snapshot_patched(ConceptGraph::new(), |_| false);
        assert_eq!(v, None);
        assert_eq!(s.version(), 1);
        assert_eq!(s.read(|g| g.node_count()), 2);
    }

    #[test]
    fn counters_track_reads_updates_and_swaps() {
        let registry = Registry::new();
        let mut g = ConceptGraph::new();
        g.ensure_node("country", 0);
        let s = SharedStore::with_registry(g, &registry);
        s.read(|g| g.node_count());
        s.read_versioned(|g| g.node_count());
        s.update(|g| {
            g.ensure_node("China", 0);
        });
        s.swap_snapshot(ConceptGraph::new());
        let snap = registry.snapshot();
        let counters = snap.get("counters").expect("counters section");
        assert_eq!(
            counters.get("store.queries").and_then(|v| v.as_u64()),
            Some(2)
        );
        assert_eq!(
            counters.get("store.updates").and_then(|v| v.as_u64()),
            Some(1)
        );
        // One swap from construction, one explicit.
        assert_eq!(
            counters
                .get("store.snapshot_swaps")
                .and_then(|v| v.as_u64()),
            Some(2)
        );
    }

    #[test]
    fn clone_graph_detaches() {
        let s = seeded();
        let snapshot = s.clone_graph();
        s.update(|g| {
            let c = g.find_node("country", 0).unwrap();
            let n = g.ensure_node("New", 0);
            g.add_evidence(c, n, 1);
        });
        assert_eq!(snapshot.node_count(), 2);
        assert_eq!(s.read(|g| g.node_count()), 3);
    }

    #[test]
    fn packed_store_serves_reads_without_thawing() {
        let registry = Registry::new();
        let s = seeded_packed(&registry);
        assert!(s.is_packed());
        assert_eq!(s.read(|g| g.node_count()), 2);
        assert!(s.read(|g| g.find_node("China", 0).is_some()));
        // Reads never thaw.
        assert!(s.is_packed());
        let snap = registry.snapshot();
        let counters = snap.get("counters").expect("counters section");
        assert_eq!(
            counters.get("store.thaws").and_then(|v| v.as_u64()),
            Some(0)
        );
    }

    #[test]
    fn first_write_thaws_packed_store_once() {
        let registry = Registry::new();
        let s = seeded_packed(&registry);
        s.update(|g| {
            let c = g.find_node("country", 0).unwrap();
            let n = g.ensure_node("India", 0);
            g.add_evidence(c, n, 2);
        });
        assert!(!s.is_packed());
        assert_eq!(s.read(|g| g.node_count()), 3);
        s.update(|g| {
            g.ensure_node("other", 0);
        });
        let snap = registry.snapshot();
        let counters = snap.get("counters").expect("counters section");
        assert_eq!(
            counters.get("store.thaws").and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn clone_graph_thaws_copy_not_store() {
        let registry = Registry::new();
        let s = seeded_packed(&registry);
        let g = s.clone_graph();
        assert_eq!(g.node_count(), 2);
        assert!(
            s.is_packed(),
            "materializing a copy must not thaw the store"
        );
    }
}
