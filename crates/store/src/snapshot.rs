//! Compact binary snapshots of a [`ConceptGraph`].
//!
//! The paper hosts Probase in the Trinity graph engine, which persists the
//! taxonomy between runs. Our stand-in serializes the graph to a simple
//! length-prefixed binary format built on the `bytes` crate: strings in
//! interner order, node keys, then edges. The skipped lookup tables are
//! rebuilt on load ([`ConceptGraph::rebuild_indexes`]).
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  u32 = 0x50425353 ("PBSS")
//! version u32 = 1
//! n_strings u32, then per string: len u32 + utf8 bytes
//! n_nodes u32, then per node: label u32, sense u32
//! n_edges u32, then per edge: from u32, to u32, count u32, plausibility f64
//! ```

use crate::graph::{ConceptGraph, NodeId};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic number of legacy (v1) length-prefixed snapshots.
pub const LEGACY_MAGIC: u32 = 0x5042_5353;
const MAGIC: u32 = LEGACY_MAGIC;
const VERSION: u32 = 1;

/// The snapshot format a byte buffer claims to be, from its magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Legacy v1: length-prefixed, decoded into a [`ConceptGraph`].
    Legacy,
    /// Packed v2: zero-copy CSR layout ([`crate::packed::PackedGraph`]).
    Packed,
}

/// Identify a snapshot buffer by its magic number without decoding it.
/// `None` when the buffer is too short or carries neither magic.
pub fn sniff_format(bytes: &[u8]) -> Option<SnapshotFormat> {
    if bytes.len() < 4 {
        return None;
    }
    match u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) {
        LEGACY_MAGIC => Some(SnapshotFormat::Legacy),
        crate::packed::PACKED_MAGIC => Some(SnapshotFormat::Packed),
        _ => None,
    }
}

/// Errors decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// Magic number mismatch — not a Probase snapshot.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An index pointed outside its table.
    BadIndex,
    /// A table or string is too large for the u32 length prefixes —
    /// encoding would silently truncate, so it is refused instead.
    TooLarge(&'static str),
    /// The buffer is a packed (v2) snapshot but the legacy decoder was
    /// invoked. Use [`crate::packed::PackedGraph::from_bytes`].
    PackedNotLegacy,
    /// The buffer is a legacy (v1) snapshot but the packed decoder was
    /// invoked. Use [`from_bytes`].
    LegacyNotPacked,
    /// Structural validation of a packed snapshot failed (checksum,
    /// offsets, or cross-section consistency).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "bad magic number"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadUtf8 => write!(f, "invalid utf-8 in snapshot"),
            SnapshotError::BadIndex => write!(f, "index out of range in snapshot"),
            SnapshotError::TooLarge(what) => {
                write!(f, "{what} exceeds the u32 snapshot length limit")
            }
            SnapshotError::PackedNotLegacy => write!(
                f,
                "this is a packed (v2) snapshot; decode it with the packed reader"
            ),
            SnapshotError::LegacyNotPacked => write!(
                f,
                "this is a legacy (v1) snapshot; decode it with the legacy reader"
            ),
            SnapshotError::Corrupt(what) => write!(f, "packed snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn len_u32(n: usize, what: &'static str) -> Result<u32, SnapshotError> {
    u32::try_from(n).map_err(|_| SnapshotError::TooLarge(what))
}

/// Serialize `graph` to bytes. Fails with [`SnapshotError::TooLarge`]
/// rather than silently truncating a table past `u32::MAX` entries.
pub fn to_bytes(graph: &ConceptGraph) -> Result<Bytes, SnapshotError> {
    let mut buf = BytesMut::with_capacity(64 + graph.node_count() * 12 + graph.edge_count() * 20);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);

    let interner = graph.interner();
    buf.put_u32_le(len_u32(interner.len(), "string table")?);
    for (_, s) in interner.iter() {
        buf.put_u32_le(len_u32(s.len(), "interned string")?);
        buf.put_slice(s.as_bytes());
    }

    buf.put_u32_le(len_u32(graph.node_count(), "node table")?);
    for n in graph.nodes() {
        let sym = interner.get(graph.label(n)).expect("node label interned");
        buf.put_u32_le(sym.0);
        buf.put_u32_le(graph.sense(n));
    }

    buf.put_u32_le(len_u32(graph.edge_count(), "edge table")?);
    for (from, to, data) in graph.edges() {
        buf.put_u32_le(from.0);
        buf.put_u32_le(to.0);
        buf.put_u32_le(data.count);
        buf.put_f64_le(data.plausibility);
    }
    Ok(buf.freeze())
}

fn need(buf: &impl Buf, n: usize) -> Result<(), SnapshotError> {
    if buf.remaining() < n {
        Err(SnapshotError::Truncated)
    } else {
        Ok(())
    }
}

/// Deserialize a graph from bytes produced by [`to_bytes`].
pub fn from_bytes(mut buf: impl Buf) -> Result<ConceptGraph, SnapshotError> {
    need(&buf, 8)?;
    match buf.get_u32_le() {
        MAGIC => {}
        crate::packed::PACKED_MAGIC => return Err(SnapshotError::PackedNotLegacy),
        _ => return Err(SnapshotError::BadMagic),
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }

    need(&buf, 4)?;
    let n_strings = buf.get_u32_le() as usize;
    // Cap preallocations by what the remaining bytes could possibly
    // hold (each string costs ≥4 bytes on the wire), so a corrupt count
    // field cannot trigger a gigantic up-front allocation.
    let mut strings = Vec::with_capacity(n_strings.min(buf.remaining() / 4));
    for _ in 0..n_strings {
        need(&buf, 4)?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len)?;
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        strings.push(String::from_utf8(bytes).map_err(|_| SnapshotError::BadUtf8)?);
    }

    let mut graph = ConceptGraph::new();
    need(&buf, 4)?;
    let n_nodes = buf.get_u32_le() as usize;
    let mut ids: Vec<NodeId> = Vec::with_capacity(n_nodes.min(buf.remaining() / 8));
    for _ in 0..n_nodes {
        need(&buf, 8)?;
        let label = buf.get_u32_le() as usize;
        let sense = buf.get_u32_le();
        let s = strings.get(label).ok_or(SnapshotError::BadIndex)?;
        ids.push(graph.ensure_node(s, sense));
    }

    need(&buf, 4)?;
    let n_edges = buf.get_u32_le() as usize;
    for _ in 0..n_edges {
        need(&buf, 20)?;
        let from = buf.get_u32_le() as usize;
        let to = buf.get_u32_le() as usize;
        let count = buf.get_u32_le();
        let plausibility = buf.get_f64_le();
        let (&f, &t) = (
            ids.get(from).ok_or(SnapshotError::BadIndex)?,
            ids.get(to).ok_or(SnapshotError::BadIndex)?,
        );
        // Corrupt bytes can decode to a self-loop or a NaN plausibility;
        // both would trip the graph's debug assertions downstream.
        if f == t {
            return Err(SnapshotError::BadIndex);
        }
        let plausibility = if plausibility.is_nan() {
            0.0
        } else {
            plausibility.clamp(0.0, 1.0)
        };
        graph.add_evidence(f, t, count);
        graph.set_plausibility(f, t, plausibility);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("animal", 0);
        let p0 = g.ensure_node("plant", 0);
        let p1 = g.ensure_node("plant", 1);
        let cat = g.ensure_node("cat", 0);
        let tree = g.ensure_node("tree", 0);
        let boiler = g.ensure_node("boiler", 0);
        g.add_evidence(a, cat, 12);
        g.add_evidence(p0, tree, 7);
        g.add_evidence(p1, boiler, 4);
        g.set_plausibility(a, cat, 0.97);
        g
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let bytes = to_bytes(&g).expect("encodes");
        let h = from_bytes(bytes).unwrap();
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        let a = h.find_node("animal", 0).unwrap();
        let cat = h.find_node("cat", 0).unwrap();
        let e = h.edge(a, cat).unwrap();
        assert_eq!(e.count, 12);
        assert!((e.plausibility - 0.97).abs() < 1e-12);
        assert_eq!(h.senses_of("plant").len(), 2);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample()).expect("encodes").to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(from_bytes(&bytes[..]).unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = to_bytes(&sample()).expect("encodes");
        for cut in 0..bytes.len() {
            let r = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "no error at cut {cut}");
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&sample()).expect("encodes").to_vec();
        bytes[4] = 99;
        assert_eq!(
            from_bytes(&bytes[..]).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = ConceptGraph::new();
        let h = from_bytes(to_bytes(&g).expect("encodes")).unwrap();
        assert_eq!(h.node_count(), 0);
        assert_eq!(h.edge_count(), 0);
    }

    #[test]
    fn packed_bytes_rejected_with_clear_error() {
        let packed = crate::packed::pack(&sample()).expect("packs");
        assert_eq!(
            from_bytes(&packed[..]).unwrap_err(),
            SnapshotError::PackedNotLegacy
        );
    }

    #[test]
    fn sniff_distinguishes_formats() {
        let g = sample();
        let legacy = to_bytes(&g).unwrap();
        let packed = crate::packed::pack(&g).unwrap();
        assert_eq!(sniff_format(&legacy), Some(SnapshotFormat::Legacy));
        assert_eq!(sniff_format(&packed), Some(SnapshotFormat::Packed));
        assert_eq!(sniff_format(b"nope"), None);
        assert_eq!(sniff_format(b"ab"), None);
    }
}
