//! A fast, non-cryptographic hasher for interned keys.
//!
//! The hot maps of the pipeline — Γ's pair counts, the graph's node and
//! edge indexes — are keyed by small integers ([`crate::Symbol`],
//! [`crate::NodeId`] and tuples of them). The standard library's SipHash
//! is collision-resistant but slow for such keys; following the Rust
//! Performance Book's hashing guidance, this module provides an
//! FxHash-style multiply-xor hasher (the algorithm rustc itself uses),
//! implemented locally so no extra dependency is needed.
//!
//! HashDoS resistance is irrelevant here: keys come from our own
//! interner, not from attackers.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash). Word-at-a-time; not cryptographic.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn distinct_keys_hash_differently() {
        // Not a guarantee in general, but these must not collide for the
        // hasher to be useful on our dense id space.
        let hashes: std::collections::HashSet<u64> = (0u32..10_000).map(hash_of).collect();
        assert!(
            hashes.len() > 9_900,
            "too many collisions: {}",
            10_000 - hashes.len()
        );
    }

    #[test]
    fn tuples_and_strings_work() {
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
        assert_ne!(hash_of("animal"), hash_of("animals"));
        assert_eq!(hash_of("cat"), hash_of("cat"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert((i, i * 2), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(500, 1000)], 500);
    }

    #[test]
    fn partial_tail_bytes_hash() {
        assert_ne!(hash_of("abc"), hash_of("abd"));
        assert_ne!(
            hash_of([1u8, 2, 3].as_slice()),
            hash_of([1u8, 2, 3, 0].as_slice())
        );
    }
}
