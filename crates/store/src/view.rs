//! Read-only graph abstraction shared by the mutable and packed stores.
//!
//! Queries, the probabilistic layer, and the serve read path only ever
//! *walk* the taxonomy; they never care whether the bytes behind it live
//! in a pointer-rich [`ConceptGraph`](crate::graph::ConceptGraph) or in a
//! contiguous mmap-backed [`PackedGraph`](crate::packed::PackedGraph).
//! [`GraphView`] captures that read surface so both can serve it.
//!
//! Iteration-order contract: `children` and `parents` must yield edges in
//! the same order as the `ConceptGraph` that produced the view (adjacency
//! insertion order). Several downstream computations accumulate `f64`
//! values while iterating, so a reordering — even one that is
//! set-equivalent — would change low bits of served answers and break the
//! byte-identity guarantees the snapshot and response-cache layers rely
//! on. `edges` only promises per-row order; its global order is
//! implementation-defined and must not feed order-sensitive float sums.

use crate::graph::{EdgeData, NodeId};

/// Read-only view of a taxonomy graph.
///
/// Edge payloads are returned by value ([`EdgeData`] is `Copy`) so packed
/// implementations can decode them from flat bytes without handing out
/// references into a decode buffer.
pub trait GraphView {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of distinct edges.
    fn edge_count(&self) -> usize;

    /// Find the node for `(label, sense)` without creating it.
    fn find_node(&self, label: &str, sense: u32) -> Option<NodeId>;

    /// All senses of `label` present in the graph, ascending by sense.
    fn senses_of(&self, label: &str) -> Vec<NodeId>;

    /// Edge data for `from → to`.
    fn edge(&self, from: NodeId, to: NodeId) -> Option<EdgeData>;

    /// Children of `n` (nodes it is a super-concept of), with edge data,
    /// in adjacency insertion order.
    fn children(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_;

    /// Parents of `n` (its super-concepts), with edge data, in adjacency
    /// insertion order.
    fn parents(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_;

    /// Out-degree of `n`.
    fn child_count(&self, n: NodeId) -> usize;

    /// In-degree of `n`.
    fn parent_count(&self, n: NodeId) -> usize;

    /// A node with no out-edges is an instance (leaf); others are
    /// concepts (paper §3.1).
    fn is_instance(&self, n: NodeId) -> bool {
        self.child_count(n) == 0
    }

    /// Label string of a node.
    fn label(&self, n: NodeId) -> &str;

    /// Sense number of a node.
    fn sense(&self, n: NodeId) -> u32;

    /// Display form: `label` for sense 0, `label#k` otherwise.
    fn display(&self, n: NodeId) -> String {
        let sense = self.sense(n);
        if sense == 0 {
            self.label(n).to_string()
        } else {
            format!("{}#{}", self.label(n), sense)
        }
    }

    /// Iterate all node ids.
    fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterate all edges as `(from, to, data)`. Per-row order follows
    /// `children`; the interleaving of rows is implementation-defined.
    fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeData)> + '_;

    /// Concept nodes (non-leaves).
    fn concepts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&n| !self.is_instance(n))
    }

    /// Instance nodes (leaves).
    fn instances(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&n| self.is_instance(n))
    }
}

impl GraphView for crate::graph::ConceptGraph {
    fn node_count(&self) -> usize {
        crate::graph::ConceptGraph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        crate::graph::ConceptGraph::edge_count(self)
    }

    fn find_node(&self, label: &str, sense: u32) -> Option<NodeId> {
        crate::graph::ConceptGraph::find_node(self, label, sense)
    }

    fn senses_of(&self, label: &str) -> Vec<NodeId> {
        crate::graph::ConceptGraph::senses_of(self, label)
    }

    fn edge(&self, from: NodeId, to: NodeId) -> Option<EdgeData> {
        crate::graph::ConceptGraph::edge(self, from, to).copied()
    }

    fn children(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        crate::graph::ConceptGraph::children(self, n).map(|(c, d)| (c, *d))
    }

    fn parents(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeData)> + '_ {
        crate::graph::ConceptGraph::parents(self, n).map(|(p, d)| (p, *d))
    }

    fn child_count(&self, n: NodeId) -> usize {
        crate::graph::ConceptGraph::child_count(self, n)
    }

    fn parent_count(&self, n: NodeId) -> usize {
        crate::graph::ConceptGraph::parent_count(self, n)
    }

    fn is_instance(&self, n: NodeId) -> bool {
        crate::graph::ConceptGraph::is_instance(self, n)
    }

    fn label(&self, n: NodeId) -> &str {
        crate::graph::ConceptGraph::label(self, n)
    }

    fn sense(&self, n: NodeId) -> u32 {
        crate::graph::ConceptGraph::sense(self, n)
    }

    fn display(&self, n: NodeId) -> String {
        crate::graph::ConceptGraph::display(self, n)
    }

    fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeData)> + '_ {
        crate::graph::ConceptGraph::edges(self).map(|(f, t, d)| (f, t, *d))
    }
}

/// Iterator that is one of two concrete iterator types. Lets
/// [`crate::handle::GraphHandle`] return a single `impl Iterator` from a
/// `match` over its two backing representations.
#[derive(Debug, Clone)]
pub enum Either<L, R> {
    /// The left alternative.
    Left(L),
    /// The right alternative.
    Right(R),
}

impl<T, L: Iterator<Item = T>, R: Iterator<Item = T>> Iterator for Either<L, R> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            Either::Left(it) => it.next(),
            Either::Right(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Either::Left(it) => it.size_hint(),
            Either::Right(it) => it.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConceptGraph;

    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let animal = g.ensure_node("animal", 0);
        let dom = g.ensure_node("domestic animal", 0);
        let cat = g.ensure_node("cat", 0);
        g.add_evidence(animal, dom, 5);
        g.add_evidence(animal, cat, 10);
        g.add_evidence(dom, cat, 3);
        g
    }

    /// Exercise the trait surface through a generic function, proving the
    /// view methods agree with the inherent ones on `ConceptGraph`.
    fn summarize<G: GraphView>(g: &G) -> (usize, usize, usize, usize) {
        let concepts = g.concepts().count();
        let instances = g.instances().count();
        (g.node_count(), g.edge_count(), concepts, instances)
    }

    #[test]
    fn concept_graph_implements_view() {
        let g = sample();
        assert_eq!(summarize(&g), (3, 3, 2, 1));
        let animal = GraphView::find_node(&g, "animal", 0).unwrap();
        let cat = GraphView::find_node(&g, "cat", 0).unwrap();
        let kids: Vec<NodeId> = GraphView::children(&g, animal).map(|(n, _)| n).collect();
        assert_eq!(kids.len(), 2);
        let e = GraphView::edge(&g, animal, cat).unwrap();
        assert_eq!(e.count, 10);
        assert_eq!(GraphView::display(&g, cat), "cat");
    }

    #[test]
    fn either_iterates_both_arms() {
        let l: Either<std::vec::IntoIter<u32>, std::iter::Empty<u32>> =
            Either::Left(vec![1, 2].into_iter());
        assert_eq!(l.collect::<Vec<_>>(), [1, 2]);
        let r: Either<std::vec::IntoIter<u32>, _> = Either::Right(std::iter::once(9));
        assert_eq!(r.collect::<Vec<_>>(), [9]);
    }
}
