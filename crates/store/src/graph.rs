//! The concept graph.
//!
//! A [`ConceptGraph`] is the taxonomy DAG of paper §3.1: nodes are
//! sense-disambiguated labels ("plant" sense 0 and "plant" sense 1 are two
//! nodes), edges `(u, v)` mean *u is a super-concept of v*, each edge
//! carries the evidence count `n(x, y)` (paper Table 3) and, after the
//! probabilistic layer runs, a plausibility in `[0, 1]`. Nodes without
//! out-edges are instances; all others are concepts (§3.1).

use crate::hash::FxHashMap;
use crate::intern::{Interner, Symbol};
use serde::{Deserialize, Serialize};

/// Dense node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the graph's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Evidence and belief attached to an isA edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeData {
    /// Number of times the pair was discovered in the corpus, `n(x, y)`.
    pub count: u32,
    /// Plausibility `P(x, y)` of the claim (Eq. 1). `1.0` until the
    /// probabilistic layer assigns real values.
    pub plausibility: f64,
}

impl Default for EdgeData {
    fn default() -> Self {
        Self {
            count: 0,
            plausibility: 1.0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Edge {
    from: NodeId,
    to: NodeId,
    data: EdgeData,
}

/// A node: an interned label plus a sense number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeKey {
    /// Interned label.
    pub label: Symbol,
    /// Sense number among nodes sharing the label.
    pub sense: u32,
}

/// The taxonomy graph. Append-only for nodes; edges accumulate evidence.
///
/// ```
/// use probase_store::ConceptGraph;
/// let mut g = ConceptGraph::new();
/// let animal = g.ensure_node("animal", 0);
/// let cat = g.ensure_node("cat", 0);
/// g.add_evidence(animal, cat, 3);
/// assert_eq!(g.edge(animal, cat).unwrap().count, 3);
/// assert!(g.is_instance(cat) && !g.is_instance(animal));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConceptGraph {
    interner: Interner,
    keys: Vec<NodeKey>,
    edges: Vec<Edge>,
    out: Vec<Vec<u32>>,
    incoming: Vec<Vec<u32>>,
    #[serde(skip)]
    by_key: FxHashMap<NodeKey, NodeId>,
    #[serde(skip)]
    edge_index: FxHashMap<(NodeId, NodeId), u32>,
}

impl ConceptGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the node for `(label, sense)`.
    pub fn ensure_node(&mut self, label: &str, sense: u32) -> NodeId {
        let sym = self.interner.intern(label);
        let key = NodeKey { label: sym, sense };
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = NodeId(self.keys.len() as u32);
        self.keys.push(key);
        self.out.push(Vec::new());
        self.incoming.push(Vec::new());
        self.by_key.insert(key, id);
        id
    }

    /// Find the node for `(label, sense)` without creating it.
    pub fn find_node(&self, label: &str, sense: u32) -> Option<NodeId> {
        let sym = self.interner.get(label)?;
        self.by_key.get(&NodeKey { label: sym, sense }).copied()
    }

    /// All senses of `label` present in the graph, in ascending sense order.
    pub fn senses_of(&self, label: &str) -> Vec<NodeId> {
        let Some(sym) = self.interner.get(label) else {
            return Vec::new();
        };
        let mut v: Vec<NodeId> = self
            .keys
            .iter()
            .enumerate()
            .filter(|(_, k)| k.label == sym)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        v.sort_by_key(|id| self.keys[id.index()].sense);
        v
    }

    /// Add `count` pieces of evidence to the edge `from → to`, creating it
    /// if needed. Returns the edge's accumulated count.
    pub fn add_evidence(&mut self, from: NodeId, to: NodeId, count: u32) -> u32 {
        debug_assert_ne!(from, to, "self loops are not isA edges");
        match self.edge_index.get(&(from, to)) {
            Some(&ei) => {
                let e = &mut self.edges[ei as usize];
                e.data.count += count;
                e.data.count
            }
            None => {
                let ei = self.edges.len() as u32;
                self.edges.push(Edge {
                    from,
                    to,
                    data: EdgeData {
                        count,
                        plausibility: 1.0,
                    },
                });
                self.out[from.index()].push(ei);
                self.incoming[to.index()].push(ei);
                self.edge_index.insert((from, to), ei);
                count
            }
        }
    }

    /// Set the plausibility of an existing edge. Returns `false` when the
    /// edge does not exist.
    pub fn set_plausibility(&mut self, from: NodeId, to: NodeId, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "plausibility out of range: {p}");
        match self.edge_index.get(&(from, to)) {
            Some(&ei) => {
                self.edges[ei as usize].data.plausibility = p;
                true
            }
            None => false,
        }
    }

    /// Edge data for `from → to`.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Option<&EdgeData> {
        self.edge_index
            .get(&(from, to))
            .map(|&ei| &self.edges[ei as usize].data)
    }

    /// Children of `n` (nodes it is a super-concept of), with edge data.
    pub fn children(&self, n: NodeId) -> impl Iterator<Item = (NodeId, &EdgeData)> {
        self.out[n.index()].iter().map(move |&ei| {
            let e = &self.edges[ei as usize];
            (e.to, &e.data)
        })
    }

    /// Parents of `n` (its super-concepts), with edge data.
    pub fn parents(&self, n: NodeId) -> impl Iterator<Item = (NodeId, &EdgeData)> {
        self.incoming[n.index()].iter().map(move |&ei| {
            let e = &self.edges[ei as usize];
            (e.from, &e.data)
        })
    }

    /// Out-degree of `n`.
    pub fn child_count(&self, n: NodeId) -> usize {
        self.out[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn parent_count(&self, n: NodeId) -> usize {
        self.incoming[n.index()].len()
    }

    /// A node with no out-edges is an instance (leaf); others are concepts
    /// (paper §3.1).
    pub fn is_instance(&self, n: NodeId) -> bool {
        self.out[n.index()].is_empty()
    }

    /// Label string of a node.
    pub fn label(&self, n: NodeId) -> &str {
        self.interner.resolve(self.keys[n.index()].label)
    }

    /// Sense number of a node.
    pub fn sense(&self, n: NodeId) -> u32 {
        self.keys[n.index()].sense
    }

    /// Display form: `label` for sense 0, `label#k` otherwise.
    pub fn display(&self, n: NodeId) -> String {
        let k = self.keys[n.index()];
        if k.sense == 0 {
            self.interner.resolve(k.label).to_string()
        } else {
            format!("{}#{}", self.interner.resolve(k.label), k.sense)
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.keys.len() as u32).map(NodeId)
    }

    /// Iterate all edges as `(from, to, data)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, &EdgeData)> {
        self.edges.iter().map(|e| (e.from, e.to, &e.data))
    }

    /// Concept nodes (non-leaves).
    pub fn concepts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| !self.is_instance(n))
    }

    /// Instance nodes (leaves).
    pub fn instances(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.is_instance(n))
    }

    /// Rebuild the skipped lookup tables after deserialization.
    pub fn rebuild_indexes(&mut self) {
        self.interner.rebuild_lookup();
        self.by_key = self
            .keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, NodeId(i as u32)))
            .collect();
        self.edge_index = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.from, e.to), i as u32))
            .collect();
    }

    /// Access the interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConceptGraph {
        let mut g = ConceptGraph::new();
        let animal = g.ensure_node("animal", 0);
        let dom = g.ensure_node("domestic animal", 0);
        let cat = g.ensure_node("cat", 0);
        let dog = g.ensure_node("dog", 0);
        g.add_evidence(animal, dom, 5);
        g.add_evidence(animal, cat, 10);
        g.add_evidence(dom, cat, 3);
        g.add_evidence(dom, dog, 2);
        g
    }

    #[test]
    fn ensure_node_is_idempotent() {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("x", 0);
        let b = g.ensure_node("x", 0);
        let c = g.ensure_node("x", 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn evidence_accumulates() {
        let mut g = ConceptGraph::new();
        let a = g.ensure_node("a", 0);
        let b = g.ensure_node("b", 0);
        assert_eq!(g.add_evidence(a, b, 2), 2);
        assert_eq!(g.add_evidence(a, b, 3), 5);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(a, b).unwrap().count, 5);
    }

    #[test]
    fn instances_are_leaves() {
        let g = sample();
        let cat = g.find_node("cat", 0).unwrap();
        let animal = g.find_node("animal", 0).unwrap();
        assert!(g.is_instance(cat));
        assert!(!g.is_instance(animal));
        assert_eq!(g.instances().count(), 2); // cat, dog
        assert_eq!(g.concepts().count(), 2); // animal, domestic animal
    }

    #[test]
    fn children_and_parents() {
        let g = sample();
        let animal = g.find_node("animal", 0).unwrap();
        let cat = g.find_node("cat", 0).unwrap();
        let kids: Vec<&str> = g.children(animal).map(|(n, _)| g.label(n)).collect();
        assert_eq!(kids, ["domestic animal", "cat"]);
        let ps: Vec<&str> = g.parents(cat).map(|(n, _)| g.label(n)).collect();
        assert_eq!(ps, ["animal", "domestic animal"]);
        assert_eq!(g.parent_count(cat), 2);
        assert_eq!(g.child_count(animal), 2);
    }

    #[test]
    fn plausibility_set_and_read() {
        let mut g = sample();
        let a = g.find_node("animal", 0).unwrap();
        let c = g.find_node("cat", 0).unwrap();
        assert!(g.set_plausibility(a, c, 0.9));
        assert!((g.edge(a, c).unwrap().plausibility - 0.9).abs() < 1e-12);
        let dog = g.find_node("dog", 0).unwrap();
        assert!(!g.set_plausibility(a, dog, 0.5)); // edge absent
    }

    #[test]
    fn senses_of_lists_all() {
        let mut g = ConceptGraph::new();
        g.ensure_node("plant", 1);
        g.ensure_node("plant", 0);
        let senses = g.senses_of("plant");
        assert_eq!(senses.len(), 2);
        assert_eq!(g.sense(senses[0]), 0);
        assert_eq!(g.sense(senses[1]), 1);
        assert!(g.senses_of("unknown").is_empty());
    }

    #[test]
    fn display_marks_nonzero_senses() {
        let mut g = ConceptGraph::new();
        let p0 = g.ensure_node("plant", 0);
        let p1 = g.ensure_node("plant", 1);
        assert_eq!(g.display(p0), "plant");
        assert_eq!(g.display(p1), "plant#1");
    }

    #[test]
    fn rebuild_indexes_restores_lookups() {
        let g = sample();
        let mut h = g.clone();
        h.by_key.clear();
        h.edge_index.clear();
        h.rebuild_indexes();
        let a = h.find_node("animal", 0).unwrap();
        let c = h.find_node("cat", 0).unwrap();
        assert_eq!(h.edge(a, c).unwrap().count, 10);
    }
}
