//! Hearst pattern detection (paper Table 2).
//!
//! Probase deliberately uses a *fixed* set of six syntactic patterns —
//! semantic iteration, not pattern growth, is where new extraction power
//! comes from (§2.1). This module locates a pattern occurrence in a tagged
//! token sequence and reports the token regions that hold the candidate
//! super-concept(s) and the sub-concept list.
//!
//! | id | pattern |
//! |----|------------------------------------------------|
//! | 1  | NP such as {NP,}* {(or\|and)} NP               |
//! | 2  | such NP as {NP,}* {(or\|and)} NP               |
//! | 3  | NP {,} including {NP,}* {(or\|and)} NP         |
//! | 4  | NP {,NP}* {,} and other NP                     |
//! | 5  | NP {,NP}* {,} or other NP                      |
//! | 6  | NP {,} especially {NP,}* {(or\|and)} NP        |

use probase_corpus::sentence::PatternKind;
use probase_text::{Tag, TaggedToken};

/// A located pattern occurrence with its token regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternMatch {
    pub kind: PatternKind,
    /// Token range `[start, end)` of the pattern keywords themselves.
    pub keywords: (usize, usize),
    /// Token range holding super-concept candidates.
    pub super_region: (usize, usize),
    /// Token range holding the sub-concept list.
    pub list_region: (usize, usize),
}

fn lower(t: &TaggedToken) -> String {
    t.token.text.to_lowercase()
}

/// Locate the first Hearst pattern in `tagged`. Returns `None` for
/// pattern-free sentences (the vast majority of real web text).
pub fn find_pattern(tagged: &[TaggedToken]) -> Option<PatternMatch> {
    let n = tagged.len();
    let words: Vec<String> = tagged.iter().map(lower).collect();

    for i in 0..n {
        match words[i].as_str() {
            "such" => {
                if i + 1 < n && words[i + 1] == "as" {
                    // Pattern 1: `NP such as …`. Needs material on both sides.
                    if i > 0 && i + 2 < n {
                        return Some(PatternMatch {
                            kind: PatternKind::SuchAs,
                            keywords: (i, i + 2),
                            super_region: (0, i),
                            list_region: (i + 2, n),
                        });
                    }
                } else {
                    // Pattern 2: `such NP as …` — find the closing "as"
                    // within a small window.
                    let window_end = (i + 7).min(n);
                    if let Some(j) = (i + 2..window_end).find(|&j| words[j] == "as") {
                        if j + 1 < n {
                            return Some(PatternMatch {
                                kind: PatternKind::SuchNpAs,
                                keywords: (i, j + 1),
                                super_region: (i + 1, j),
                                list_region: (j + 1, n),
                            });
                        }
                    }
                }
            }
            "including"
                if i > 0 && i + 1 < n => {
                    return Some(PatternMatch {
                        kind: PatternKind::Including,
                        keywords: (i, i + 1),
                        super_region: (0, i),
                        list_region: (i + 1, n),
                    });
                }
            "especially"
                // Only the list form "NP, especially …"; a mid-sentence
                // adverb ("is especially large") has no preceding comma.
                if i > 0 && i + 1 < n && tagged[i - 1].tag == Tag::Punct => {
                    return Some(PatternMatch {
                        kind: PatternKind::Especially,
                        keywords: (i, i + 1),
                        super_region: (0, i),
                        list_region: (i + 1, n),
                    });
                }
            "other"
                // Patterns 4/5: `…, and other NP` / `…, or other NP`.
                // Exclude the distractor construction "other than".
                if i > 0
                    && i + 1 < n
                    && (words[i - 1] == "and" || words[i - 1] == "or")
                    && words[i + 1] != "than"
                    && i >= 2
                => {
                    let kind = if words[i - 1] == "and" {
                        PatternKind::AndOther
                    } else {
                        PatternKind::OrOther
                    };
                    return Some(PatternMatch {
                        kind,
                        keywords: (i - 1, i + 1),
                        super_region: (i + 1, n),
                        list_region: (0, i - 1),
                    });
                }
            _ => {}
        }
    }
    None
}

/// A part-of (meronymy) construction: negative isA evidence (§4.1,
/// "B is comprised of A, C, and …").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartOfMatch {
    /// Token range holding the whole (the would-be super-concept).
    pub super_region: (usize, usize),
    /// Token range holding the parts list.
    pub list_region: (usize, usize),
}

/// Locate a part-of construction ("comprised of", "composed of",
/// "consists of").
pub fn find_partof(tagged: &[TaggedToken]) -> Option<PartOfMatch> {
    let n = tagged.len();
    let words: Vec<String> = tagged.iter().map(lower).collect();
    for i in 0..n.saturating_sub(1) {
        let head = words[i].as_str();
        if (head == "comprised" || head == "composed" || head == "consists" || head == "consist")
            && words[i + 1] == "of"
            && i > 0
            && i + 2 < n
        {
            return Some(PartOfMatch {
                super_region: (0, i),
                list_region: (i + 2, n),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_text::{tag_tokens, tokenize, Lexicon};

    fn m(s: &str) -> Option<PatternMatch> {
        let tagged = tag_tokens(&tokenize(s), &Lexicon::default());
        find_pattern(&tagged)
    }

    #[test]
    fn detects_such_as() {
        let pm = m("animals such as cats and dogs").unwrap();
        assert_eq!(pm.kind, PatternKind::SuchAs);
        assert_eq!(pm.super_region, (0, 1));
        assert_eq!(pm.list_region, (3, 6));
    }

    #[test]
    fn detects_such_np_as() {
        let pm = m("such tropical countries as Singapore and Malaysia").unwrap();
        assert_eq!(pm.kind, PatternKind::SuchNpAs);
        assert_eq!(pm.super_region, (1, 3));
    }

    #[test]
    fn detects_including() {
        let pm = m("classic movies , including Casablanca").unwrap();
        assert_eq!(pm.kind, PatternKind::Including);
        assert_eq!(pm.super_region.1, 3);
    }

    #[test]
    fn detects_and_other_and_or_other() {
        let pm = m("China , Japan , and other countries").unwrap();
        assert_eq!(pm.kind, PatternKind::AndOther);
        // list region excludes the "and".
        assert_eq!(pm.list_region, (0, 4));
        let pm = m("influenza , or other diseases").unwrap();
        assert_eq!(pm.kind, PatternKind::OrOther);
    }

    #[test]
    fn detects_especially_only_after_comma() {
        let pm = m("european countries , especially Germany and France").unwrap();
        assert_eq!(pm.kind, PatternKind::Especially);
        assert!(m("the price is especially high").is_none());
    }

    #[test]
    fn other_than_is_not_and_other() {
        // "animals other than dogs such as cats": the "such as" must win and
        // "other than" must not register as pattern 4.
        let pm = m("animals other than dogs such as cats").unwrap();
        assert_eq!(pm.kind, PatternKind::SuchAs);
        assert_eq!(pm.super_region, (0, 4)); // includes the distractor NP
    }

    #[test]
    fn no_pattern_in_plain_prose() {
        assert!(m("the history of coffee is long and well documented").is_none());
        assert!(m("prices rose sharply this quarter").is_none());
    }

    #[test]
    fn such_as_requires_both_sides() {
        assert!(m("such as cats").is_none());
        assert!(m("animals such as").is_none());
    }

    #[test]
    fn first_pattern_wins() {
        // Both "such as" and "and other" present; "such as" comes first.
        let pm = m("pets such as cats , dogs , and other animals").unwrap();
        assert_eq!(pm.kind, PatternKind::SuchAs);
    }

    #[test]
    fn and_other_requires_preceding_list() {
        // "and other" opening a sentence has no list to its left.
        assert!(m("and other things happened").is_none());
    }

    #[test]
    fn partof_detection() {
        let tagged = tag_tokens(
            &tokenize("cars are comprised of wheels, engines."),
            &Lexicon::default(),
        );
        let pm = find_partof(&tagged).unwrap();
        assert_eq!(pm.super_region, (0, 2));
        assert_eq!(pm.list_region, (4, tagged.len()));
        let tagged = tag_tokens(
            &tokenize("a meal consists of several courses."),
            &Lexicon::default(),
        );
        assert!(find_partof(&tagged).is_some());
        let tagged = tag_tokens(&tokenize("animals such as cats."), &Lexicon::default());
        assert!(find_partof(&tagged).is_none());
    }
}
