//! Parallel extraction driver.
//!
//! The paper ran extraction as a Map-Reduce job over sentence shards (§5:
//! "7 hours and 10 machines to find all the isA pairs"). This driver
//! reproduces that dataflow at laptop scale with `crossbeam` scoped
//! threads: each iteration maps the semantic procedures over sentence
//! shards against a *frozen* Γ snapshot, then reduces the proposals into Γ
//! serially, in sentence order, so results are deterministic for a fixed
//! thread-count-independent input.
//!
//! Semantics differ slightly from the serial driver — within one round,
//! sentences do not see each other's commits — exactly as mappers do not
//! share state in Map-Reduce. Both drivers converge to a fixpoint of the
//! same shape; the evaluation uses whichever is configured.

use crate::iterate::{
    collect_sentences, commit, detect_one, prepare, ExtractionOutput, ExtractorConfig,
    IterationStats,
};
use crate::knowledge::Knowledge;
use crate::obs::ExtractObs;
use probase_corpus::sentence::SentenceRecord;
use probase_obs::Registry;
use probase_text::Lexicon;

/// Run iterative extraction with `threads` worker threads, reporting
/// `extract.*` metrics to the process-global registry.
pub fn extract_parallel(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    cfg: &ExtractorConfig,
    threads: usize,
) -> ExtractionOutput {
    extract_parallel_observed(records, lexicon, cfg, threads, probase_obs::global())
}

/// [`extract_parallel`] with an explicit metric registry (tests and
/// benches use isolated registries for exact counter reads).
pub fn extract_parallel_observed(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    cfg: &ExtractorConfig,
    threads: usize,
    registry: &Registry,
) -> ExtractionOutput {
    let obs = ExtractObs::new(registry);
    let threads = threads.max(1);
    let mut g = Knowledge::new();
    obs.sentences_parsed.add(records.len() as u64);
    let mut parsed = prepare(records, lexicon, cfg, &mut g);
    let mut evidence = Vec::new();
    let mut iterations = Vec::new();

    let max_iters = cfg.max_iterations.max(1);
    for iteration in 1..=max_iters {
        let _round_span = obs.iteration.span();
        obs.rounds.inc();
        // Map phase: detect against frozen Γ.
        let active: Vec<usize> = (0..parsed.len()).filter(|&i| !parsed[i].done).collect();
        let chunk = active.len().div_ceil(threads).max(1);
        let mut proposals: Vec<(usize, crate::iterate::Proposal)> = Vec::new();
        {
            let g_ref = &g;
            let parsed_ref = &parsed;
            let results = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for shard in active.chunks(chunk) {
                    handles.push(scope.spawn(move |_| {
                        shard
                            .iter()
                            .filter_map(|&i| detect_one(&parsed_ref[i], g_ref, cfg).map(|p| (i, p)))
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("crossbeam scope");
            proposals.extend(results);
        }
        // Reduce phase: commit in sentence order for determinism.
        proposals.sort_by_key(|(i, _)| *i);
        let mut new_occurrences = 0u64;
        for (i, proposal) in proposals {
            obs.pairs_proposed.add(proposal.chosen.len() as u64);
            new_occurrences += commit(&mut parsed[i], proposal, &mut g, &mut evidence);
        }
        obs.pairs_committed.add(new_occurrences);
        let resolved = parsed.iter().filter(|p| p.resolved.is_some()).count();
        iterations.push(IterationStats {
            iteration,
            new_occurrences,
            distinct_pairs: g.pair_count(),
            distinct_concepts: g.concept_count(),
            sentences_resolved: resolved,
            evidence_len: evidence.len(),
        });
        if new_occurrences == 0 {
            break;
        }
    }

    let sentences = collect_sentences(&parsed);
    ExtractionOutput {
        knowledge: g,
        evidence,
        sentences,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterate::extract;
    use probase_corpus::generator::{CorpusConfig, CorpusGenerator};
    use probase_corpus::worldgen::{generate, WorldConfig};

    #[test]
    fn parallel_matches_requested_shape() {
        let world = generate(&WorldConfig::small(21));
        let corpus = CorpusGenerator::new(
            &world,
            CorpusConfig {
                seed: 21,
                sentences: 1500,
                ..CorpusConfig::default()
            },
        )
        .generate_all();
        let out = extract_parallel(&corpus, &world.lexicon, &ExtractorConfig::paper(), 4);
        assert!(
            out.knowledge.pair_count() > 50,
            "pairs: {}",
            out.knowledge.pair_count()
        );
        assert!(!out.evidence.is_empty());
        assert!(!out.sentences.is_empty());
    }

    #[test]
    fn parallel_is_deterministic_across_thread_counts() {
        let world = generate(&WorldConfig::small(22));
        let corpus = CorpusGenerator::new(
            &world,
            CorpusConfig {
                seed: 22,
                sentences: 800,
                ..CorpusConfig::default()
            },
        )
        .generate_all();
        let a = extract_parallel(&corpus, &world.lexicon, &ExtractorConfig::paper(), 1);
        let b = extract_parallel(&corpus, &world.lexicon, &ExtractorConfig::paper(), 8);
        assert_eq!(a.knowledge.pair_count(), b.knowledge.pair_count());
        assert_eq!(a.evidence.len(), b.evidence.len());
        assert_eq!(a.sentences, b.sentences);
    }

    #[test]
    fn parallel_close_to_serial() {
        // Frozen-Γ rounds converge to nearly the same knowledge as the
        // serial driver; allow a small relative gap.
        let world = generate(&WorldConfig::small(23));
        let corpus = CorpusGenerator::new(
            &world,
            CorpusConfig {
                seed: 23,
                sentences: 1000,
                ..CorpusConfig::default()
            },
        )
        .generate_all();
        let s = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
        let p = extract_parallel(&corpus, &world.lexicon, &ExtractorConfig::paper(), 4);
        let (a, b) = (
            s.knowledge.pair_count() as f64,
            p.knowledge.pair_count() as f64,
        );
        let gap = (a - b).abs() / a.max(1.0);
        assert!(gap < 0.15, "serial {a} vs parallel {b}");
    }
}
