//! # probase-extract
//!
//! The paper's first contribution: *iterative, semantic* isA extraction
//! from Hearst-pattern sentences (SIGMOD 2012 §2, Algorithm 1).
//!
//! Unlike syntactic-bootstrapping extractors (KnowItAll, TextRunner,
//! NELL), Probase keeps the pattern set fixed — the six Hearst patterns of
//! Table 2 — and grows its *knowledge* Γ instead. Each iteration uses the
//! pairs already in Γ to resolve the ambiguities syntax alone cannot:
//!
//! * which plural NP is the super-concept ("animals other than **dogs**
//!   such as cats") — [`superc`];
//! * where the sub-concept list ends (", Europe, and other countries") and
//!   whether a conjunction is a delimiter or part of a name ("Proctor and
//!   Gamble") — [`subc`];
//! * sentences undecidable this round are retried when Γ is richer —
//!   [`iterate`] (serial) and [`parallel`] (sharded Map-Reduce style).
//!
//! Outputs: the knowledge store Γ ([`knowledge::Knowledge`]), a
//! per-occurrence evidence log for the probabilistic layer
//! ([`evidence::EvidenceRecord`]), and per-sentence extraction groups for
//! taxonomy construction ([`iterate::SentenceExtraction`]).

pub mod evidence;
pub mod input;
pub mod iterate;
pub mod knowledge;
mod obs;
pub mod parallel;
pub mod pattern;
pub mod persist;
pub mod subc;
pub mod superc;
pub mod syntactic;

pub use evidence::{group_by_pair, EvidenceRecord, PairEvidence};
pub use input::{records_from_documents, RawDocument};
pub use iterate::{
    extract, extract_observed, ExtractionOutput, Extractor, ExtractorConfig, IterationStats,
    SentenceExtraction,
};
pub use knowledge::Knowledge;
pub use parallel::{extract_parallel, extract_parallel_observed};
pub use pattern::{find_partof, find_pattern, PartOfMatch, PatternMatch};
pub use persist::{knowledge_from_bytes, knowledge_to_bytes, PersistError};
pub use subc::{detect_subs, ChosenItem, SubConfig};
pub use superc::{detect_super, SuperConfig, SuperDecision};
pub use syntactic::{normalize_sub, syntactic_extract, SegmentCandidates, SyntacticExtraction};
