//! Pre-resolved `extract.*` metric handles.
//!
//! Both drivers ([`crate::iterate`] serial, [`crate::parallel`]
//! Map-Reduce style) report through the same handle set so their counters
//! are directly comparable — the integration tests assert the two drivers
//! commit identical pair counts on corpora where their fixpoints agree.

use probase_obs::{Counter, Registry, Stage};
use std::sync::Arc;

/// Handles for the extraction pipeline, registered under `extract.*`.
pub(crate) struct ExtractObs {
    /// Sentences scanned by the parse pre-pass (`extract.sentences_parsed`).
    pub(crate) sentences_parsed: Arc<Counter>,
    /// Pair occurrences proposed by the semantic procedures, before
    /// commit-time filtering (`extract.pairs_proposed`).
    pub(crate) pairs_proposed: Arc<Counter>,
    /// Pair occurrences committed into Γ — equals the evidence-log growth
    /// (`extract.pairs_committed`).
    pub(crate) pairs_committed: Arc<Counter>,
    /// Semantic rounds run; reaches the fixpoint count after a full run
    /// (`extract.rounds`).
    pub(crate) rounds: Arc<Counter>,
    /// Wall time of each semantic round (`extract.iteration`).
    pub(crate) iteration: Arc<Stage>,
}

impl ExtractObs {
    pub(crate) fn new(registry: &Registry) -> Self {
        Self {
            sentences_parsed: registry.counter("extract.sentences_parsed"),
            pairs_proposed: registry.counter("extract.pairs_proposed"),
            pairs_committed: registry.counter("extract.pairs_committed"),
            rounds: registry.counter("extract.rounds"),
            iteration: registry.stage("extract.iteration"),
        }
    }
}
