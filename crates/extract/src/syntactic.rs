//! Procedure `SyntacticExtraction` (paper §2.3.1).
//!
//! From a sentence that matches a Hearst pattern, produce:
//!
//! * `Xs` — candidate super-concepts: *all plural noun phrases* in the
//!   pattern's super region (not just the closest NP — "animals other than
//!   dogs such as cats" puts both `animals` and `dogs` in `Xs`);
//! * `Ys` — candidate sub-concepts, kept deliberately inclusive: comma
//!   segments of the list region, where ambiguous segments carry several
//!   *readings*:
//!   * a conjunction segment (`"Proctor and Gamble"`) reads as one item or
//!     as a split pair (§2.3.3);
//!   * the segment farthest from the keywords may have prose glued to it
//!     (`"cats in recent years"`, `"many experts recommend lions"`), so it
//!     also reads at several cut points.
//!
//! Disambiguation is *not* done here — that is the job of the semantic
//! procedures (`superc`, `subc`), which consult Γ.

use crate::pattern::{find_pattern, PatternMatch};
use probase_corpus::sentence::PatternKind;
use probase_text::{normalize_instance, Chunker, Lexicon, NounPhrase, Tag, TaggedToken};
use probase_text::{tag_tokens, tokenize};

/// A candidate sub-concept position with its alternative readings.
///
/// Readings are alternatives; each reading is the list of item strings the
/// position contributes if that reading is chosen (one item, or two when a
/// conjunction splits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCandidates {
    /// Raw trimmed text of the segment.
    pub raw: String,
    /// Alternative readings, most-inclusive first.
    pub readings: Vec<Vec<String>>,
}

/// Output of syntactic extraction.
#[derive(Debug, Clone)]
pub struct SyntacticExtraction {
    pub pattern: PatternKind,
    /// Candidate super-concept noun phrases (all plural NPs in the super
    /// region), in document order.
    pub supers: Vec<NounPhrase>,
    /// Sub-concept positions ordered by *closeness to the pattern
    /// keywords* (position 1 first — Observation 1/2 numbering).
    pub segments: Vec<SegmentCandidates>,
}

/// Maximum tokens in a candidate item.
const MAX_ITEM_TOKENS: usize = 8;
/// Maximum alternative readings per segment.
const MAX_READINGS: usize = 6;

/// Run syntactic extraction on a raw sentence. Returns `None` when no
/// Hearst pattern is present or no candidate super-concept/list exists.
pub fn syntactic_extract(
    sentence: &str,
    lexicon: &Lexicon,
    chunker: &Chunker,
) -> Option<SyntacticExtraction> {
    let tagged = tag_tokens(&tokenize(sentence), lexicon);
    let pm = find_pattern(&tagged)?;
    extract_from_match(&tagged, &pm, chunker)
}

/// Syntactic extraction when the pattern match is already known (lets the
/// iteration driver parse each sentence exactly once).
pub fn extract_from_match(
    tagged: &[TaggedToken],
    pm: &PatternMatch,
    chunker: &Chunker,
) -> Option<SyntacticExtraction> {
    let supers = super_candidates(tagged, pm, chunker);
    if supers.is_empty() {
        return None;
    }
    let segments = list_segments(tagged, pm);
    if segments.is_empty() {
        return None;
    }
    Some(SyntacticExtraction {
        pattern: pm.kind,
        supers,
        segments,
    })
}

/// Candidate super-concepts: plural NPs in the super region. Every element
/// of `Xs` must be a plural noun phrase (paper §2.3.1).
fn super_candidates(
    tagged: &[TaggedToken],
    pm: &PatternMatch,
    chunker: &Chunker,
) -> Vec<NounPhrase> {
    let (s, e) = pm.super_region;
    let region = &tagged[s..e];
    let mut phrases = chunker.chunk(region);
    phrases.retain(|p| p.head_plural);
    // Keep spans relative to the full sentence.
    for p in &mut phrases {
        p.start += s;
        p.end += s;
    }
    match pm.kind {
        // Reverse patterns: the super is the *first* plural NP after the
        // keywords; anything later is trailing prose.
        PatternKind::AndOther | PatternKind::OrOther => phrases.into_iter().take(1).collect(),
        _ => phrases,
    }
}

fn is_boundary_tag(tag: Tag) -> bool {
    matches!(tag, Tag::Prep | Tag::Verb | Tag::Adv | Tag::Pron | Tag::Det)
}

/// Split the list region into comma segments and build readings.
fn list_segments(tagged: &[TaggedToken], pm: &PatternMatch) -> Vec<SegmentCandidates> {
    let (s, e) = pm.list_region;
    let reverse = matches!(pm.kind, PatternKind::AndOther | PatternKind::OrOther);

    // Comma/semicolon split; a period ends the list.
    let mut raw_segments: Vec<Vec<&TaggedToken>> = Vec::new();
    let mut current: Vec<&TaggedToken> = Vec::new();
    'outer: for t in &tagged[s..e] {
        match t.tag {
            Tag::Punct => match t.token.text.as_str() {
                "," | ";" if !current.is_empty() => {
                    raw_segments.push(std::mem::take(&mut current));
                }
                "." | "!" | "?" => {
                    break 'outer;
                }
                _ => {}
            },
            _ => current.push(t),
        }
    }
    if !current.is_empty() {
        raw_segments.push(current);
    }
    if raw_segments.is_empty() {
        return Vec::new();
    }

    // Position 1 = nearest the keywords. For forward patterns that is the
    // first segment; for reverse patterns the last. The *farthest* segment
    // is the one prose may be glued to.
    let n = raw_segments.len();
    let mut out = Vec::with_capacity(n);
    for (idx, seg) in raw_segments.iter().enumerate() {
        let is_outer = if reverse { idx == 0 } else { idx == n - 1 };
        if let Some(cand) = segment_candidates(seg, is_outer, reverse) {
            out.push((idx, cand));
        }
    }
    if reverse {
        out.reverse();
    }
    out.into_iter().map(|(_, c)| c).collect()
}

/// Build the alternative readings of one segment.
fn segment_candidates(
    seg: &[&TaggedToken],
    is_outer: bool,
    reverse: bool,
) -> Option<SegmentCandidates> {
    if seg.is_empty() {
        return None;
    }
    let raw = join(seg);
    if raw.is_empty() {
        return None;
    }

    // Candidate token spans after boundary cutting.
    let mut spans: Vec<&[&TaggedToken]> = Vec::new();
    spans.push(seg);
    if is_outer {
        if reverse {
            // Prose may precede the item: cut after each boundary token.
            for (i, t) in seg.iter().enumerate() {
                if is_boundary_tag(t.tag) && i + 1 < seg.len() {
                    spans.push(&seg[i + 1..]);
                }
            }
        } else {
            // Prose may follow the item: cut before each boundary token.
            for (i, t) in seg.iter().enumerate() {
                if is_boundary_tag(t.tag) && i > 0 {
                    spans.push(&seg[..i]);
                }
            }
        }
    }

    let mut readings: Vec<Vec<String>> = Vec::new();
    for span in spans {
        if span.is_empty() || span.len() > MAX_ITEM_TOKENS {
            continue;
        }
        // An item cannot start with a verb, adverb, pronoun, preposition,
        // or conjunction. A leading determiner is allowed only when it
        // introduces a name ("the Alps", "the Louvre").
        let starts_ok = match span[0].tag {
            Tag::Adj | Tag::Noun { .. } | Tag::Num => true,
            Tag::Det => span.len() >= 2 && matches!(span[1].tag, Tag::Adj | Tag::Noun { .. }),
            _ => false,
        };
        if !starts_ok {
            continue;
        }
        // No finite verb can occur inside an isA list item — "cats are
        // popular" is a clause, not an instance name. Dropping such spans
        // lets the verbless cut reading win even with an empty Γ.
        if span.iter().any(|t| t.tag == Tag::Verb) {
            continue;
        }
        // Joined reading.
        push_reading(&mut readings, vec![join(span)]);
        // Split readings at each conjunction ("Stonndranx and Sanrwanrk
        // and MySpace" may break at either "and").
        for (ci, t) in span.iter().enumerate() {
            if t.tag != Tag::Conj || ci == 0 || ci + 1 >= span.len() {
                continue;
            }
            let left = join(&span[..ci]);
            let right = join(&span[ci + 1..]);
            if !left.is_empty() && !right.is_empty() {
                push_reading(&mut readings, vec![left, right]);
            }
        }
        if readings.len() >= MAX_READINGS {
            break;
        }
    }

    readings.retain(|r| r.iter().all(|item| well_formed(item)));
    if readings.is_empty() {
        return None;
    }
    Some(SegmentCandidates { raw, readings })
}

fn push_reading(readings: &mut Vec<Vec<String>>, reading: Vec<String>) {
    let reading: Vec<String> = reading.iter().map(|i| normalize_sub(i)).collect();
    if !readings.contains(&reading) && readings.len() < MAX_READINGS {
        readings.push(reading);
    }
}

/// Canonicalize a candidate sub-concept item.
///
/// Items that contain a capitalized word are proper names or titles
/// ("Proctor and Gamble", "the Alps") and are kept verbatim. All-lowercase
/// items are common-noun phrases — plural-rendered instances ("cats") or
/// sub-concept mentions ("domestic animals") — and are put in canonical
/// concept form (lowercase, singular head), so a phrase extracted as a sub
/// matches the same phrase extracted as a super, which is what vertical
/// merging in the taxonomy layer keys on.
pub fn normalize_sub(item: &str) -> String {
    let has_capital = item
        .split_whitespace()
        .any(|w| w.chars().next().is_some_and(|c| c.is_uppercase()));
    if has_capital {
        normalize_instance(item)
    } else {
        probase_text::normalize_concept(item)
    }
}

fn join(tokens: &[&TaggedToken]) -> String {
    normalize_instance(
        &tokens
            .iter()
            .map(|t| t.token.text.as_str())
            .collect::<Vec<_>>()
            .join(" "),
    )
}

/// Basic item sanity: non-empty, not a lone function word, not "etc".
fn well_formed(item: &str) -> bool {
    if item.is_empty() {
        return false;
    }
    let lower = item.to_lowercase();
    if lower == "etc" || lower == "etcetera" || lower == "others" || lower == "more" {
        return false;
    }
    // Must contain at least one alphabetic character.
    item.chars().any(|c| c.is_alphabetic())
}

/// Does a reading item still contain a conjunction word? Used by
/// sub-concept detection's "well formed" fallback test (§2.3.3: y1 must
/// not contain delimiters such as "and" or "or").
pub fn contains_conjunction(item: &str) -> bool {
    item.split_whitespace().any(|w| {
        let l = w.to_lowercase();
        l == "and" || l == "or"
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(s: &str) -> SyntacticExtraction {
        syntactic_extract(s, &Lexicon::default(), &Chunker::default())
            .unwrap_or_else(|| panic!("no extraction from {s:?}"))
    }

    fn super_texts(e: &SyntacticExtraction) -> Vec<String> {
        e.supers.iter().map(|p| p.text()).collect()
    }

    #[test]
    fn simple_such_as() {
        let e = x("animals such as cats, dogs and horses.");
        assert_eq!(super_texts(&e), ["animals"]);
        // Comma split yields "cats" and "dogs and horses"; common-noun items
        // are canonicalized to singular form.
        assert_eq!(e.segments.len(), 2);
        assert_eq!(e.segments[0].readings, vec![vec!["cat".to_string()]]);
        let last = &e.segments[1];
        assert!(last
            .readings
            .contains(&vec!["dog".to_string(), "horse".to_string()]));
    }

    #[test]
    fn other_than_gives_two_super_candidates() {
        let e = x("we studied animals other than dogs such as cats.");
        assert_eq!(super_texts(&e), ["animals", "dogs"]);
    }

    #[test]
    fn conjunction_segment_has_join_and_split_readings() {
        let e = x("companies such as IBM, Nokia, Proctor and Gamble.");
        let last = e.segments.last().unwrap();
        assert!(last
            .readings
            .contains(&vec!["Proctor and Gamble".to_string()]));
        assert!(last
            .readings
            .contains(&vec!["Proctor".to_string(), "Gamble".to_string()]));
    }

    #[test]
    fn outer_segment_gets_cut_readings_forward() {
        let e = x("tropical countries such as Singapore, Malaysia in recent years.");
        let last = e.segments.last().unwrap();
        // Full reading and the cut before "in".
        assert!(last
            .readings
            .contains(&vec!["Malaysia in recent years".to_string()]));
        assert!(last.readings.contains(&vec!["Malaysia".to_string()]));
    }

    #[test]
    fn and_other_positions_reversed() {
        let e = x("many experts recommend China, Japan, and other countries.");
        assert_eq!(super_texts(&e), ["countries"]);
        // Position 1 = "Japan" (nearest to "and other").
        assert_eq!(e.segments[0].readings[0], vec!["Japan".to_string()]);
        // Farthest position carries the prose cut.
        let far = e.segments.last().unwrap();
        assert!(far.readings.contains(&vec!["China".to_string()]), "{far:?}");
    }

    #[test]
    fn title_instances_survive_as_full_reading() {
        let e = x("classic movies such as Gone with the Wind.");
        let seg = &e.segments[0];
        assert!(
            seg.readings
                .contains(&vec!["Gone with the Wind".to_string()]),
            "{seg:?}"
        );
        // The cut reading "Gone" is also offered; semantics must choose.
        assert!(seg.readings.contains(&vec!["Gone".to_string()]));
    }

    #[test]
    fn non_plural_supers_rejected() {
        // "Japan" is singular, so it cannot be a super candidate; "countries"
        // still qualifies.
        let e = x("countries other than Japan such as USA.");
        assert_eq!(super_texts(&e), ["countries"]);
    }

    #[test]
    fn no_pattern_returns_none() {
        assert!(syntactic_extract(
            "the history of coffee is long.",
            &Lexicon::default(),
            &Chunker::default()
        )
        .is_none());
    }

    #[test]
    fn etc_is_filtered() {
        let e = x("fruits such as apples, oranges, etc.");
        assert_eq!(e.segments.len(), 2);
    }

    #[test]
    fn prefixed_prose_adds_distractor_super() {
        let e = x("many experts recommend tropical countries such as Singapore.");
        let texts = super_texts(&e);
        assert!(texts.contains(&"experts".to_string()));
        assert!(texts.contains(&"tropical countries".to_string()));
    }

    #[test]
    fn contains_conjunction_helper() {
        assert!(contains_conjunction("Proctor and Gamble"));
        assert!(!contains_conjunction("IBM"));
        assert!(!contains_conjunction("Sandy Beach")); // substring, not word
    }
}
