//! Raw-document ingestion.
//!
//! The simulation produces [`SentenceRecord`]s directly, but a downstream
//! user has *documents* — pages of prose with some notion of source
//! quality. This module is the adapter: split a document into sentences
//! (via `probase_text::split_sentences`) and wrap each with the page's
//! metadata, ready for [`crate::extract`] or [`crate::Extractor`].

use probase_corpus::sentence::{SentenceRecord, SentenceTruth, SourceMeta};
use probase_text::split_sentences;

/// A raw input document.
#[derive(Debug, Clone)]
pub struct RawDocument {
    /// Stable identifier of the page/document.
    pub page_id: u64,
    /// Full text; will be sentence-split.
    pub text: String,
    /// PageRank-style importance in `[0, 1]` (0.5 if unknown).
    pub page_rank: f64,
    /// Source credibility in `[0, 1]` (0.5 if unknown).
    pub source_quality: f64,
}

impl RawDocument {
    /// A document with neutral metadata.
    pub fn new(page_id: u64, text: impl Into<String>) -> Self {
        Self {
            page_id,
            text: text.into(),
            page_rank: 0.5,
            source_quality: 0.5,
        }
    }
}

/// Split documents into sentence records. Sentence ids are assigned
/// densely starting at `first_id` (pass the current corpus length when
/// feeding an incremental [`crate::Extractor`]).
pub fn records_from_documents(docs: &[RawDocument], first_id: u64) -> Vec<SentenceRecord> {
    let mut out = Vec::new();
    let mut id = first_id;
    for doc in docs {
        let meta = SourceMeta {
            page_id: doc.page_id,
            page_rank: doc.page_rank.clamp(0.0, 1.0),
            source_quality: doc.source_quality.clamp(0.0, 1.0),
        };
        for sentence in split_sentences(&doc.text) {
            out.push(SentenceRecord {
                id,
                text: sentence,
                meta,
                truth: SentenceTruth::default(),
            });
            id += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract, ExtractorConfig};
    use probase_text::Lexicon;

    #[test]
    fn documents_split_and_carry_metadata() {
        let docs = vec![
            RawDocument {
                page_id: 7,
                text: "Animals such as cats. Companies such as IBM.".into(),
                page_rank: 0.9,
                source_quality: 0.8,
            },
            RawDocument::new(8, "No pattern here."),
        ];
        let records = records_from_documents(&docs, 100);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].id, 100);
        assert_eq!(records[2].id, 102);
        assert_eq!(records[0].meta.page_id, 7);
        assert!((records[0].meta.source_quality - 0.8).abs() < 1e-12);
        assert!((records[2].meta.source_quality - 0.5).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_from_raw_text() {
        let page = "Animals such as cats are popular. Animals such as cats are known. \
                    Animals such as cats and horses are loved. \
                    Domestic animals such as cats and dogs are popular.";
        let docs = vec![RawDocument::new(1, page)];
        let records = records_from_documents(&docs, 0);
        assert_eq!(records.len(), 4);
        let out = extract(&records, &Lexicon::default(), &ExtractorConfig::paper());
        let g = &out.knowledge;
        let animal = g.lookup("animal").expect("animal extracted");
        let cat = g.lookup("cat").expect("cat extracted");
        assert!(g.count(animal, cat) >= 2, "count {}", g.count(animal, cat));
        // The specific concept from the last sentence is harvested too.
        let dom = g
            .lookup("domestic animal")
            .expect("domestic animal extracted");
        assert!(g.count(dom, cat) >= 1);
    }

    #[test]
    fn metadata_clamped() {
        let docs = vec![RawDocument {
            page_id: 1,
            text: "x.".into(),
            page_rank: 7.0,
            source_quality: -1.0,
        }];
        let records = records_from_documents(&docs, 0);
        assert_eq!(records[0].meta.page_rank, 1.0);
        assert_eq!(records[0].meta.source_quality, 0.0);
    }
}
