//! Procedure `SuperConceptDetection` (paper §2.3.2).
//!
//! When syntactic extraction finds more than one candidate super-concept
//! (e.g. `Xs = {animals, dogs}` for "animals other than dogs such as
//! cats"), the correct one is chosen by a likelihood-ratio test against
//! the knowledge Γ:
//!
//! ```text
//! r(x1, x2) = p(x1) ∏ p(yi | x1)  /  p(x2) ∏ p(yi | x2)
//! ```
//!
//! with ε-smoothing for unseen pairs. When a multiword candidate is
//! unknown to Γ, its *modifier is stripped* and the more general concept's
//! statistics stand in — this is how Probase harvests specific concepts
//! like "domestic animals" before ever seeing them as supers.

use crate::knowledge::Knowledge;
use crate::syntactic::SegmentCandidates;
use probase_text::{normalize_concept, NounPhrase};

/// Configuration of the likelihood-ratio test.
#[derive(Debug, Clone)]
pub struct SuperConfig {
    /// ε-smoothing for unseen pairs/concepts.
    pub eps: f64,
    /// Minimum ratio between best and second-best candidate to decide.
    pub ratio_threshold: f64,
}

impl Default for SuperConfig {
    fn default() -> Self {
        Self {
            eps: 1e-5,
            ratio_threshold: 4.0,
        }
    }
}

/// Outcome of super-concept detection.
#[derive(Debug, Clone, PartialEq)]
pub enum SuperDecision {
    /// Candidate at this index wins. The second field is the *statistics
    /// label*: the (possibly modifier-stripped) concept whose Γ statistics
    /// backed the decision and should also back sub-concept detection.
    Chosen { index: usize, stats_label: String },
    /// Γ cannot separate the top candidates yet; retry next iteration.
    Undecided,
}

/// Score a single candidate: `ln p(x) + Σ_j ln p(y_j | x)`, where each
/// position contributes its best reading item. Returns the score and the
/// label whose statistics were used (after modifier stripping).
fn score_candidate(
    np: &NounPhrase,
    segments: &[SegmentCandidates],
    g: &Knowledge,
    eps: f64,
) -> (f64, String) {
    let stats_label = stats_label_for(np, g);
    let x = g.lookup(&stats_label);
    let p_x = match x {
        Some(sym) => g.p_super(sym, eps),
        None => eps,
    };
    let mut score = p_x.ln();
    for seg in segments {
        let mut best = eps;
        if let Some(sym) = x {
            for reading in &seg.readings {
                for item in reading {
                    if let Some(y) = g.lookup(item) {
                        let p = g.p_sub_given_super(y, sym, eps);
                        if p > best {
                            best = p;
                        }
                    }
                }
            }
        }
        score += best.ln();
    }
    (score, stats_label)
}

/// The label whose Γ statistics represent this phrase: the phrase itself
/// if Γ knows it as a super-concept, otherwise the nearest generalization
/// obtained by stripping leading modifiers (§2.3.2).
fn stats_label_for(np: &NounPhrase, g: &Knowledge) -> String {
    let mut fallback: Option<String> = None;
    for gen in np.generalizations() {
        let label = normalize_concept(&gen.text());
        if fallback.is_none() {
            fallback = Some(label.clone());
        }
        if let Some(sym) = g.lookup(&label) {
            if g.super_total(sym) > 0 {
                return label;
            }
        }
    }
    fallback.expect("noun phrase has at least one generalization")
}

/// Run super-concept detection over the candidates.
///
/// * A single candidate is chosen unconditionally (Algorithm 1 line 8).
/// * With several, the two highest-scoring candidates are compared; the
///   best wins only if the likelihood ratio clears the threshold.
pub fn detect_super(
    supers: &[NounPhrase],
    segments: &[SegmentCandidates],
    g: &Knowledge,
    cfg: &SuperConfig,
) -> SuperDecision {
    assert!(
        !supers.is_empty(),
        "detect_super needs at least one candidate"
    );
    if supers.len() == 1 {
        let stats_label = stats_label_for(&supers[0], g);
        return SuperDecision::Chosen {
            index: 0,
            stats_label,
        };
    }
    let scored: Vec<(f64, String)> = supers
        .iter()
        .map(|np| score_candidate(np, segments, g, cfg.eps))
        .collect();
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| {
        scored[b]
            .0
            .partial_cmp(&scored[a].0)
            .expect("finite scores")
    });
    let (best, second) = (order[0], order[1]);
    let ratio = (scored[best].0 - scored[second].0).exp();
    if ratio >= cfg.ratio_threshold {
        SuperDecision::Chosen {
            index: best,
            stats_label: scored[best].1.clone(),
        }
    } else {
        SuperDecision::Undecided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn np(words: &[&str]) -> NounPhrase {
        NounPhrase {
            words: words.iter().map(|w| w.to_string()).collect(),
            start: 0,
            end: words.len(),
            head_plural: true,
            proper: false,
        }
    }

    fn seg(items: &[&str]) -> SegmentCandidates {
        SegmentCandidates {
            raw: items.join(" "),
            readings: items.iter().map(|i| vec![i.to_string()]).collect(),
        }
    }

    fn knowledge_with_animals() -> Knowledge {
        let mut g = Knowledge::new();
        let animal = g.intern("animal");
        let cat = g.intern("cat");
        let dog = g.intern("dog");
        for _ in 0..20 {
            g.add_pair(animal, cat);
        }
        for _ in 0..10 {
            g.add_pair(animal, dog);
        }
        g
    }

    #[test]
    fn single_candidate_always_chosen() {
        let g = Knowledge::new();
        let d = detect_super(
            &[np(&["animals"])],
            &[seg(&["cat"])],
            &g,
            &SuperConfig::default(),
        );
        assert_eq!(
            d,
            SuperDecision::Chosen {
                index: 0,
                stats_label: "animal".into()
            }
        );
    }

    #[test]
    fn knowledge_resolves_other_than_ambiguity() {
        // Xs = {animals, dogs}, list = [cat]: Γ knows (animal, cat) well,
        // so "animals" must win.
        let g = knowledge_with_animals();
        let d = detect_super(
            &[np(&["animals"]), np(&["dogs"])],
            &[seg(&["cat"])],
            &g,
            &SuperConfig::default(),
        );
        assert_eq!(
            d,
            SuperDecision::Chosen {
                index: 0,
                stats_label: "animal".into()
            }
        );
    }

    #[test]
    fn empty_knowledge_is_undecided() {
        let g = Knowledge::new();
        let d = detect_super(
            &[np(&["animals"]), np(&["dogs"])],
            &[seg(&["cat"])],
            &g,
            &SuperConfig::default(),
        );
        assert_eq!(d, SuperDecision::Undecided);
    }

    #[test]
    fn modifier_stripping_backs_unknown_specific_concept() {
        // "domestic animals" unseen; its stripped form "animals" is known
        // and beats "dogs".
        let g = knowledge_with_animals();
        let d = detect_super(
            &[np(&["domestic", "animals"]), np(&["dogs"])],
            &[seg(&["cat"])],
            &g,
            &SuperConfig::default(),
        );
        match d {
            SuperDecision::Chosen { index, stats_label } => {
                assert_eq!(index, 0);
                assert_eq!(stats_label, "animal");
            }
            other => panic!("expected chosen, got {other:?}"),
        }
    }

    #[test]
    fn distractor_with_knowledge_wins_when_it_should() {
        // If Γ actually knows (dog, chihuahua) and not (animal, chihuahua),
        // then for "... dogs such as chihuahuas" inside an "other than"
        // construct, dogs should win.
        let mut g = Knowledge::new();
        let dog = g.intern("dog");
        let chi = g.intern("chihuahua");
        for _ in 0..15 {
            g.add_pair(dog, chi);
        }
        let d = detect_super(
            &[np(&["animals"]), np(&["dogs"])],
            &[seg(&["chihuahua"])],
            &g,
            &SuperConfig::default(),
        );
        assert_eq!(
            d,
            SuperDecision::Chosen {
                index: 1,
                stats_label: "dog".into()
            }
        );
    }

    #[test]
    fn ratio_threshold_controls_decision() {
        let g = knowledge_with_animals();
        // cat is 2x likelier under animal than dog is — with a huge
        // threshold we stay undecided even with knowledge.
        let d = detect_super(
            &[np(&["animals"]), np(&["dogs"])],
            &[seg(&["cat"])],
            &g,
            &SuperConfig {
                ratio_threshold: 1e12,
                ..Default::default()
            },
        );
        assert_eq!(d, SuperDecision::Undecided);
    }
}
