//! Binary persistence of the knowledge store Γ.
//!
//! Extraction over a large corpus is the expensive phase; persisting Γ
//! lets the taxonomy and probability layers (or an incremental
//! re-extraction) resume without re-reading the corpus. The format
//! mirrors the graph snapshot in `probase-store`: length-prefixed interner
//! strings followed by the counter tables.
//!
//! ```text
//! magic  u32 = 0x50424b4e ("PBKN"), version u32 = 1
//! n_strings u32, then per string: len u32 + utf8
//! total u64
//! pairs:    n u32, then (x u32, y u32, count u32)*
//! cooccur:  n u32, then (x u32, a u32, b u32, count u32)*
//! segments: n u32, then (sym u32, count u32)*
//! negative: n u32, then (x u32, y u32, count u32)*
//! ```
//!
//! Super/sub totals are recomputed on load from the pair table, so the
//! invariants between them cannot be violated by a corrupt file.

use crate::knowledge::Knowledge;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use probase_store::Symbol;

const MAGIC: u32 = 0x5042_4b4e;
const VERSION: u32 = 1;

/// Encoding/decoding errors.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    Truncated,
    BadMagic,
    BadVersion(u32),
    BadUtf8,
    BadIndex,
    /// A table or string is too large for the u32 length prefixes —
    /// encoding would silently truncate, so it is refused instead.
    TooLarge(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "knowledge snapshot truncated"),
            PersistError::BadMagic => write!(f, "bad magic number"),
            PersistError::BadVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::BadUtf8 => write!(f, "invalid utf-8"),
            PersistError::BadIndex => write!(f, "symbol out of range"),
            PersistError::TooLarge(what) => {
                write!(f, "{what} exceeds the u32 length limit")
            }
        }
    }
}

impl std::error::Error for PersistError {}

fn len_u32(n: usize, what: &'static str) -> Result<u32, PersistError> {
    u32::try_from(n).map_err(|_| PersistError::TooLarge(what))
}

/// Serialize Γ to bytes. Fails with [`PersistError::TooLarge`] rather
/// than silently truncating a table past `u32::MAX` entries.
pub fn knowledge_to_bytes(g: &Knowledge) -> Result<Bytes, PersistError> {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);

    // Interner strings in symbol order.
    let strings: Vec<&str> = g.interner_strings().collect();
    buf.put_u32_le(len_u32(strings.len(), "string table")?);
    for s in &strings {
        buf.put_u32_le(len_u32(s.len(), "interned string")?);
        buf.put_slice(s.as_bytes());
    }
    buf.put_u64_le(g.total());

    // Pairs, sorted for deterministic output.
    let mut pairs: Vec<(Symbol, Symbol, u32)> = g.pairs().collect();
    pairs.sort_unstable();
    buf.put_u32_le(len_u32(pairs.len(), "pair table")?);
    for (x, y, n) in pairs {
        buf.put_u32_le(x.0);
        buf.put_u32_le(y.0);
        buf.put_u32_le(n);
    }

    let mut cooccur: Vec<(Symbol, Symbol, Symbol, u32)> = g.cooccurrences().collect();
    cooccur.sort_unstable();
    buf.put_u32_le(len_u32(cooccur.len(), "cooccurrence table")?);
    for (x, a, b, n) in cooccur {
        buf.put_u32_le(x.0);
        buf.put_u32_le(a.0);
        buf.put_u32_le(b.0);
        buf.put_u32_le(n);
    }

    let mut segments: Vec<(Symbol, u32)> = g.segment_frequencies().collect();
    segments.sort_unstable();
    buf.put_u32_le(len_u32(segments.len(), "segment table")?);
    for (s, n) in segments {
        buf.put_u32_le(s.0);
        buf.put_u32_le(n);
    }

    let mut negatives: Vec<(Symbol, Symbol, u32)> = g.negatives().collect();
    negatives.sort_unstable();
    buf.put_u32_le(len_u32(negatives.len(), "negative table")?);
    for (x, y, n) in negatives {
        buf.put_u32_le(x.0);
        buf.put_u32_le(y.0);
        buf.put_u32_le(n);
    }
    Ok(buf.freeze())
}

fn need(buf: &impl Buf, n: usize) -> Result<(), PersistError> {
    if buf.remaining() < n {
        Err(PersistError::Truncated)
    } else {
        Ok(())
    }
}

/// Deserialize Γ from bytes written by [`knowledge_to_bytes`].
pub fn knowledge_from_bytes(mut buf: impl Buf) -> Result<Knowledge, PersistError> {
    need(&buf, 8)?;
    if buf.get_u32_le() != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }

    need(&buf, 4)?;
    let n_strings = buf.get_u32_le() as usize;
    let mut g = Knowledge::new();
    // Cap the preallocation by what the remaining bytes could possibly
    // hold (each string costs ≥4 bytes on the wire), so a corrupt count
    // field cannot trigger a gigantic up-front allocation.
    let mut symbols = Vec::with_capacity(n_strings.min(buf.remaining() / 4));
    for _ in 0..n_strings {
        need(&buf, 4)?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len)?;
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        let s = String::from_utf8(bytes).map_err(|_| PersistError::BadUtf8)?;
        symbols.push(g.intern(&s));
    }
    let resolve = |i: u32| -> Result<Symbol, PersistError> {
        symbols
            .get(i as usize)
            .copied()
            .ok_or(PersistError::BadIndex)
    };

    need(&buf, 8)?;
    // Declared total is informational: super/sub totals and the pair
    // mass are recomputed from the pair table below, so a corrupt value
    // here cannot poison the invariants.
    let _declared_total = buf.get_u64_le();

    need(&buf, 4)?;
    let n_pairs = buf.get_u32_le() as usize;
    for _ in 0..n_pairs {
        need(&buf, 12)?;
        let x = resolve(buf.get_u32_le())?;
        let y = resolve(buf.get_u32_le())?;
        let n = buf.get_u32_le();
        g.add_pair_n(x, y, n);
    }

    need(&buf, 4)?;
    let n_co = buf.get_u32_le() as usize;
    for _ in 0..n_co {
        need(&buf, 16)?;
        let x = resolve(buf.get_u32_le())?;
        let a = resolve(buf.get_u32_le())?;
        let b = resolve(buf.get_u32_le())?;
        let n = buf.get_u32_le();
        g.add_cooccurrence_n(x, a, b, n);
    }

    need(&buf, 4)?;
    let n_seg = buf.get_u32_le() as usize;
    for _ in 0..n_seg {
        need(&buf, 8)?;
        let s = resolve(buf.get_u32_le())?;
        let n = buf.get_u32_le();
        let text = g.resolve(s).to_string();
        g.add_segment_n(&text, n);
    }

    need(&buf, 4)?;
    let n_neg = buf.get_u32_le() as usize;
    for _ in 0..n_neg {
        need(&buf, 12)?;
        let x = resolve(buf.get_u32_le())?;
        let y = resolve(buf.get_u32_le())?;
        let n = buf.get_u32_le();
        g.add_negative_n(x, y, n);
    }

    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Knowledge {
        let mut g = Knowledge::new();
        let animal = g.intern("animal");
        let cat = g.intern("cat");
        let dog = g.intern("dog");
        for _ in 0..7 {
            g.add_pair(animal, cat);
        }
        for _ in 0..3 {
            g.add_pair(animal, dog);
        }
        g.add_cooccurrence(animal, cat, dog);
        g.add_segment("Proctor and Gamble");
        g.add_segment("Proctor and Gamble");
        let car = g.intern("car");
        let wheel = g.intern("wheel");
        g.add_negative(car, wheel);
        g
    }

    #[test]
    fn roundtrip_preserves_all_statistics() {
        let g = sample();
        let bytes = knowledge_to_bytes(&g).expect("encodes");
        let h = knowledge_from_bytes(bytes).expect("decodes");
        assert_eq!(h.total(), g.total());
        assert_eq!(h.pair_count(), g.pair_count());
        let (animal, cat, dog) = (
            h.lookup("animal").unwrap(),
            h.lookup("cat").unwrap(),
            h.lookup("dog").unwrap(),
        );
        assert_eq!(h.count(animal, cat), 7);
        assert_eq!(h.count(animal, dog), 3);
        assert_eq!(h.super_total(animal), 10);
        assert!((h.p_sub_given_cosub(dog, cat, animal, 1e-6) - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.segment_frequency("Proctor and Gamble"), 2);
        let (car, wheel) = (h.lookup("car").unwrap(), h.lookup("wheel").unwrap());
        assert_eq!(h.negative_count(car, wheel), 1);
    }

    #[test]
    fn truncation_always_errors() {
        let bytes = knowledge_to_bytes(&sample()).expect("encodes");
        for cut in 0..bytes.len() {
            assert!(knowledge_from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut b = knowledge_to_bytes(&sample()).expect("encodes").to_vec();
        b[0] ^= 1;
        assert_eq!(
            knowledge_from_bytes(&b[..]).unwrap_err(),
            PersistError::BadMagic
        );
        let mut b = knowledge_to_bytes(&sample()).expect("encodes").to_vec();
        b[4] = 9;
        assert_eq!(
            knowledge_from_bytes(&b[..]).unwrap_err(),
            PersistError::BadVersion(9)
        );
    }

    #[test]
    fn empty_knowledge_roundtrips() {
        let g = Knowledge::new();
        let h = knowledge_from_bytes(knowledge_to_bytes(&g).expect("encodes")).unwrap();
        assert_eq!(h.pair_count(), 0);
        assert_eq!(h.total(), 0);
    }
}
