//! The iterative extraction driver (paper Algorithm 1).
//!
//! Repeatedly scans the corpus: each sentence is parsed *once* (tokenize,
//! tag, pattern match, syntactic extraction); the semantic procedures run
//! against the growing knowledge Γ every round until a fixpoint:
//!
//! * a sentence whose super-concept is still ambiguous is retried next
//!   round with a richer Γ (this is why the paper's Figure 10 shows the
//!   largest gain in round *two*);
//! * a sentence whose list was only partially in scope is revisited and
//!   extended as more of its items become credible.
//!
//! The driver also performs the two corpus-level passes that feed the
//! semantic machinery: a segment-frequency pre-pass (the Downey-style
//! multiword signal) and part-of detection (negative evidence, §4.1).

use crate::evidence::EvidenceRecord;
use crate::knowledge::Knowledge;
use crate::obs::ExtractObs;
use crate::pattern::{find_partof, find_pattern};
use crate::subc::{detect_subs, ChosenItem, SubConfig};
use crate::superc::{detect_super, SuperConfig, SuperDecision};
use crate::syntactic::{extract_from_match, normalize_sub, SyntacticExtraction};
use probase_corpus::sentence::{SentenceRecord, SourceMeta};
use probase_obs::Registry;
use probase_text::{normalize_concept, tag_tokens, tokenize, Chunker, Lexicon, Tag};
use serde::{Deserialize, Serialize};

/// Configuration of the full extraction pipeline.
#[derive(Debug, Clone, Default)]
pub struct ExtractorConfig {
    pub super_cfg: SuperConfig,
    pub sub_cfg: SubConfig,
    /// Upper bound on iterations (the fixpoint usually arrives earlier).
    pub max_iterations: usize,
    pub chunker: Chunker,
}

impl ExtractorConfig {
    /// The defaults used throughout the evaluation.
    pub fn paper() -> Self {
        Self {
            super_cfg: SuperConfig::default(),
            sub_cfg: SubConfig::default(),
            max_iterations: 11,
            chunker: Chunker::default(),
        }
    }
}

/// Per-iteration progress counters (paper Figures 10–11 are plotted from
/// these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Pair occurrences committed this round.
    pub new_occurrences: u64,
    /// Distinct pairs in Γ after the round.
    pub distinct_pairs: usize,
    /// Distinct super-concepts in Γ after the round.
    pub distinct_concepts: usize,
    /// Sentences with a resolved super-concept after the round.
    pub sentences_resolved: usize,
    /// Length of the evidence log after the round — `evidence[..evidence_len]`
    /// is exactly what iterations `1..=iteration` discovered (Figure 11
    /// judges precision per round from this).
    pub evidence_len: usize,
}

/// Pairs extracted from one sentence (the unit the taxonomy layer builds
/// local taxonomies from — paper Property 1 guarantees a single sense per
/// sentence).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SentenceExtraction {
    pub sentence_id: u64,
    /// Normalized super-concept label.
    pub super_label: String,
    /// Accepted sub-concept items, in position order.
    pub items: Vec<String>,
}

/// Everything extraction produces.
#[derive(Debug)]
pub struct ExtractionOutput {
    /// The final knowledge Γ.
    pub knowledge: Knowledge,
    /// Flat evidence log (one record per pair occurrence).
    pub evidence: Vec<EvidenceRecord>,
    /// Per-sentence extractions for taxonomy construction.
    pub sentences: Vec<SentenceExtraction>,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
}

/// Internal per-sentence state across iterations.
pub(crate) struct Parsed {
    pub(crate) extraction: SyntacticExtraction,
    pub(crate) meta: SourceMeta,
    pub(crate) sentence_id: u64,
    pub(crate) resolved: Option<Resolved>,
    pub(crate) extracted_positions: Vec<usize>,
    pub(crate) chosen_items: Vec<String>,
    pub(crate) done: bool,
}

#[derive(Clone)]
pub(crate) struct Resolved {
    pub(crate) super_label: String,
    pub(crate) stats_label: String,
}

/// A proposal computed against a (possibly frozen) Γ, to be committed by
/// the driver.
pub(crate) struct Proposal {
    pub(crate) newly_resolved: Option<Resolved>,
    pub(crate) chosen: Vec<ChosenItem>,
}

/// Phase 0: parse all sentences once; register segment frequencies and
/// part-of negatives in Γ.
pub(crate) fn prepare(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    cfg: &ExtractorConfig,
    g: &mut Knowledge,
) -> Vec<Parsed> {
    let mut parsed = Vec::new();
    for rec in records.iter() {
        let tagged = tag_tokens(&tokenize(&rec.text), lexicon);
        // Negative evidence first: a part-of sentence is not an isA source.
        if let Some(pm) = find_partof(&tagged) {
            let (ss, se) = pm.super_region;
            let mut phrases = cfg.chunker.chunk(&tagged[ss..se]);
            phrases.retain(|p| p.head_plural);
            if let Some(whole) = phrases.last() {
                let x = g.intern(&normalize_concept(&whole.text()));
                let (ls, le) = pm.list_region;
                for part in comma_segments(&tagged[ls..le]) {
                    let y = g.intern(&normalize_sub(&part));
                    g.add_negative(x, y);
                }
            }
            continue;
        }
        let Some(pm) = find_pattern(&tagged) else {
            continue;
        };
        let Some(extraction) = extract_from_match(&tagged, &pm, &cfg.chunker) else {
            continue;
        };
        for seg in &extraction.segments {
            g.add_segment(&normalize_sub(&seg.raw));
        }
        parsed.push(Parsed {
            extraction,
            meta: rec.meta,
            sentence_id: rec.id,
            resolved: None,
            extracted_positions: Vec::new(),
            chosen_items: Vec::new(),
            done: false,
        });
    }
    parsed
}

/// Split a tagged-token slice at commas into trimmed segment strings.
fn comma_segments(tokens: &[probase_text::TaggedToken]) -> Vec<String> {
    let mut out = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    for t in tokens {
        match t.tag {
            Tag::Punct => match t.token.text.as_str() {
                "," | ";" if !current.is_empty() => {
                    out.push(current.join(" "));
                    current.clear();
                }
                "." | "!" | "?" => break,
                _ => {}
            },
            Tag::Conj => {
                if !current.is_empty() {
                    out.push(current.join(" "));
                    current.clear();
                }
            }
            _ => current.push(&t.token.text),
        }
    }
    if !current.is_empty() {
        out.push(current.join(" "));
    }
    out
}

/// Run the semantic procedures for one sentence against `g` without
/// mutating anything. Shared between the serial and parallel drivers.
pub(crate) fn detect_one(p: &Parsed, g: &Knowledge, cfg: &ExtractorConfig) -> Option<Proposal> {
    let resolved = match &p.resolved {
        Some(r) => {
            // Prefer the extraction label's own statistics once Γ has them.
            let stats_label = if g
                .lookup(&r.super_label)
                .map(|s| g.super_total(s) > 0)
                .unwrap_or(false)
            {
                r.super_label.clone()
            } else {
                r.stats_label.clone()
            };
            Resolved {
                super_label: r.super_label.clone(),
                stats_label,
            }
        }
        None => match detect_super(
            &p.extraction.supers,
            &p.extraction.segments,
            g,
            &cfg.super_cfg,
        ) {
            SuperDecision::Chosen { index, stats_label } => Resolved {
                super_label: normalize_concept(&p.extraction.supers[index].text()),
                stats_label,
            },
            SuperDecision::Undecided => return None,
        },
    };
    let chosen = detect_subs(
        &resolved.stats_label,
        &p.extraction.segments,
        &p.extracted_positions,
        g,
        &cfg.sub_cfg,
    );
    let newly_resolved = if p.resolved.is_none() {
        Some(resolved)
    } else {
        None
    };
    Some(Proposal {
        newly_resolved,
        chosen,
    })
}

/// Commit a proposal into Γ, the evidence log, and the sentence state.
/// Returns the number of pair occurrences committed.
pub(crate) fn commit(
    p: &mut Parsed,
    proposal: Proposal,
    g: &mut Knowledge,
    evidence: &mut Vec<EvidenceRecord>,
) -> u64 {
    if let Some(r) = proposal.newly_resolved {
        p.resolved = Some(r);
    }
    let Some(resolved) = &p.resolved else {
        return 0;
    };
    let list_len = p.extraction.segments.len() as u32;
    let mut committed = 0u64;
    let x = g.intern(&resolved.super_label);
    for item in proposal.chosen {
        // A sub-concept identical to the super is a parse artifact.
        if item.text == resolved.super_label {
            continue;
        }
        let y = g.intern(&item.text);
        g.add_pair(x, y);
        for prev in &p.chosen_items {
            let prev_sym = g.intern(prev);
            g.add_cooccurrence(x, prev_sym, y);
        }
        evidence.push(EvidenceRecord {
            x: resolved.super_label.clone(),
            y: item.text.clone(),
            sentence_id: p.sentence_id,
            pattern: p.extraction.pattern,
            page_rank: p.meta.page_rank,
            source_quality: p.meta.source_quality,
            position: item.position as u32,
            list_len,
        });
        if !p.extracted_positions.contains(&item.position) {
            p.extracted_positions.push(item.position);
        }
        p.chosen_items.push(item.text);
        committed += 1;
    }
    if p.extracted_positions.len() >= p.extraction.segments.len() {
        p.done = true;
    }
    committed
}

/// Run the full iterative extraction (serial driver), reporting
/// `extract.*` metrics to the process-global registry.
pub fn extract(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    cfg: &ExtractorConfig,
) -> ExtractionOutput {
    extract_observed(records, lexicon, cfg, probase_obs::global())
}

/// [`extract`] with an explicit metric registry (tests and benches use
/// isolated registries for exact counter reads).
pub fn extract_observed(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    cfg: &ExtractorConfig,
    registry: &Registry,
) -> ExtractionOutput {
    let mut ex = Extractor::with_registry(lexicon.clone(), cfg.clone(), registry);
    ex.add_sentences(records);
    ex.run_to_fixpoint();
    ex.into_output()
}

/// An *incremental* extractor: sentences can be added in batches and the
/// semantic iteration resumed, with Γ carried over — the never-ending
/// learning mode the paper's framework naturally supports ("we use
/// existing knowledge to understand the text and acquire more
/// knowledge"). [`extract`] is the one-shot wrapper around it.
pub struct Extractor {
    lexicon: Lexicon,
    cfg: ExtractorConfig,
    g: Knowledge,
    parsed: Vec<Parsed>,
    evidence: Vec<EvidenceRecord>,
    iterations: Vec<IterationStats>,
    next_iteration: usize,
    obs: ExtractObs,
}

impl Extractor {
    pub fn new(lexicon: Lexicon, cfg: ExtractorConfig) -> Self {
        Self::with_registry(lexicon, cfg, probase_obs::global())
    }

    /// [`Extractor::new`] with an explicit metric registry.
    pub fn with_registry(lexicon: Lexicon, cfg: ExtractorConfig, registry: &Registry) -> Self {
        Self {
            lexicon,
            cfg,
            g: Knowledge::new(),
            parsed: Vec::new(),
            evidence: Vec::new(),
            iterations: Vec::new(),
            next_iteration: 1,
            obs: ExtractObs::new(registry),
        }
    }

    /// Parse and enqueue a batch of sentences. Segment frequencies and
    /// part-of negatives register immediately; isA extraction happens on
    /// the next [`Self::run_to_fixpoint`].
    pub fn add_sentences(&mut self, records: &[SentenceRecord]) {
        self.obs.sentences_parsed.add(records.len() as u64);
        let batch = prepare(records, &self.lexicon, &self.cfg, &mut self.g);
        self.parsed.extend(batch);
    }

    /// Run semantic iteration until no new pairs emerge (bounded by the
    /// configured `max_iterations` *per call*). Returns the number of
    /// rounds run.
    pub fn run_to_fixpoint(&mut self) -> usize {
        let max_iters = self.cfg.max_iterations.max(1);
        let mut rounds = 0;
        for _ in 0..max_iters {
            let _round_span = self.obs.iteration.span();
            self.obs.rounds.inc();
            rounds += 1;
            let iteration = self.next_iteration;
            self.next_iteration += 1;
            let mut new_occurrences = 0u64;
            for i in 0..self.parsed.len() {
                if self.parsed[i].done {
                    continue;
                }
                let proposal = match detect_one(&self.parsed[i], &self.g, &self.cfg) {
                    Some(pr) => pr,
                    None => continue,
                };
                self.obs.pairs_proposed.add(proposal.chosen.len() as u64);
                new_occurrences += commit(
                    &mut self.parsed[i],
                    proposal,
                    &mut self.g,
                    &mut self.evidence,
                );
            }
            self.obs.pairs_committed.add(new_occurrences);
            let resolved = self.parsed.iter().filter(|p| p.resolved.is_some()).count();
            self.iterations.push(IterationStats {
                iteration,
                new_occurrences,
                distinct_pairs: self.g.pair_count(),
                distinct_concepts: self.g.concept_count(),
                sentences_resolved: resolved,
                evidence_len: self.evidence.len(),
            });
            if new_occurrences == 0 {
                break;
            }
        }
        rounds
    }

    /// The knowledge accumulated so far.
    pub fn knowledge(&self) -> &Knowledge {
        &self.g
    }

    /// The evidence log so far.
    pub fn evidence(&self) -> &[EvidenceRecord] {
        &self.evidence
    }

    /// Iteration statistics so far.
    pub fn iterations(&self) -> &[IterationStats] {
        &self.iterations
    }

    /// Number of pattern-bearing sentences queued.
    pub fn sentence_count(&self) -> usize {
        self.parsed.len()
    }

    /// Finish and hand over everything.
    pub fn into_output(self) -> ExtractionOutput {
        let sentences = collect_sentences(&self.parsed);
        ExtractionOutput {
            knowledge: self.g,
            evidence: self.evidence,
            sentences,
            iterations: self.iterations,
        }
    }
}

pub(crate) fn collect_sentences(parsed: &[Parsed]) -> Vec<SentenceExtraction> {
    parsed
        .iter()
        .filter(|p| !p.chosen_items.is_empty())
        .map(|p| SentenceExtraction {
            sentence_id: p.sentence_id,
            super_label: p
                .resolved
                .as_ref()
                .expect("items imply resolution")
                .super_label
                .clone(),
            items: p.chosen_items.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_corpus::sentence::{PatternKind, SentenceTruth};

    fn rec(id: u64, text: &str) -> SentenceRecord {
        SentenceRecord {
            id,
            text: text.to_string(),
            meta: SourceMeta {
                page_id: id / 3,
                page_rank: 0.4,
                source_quality: 0.8,
            },
            truth: SentenceTruth::default(),
        }
    }

    fn run(texts: &[&str]) -> ExtractionOutput {
        let records: Vec<SentenceRecord> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| rec(i as u64, t))
            .collect();
        extract(&records, &Lexicon::default(), &ExtractorConfig::paper())
    }

    fn has_pair(out: &ExtractionOutput, x: &str, y: &str) -> bool {
        let g = &out.knowledge;
        match (g.lookup(x), g.lookup(y)) {
            (Some(xs), Some(ys)) => g.count(xs, ys) > 0,
            _ => false,
        }
    }

    #[test]
    fn extracts_simple_pairs() {
        let out = run(&[
            "animals such as cats.",
            "animals such as dogs.",
            "animals such as cats and dogs.",
        ]);
        assert!(has_pair(&out, "animal", "cat"));
        assert!(has_pair(&out, "animal", "dog"));
    }

    #[test]
    fn iteration_resolves_other_than() {
        // Bootstrap sentences teach (animal, cat); the ambiguous sentence
        // resolves in a later round to animals, not dogs.
        let mut texts = vec!["animals such as cats."; 6];
        texts.push("animals other than dogs such as cats.");
        let out = run(&texts);
        assert!(has_pair(&out, "animal", "cat"));
        assert!(
            !has_pair(&out, "dog", "cat"),
            "dogs must not be chosen as super"
        );
        assert!(out.iterations.len() >= 2);
    }

    #[test]
    fn multi_item_lists_unlock_over_iterations() {
        // Each item appears first somewhere, so scope eventually covers all.
        let out = run(&[
            "companies such as IBM, Nokia, Intel.",
            "companies such as Nokia, Intel, IBM.",
            "companies such as Intel, IBM, Nokia.",
            "companies such as IBM, Nokia, Intel.",
            "companies such as Nokia, Intel, IBM.",
        ]);
        for y in ["IBM", "Nokia", "Intel"] {
            assert!(has_pair(&out, "company", y), "missing {y}");
        }
        // Figure 10 shape: round 2 commits more than round 1 on this corpus
        // (round 1 only takes position 1 of each list).
        assert!(out.iterations.len() >= 2);
        assert!(
            out.iterations[1].new_occurrences > 0,
            "second round should extract more: {:?}",
            out.iterations
        );
    }

    #[test]
    fn modifier_stripping_harvests_specific_concept() {
        let mut texts = vec!["animals such as cats."; 5];
        texts.push("domestic animals such as cats.");
        let out = run(&texts);
        assert!(has_pair(&out, "domestic animal", "cat"));
    }

    #[test]
    fn partof_becomes_negative_evidence() {
        let out = run(&[
            "cars are comprised of wheels and engines.",
            "animals such as cats.",
        ]);
        let g = &out.knowledge;
        let car = g.lookup("car").expect("car interned");
        let wheel = g.lookup("wheel").expect("wheel interned");
        assert!(g.negative_count(car, wheel) > 0);
        // And no isA pair was created from the part-of sentence.
        assert!(!has_pair(&out, "car", "wheel"));
    }

    #[test]
    fn evidence_records_features() {
        let out = run(&["animals such as cats.", "animals such as cats."]);
        assert!(!out.evidence.is_empty());
        let e = &out.evidence[0];
        assert_eq!(e.x, "animal");
        assert_eq!(e.y, "cat");
        assert_eq!(e.pattern, PatternKind::SuchAs);
        assert_eq!(e.position, 1);
    }

    #[test]
    fn sentence_extractions_grouped() {
        let out = run(&[
            "animals such as cats.",
            "animals such as cats.",
            "animals such as cats and dogs.",
        ]);
        assert!(!out.sentences.is_empty());
        let multi = out.sentences.iter().find(|s| s.items.len() == 2);
        assert!(multi.is_some(), "{:?}", out.sentences);
        let multi = multi.unwrap();
        assert_eq!(multi.super_label, "animal");
        assert_eq!(multi.items, ["cat", "dog"]);
    }

    #[test]
    fn fixpoint_terminates_early() {
        let out = run(&["animals such as cats."]);
        // One productive round plus one empty round.
        assert!(out.iterations.len() <= 3);
        assert_eq!(out.iterations.last().unwrap().new_occurrences, 0);
    }

    #[test]
    fn noise_sentences_are_ignored() {
        let out = run(&["the history of coffee is long.", "prices rose sharply."]);
        assert_eq!(out.knowledge.pair_count(), 0);
        assert!(out.sentences.is_empty());
    }

    #[test]
    fn incremental_batches_accumulate_knowledge() {
        let batch1: Vec<SentenceRecord> =
            ["animals such as cats.", "animals such as cats and dogs."]
                .iter()
                .enumerate()
                .map(|(i, t)| rec(i as u64, t))
                .collect();
        let batch2: Vec<SentenceRecord> = ["animals such as cats, dogs and horses."]
            .iter()
            .enumerate()
            .map(|(i, t)| rec(10 + i as u64, t))
            .collect();
        let mut ex = Extractor::new(Lexicon::default(), ExtractorConfig::paper());
        ex.add_sentences(&batch1);
        ex.run_to_fixpoint();
        let pairs_after_1 = ex.knowledge().pair_count();
        assert!(pairs_after_1 >= 1);
        // Second batch benefits from Γ built by the first.
        ex.add_sentences(&batch2);
        ex.run_to_fixpoint();
        assert!(ex.knowledge().pair_count() >= pairs_after_1);
        let out = ex.into_output();
        // Iteration numbering continues across batches.
        let iters: Vec<usize> = out.iterations.iter().map(|i| i.iteration).collect();
        for w in iters.windows(2) {
            assert!(w[1] > w[0]);
        }
        // The one-shot wrapper over both batches finds at least as much.
        let mut all = batch1;
        all.extend(batch2);
        let oneshot = extract(&all, &Lexicon::default(), &ExtractorConfig::paper());
        assert!(oneshot.knowledge.pair_count() >= out.knowledge.pair_count());
    }

    #[test]
    fn self_pairs_are_rejected() {
        // "animals such as animals" must not create (animal, animal).
        let out = run(&["animals such as animals."]);
        assert_eq!(out.knowledge.pair_count(), 0);
    }
}
