//! The knowledge store Γ (paper Table 3).
//!
//! Γ is the set of isA pairs discovered so far, with the statistics the
//! semantic-iteration machinery consults:
//!
//! * `n(x, y)` — how many times pair `(x, y)` was discovered;
//! * `p(x)` — fraction of pairs with super-concept `x` (§2.3.2);
//! * `p(y | x)` — fraction of `x`'s pairs with sub-concept `y` (§2.3.2),
//!   with ε-smoothing for unseen pairs;
//! * `p(yi | c, x)` — co-occurrence likelihood of two sub-concepts under
//!   the same super-concept (§2.3.3);
//! * corpus-wide *segment frequencies*, the Downey-style signal (§2.1,
//!   \[10\]) used to break join-vs-split ties for multiword candidates like
//!   "Proctor and Gamble";
//! * negative (part-of) evidence counts (§4.1).
//!
//! Strings are interned once; all statistics are integer counters keyed by
//! symbols, so iteration rescans stay cheap.

use probase_store::{FxHashMap, Interner, Symbol};

/// The knowledge accumulated by iterative extraction.
///
/// ```
/// use probase_extract::Knowledge;
/// let mut g = Knowledge::new();
/// let animal = g.intern("animal");
/// let cat = g.intern("cat");
/// g.add_pair(animal, cat);
/// g.add_pair(animal, cat);
/// assert_eq!(g.count(animal, cat), 2);
/// assert!((g.p_sub_given_super(cat, animal, 1e-6) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Knowledge {
    interner: Interner,
    /// `n(x, y)` per pair.
    pairs: FxHashMap<(Symbol, Symbol), u32>,
    /// Σ_y n(x, y) per super-concept.
    super_totals: FxHashMap<Symbol, u32>,
    /// Σ_x n(x, y) per sub-concept.
    sub_totals: FxHashMap<Symbol, u32>,
    /// Σ n over all pairs.
    total: u64,
    /// Co-occurrence: #sentences where `a` and `b` were both extracted as
    /// subs of `x`. Key is `(x, min(a,b), max(a,b))`.
    cooccur: FxHashMap<(Symbol, Symbol, Symbol), u32>,
    /// Corpus-wide frequency of comma-bounded list segments (pre-pass).
    segment_freq: FxHashMap<Symbol, u32>,
    /// Negative part-of evidence per pair.
    negative: FxHashMap<(Symbol, Symbol), u32>,
}

impl Knowledge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string (public so callers can pre-resolve hot labels).
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Symbol of `s` if already interned.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    /// Resolve a symbol to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    // ---- updates ------------------------------------------------------

    /// Record one discovery of the pair `(x, y)`. Returns `true` when the
    /// pair is new to Γ.
    pub fn add_pair(&mut self, x: Symbol, y: Symbol) -> bool {
        let e = self.pairs.entry((x, y)).or_insert(0);
        let is_new = *e == 0;
        *e += 1;
        *self.super_totals.entry(x).or_insert(0) += 1;
        *self.sub_totals.entry(y).or_insert(0) += 1;
        self.total += 1;
        is_new
    }

    /// Record `n` discoveries of the pair `(x, y)` at once (snapshot
    /// replay). Counters saturate instead of overflowing so a corrupt
    /// or adversarial count cannot panic the decoder. Returns `true`
    /// when the pair is new to Γ; `n == 0` is a no-op.
    pub fn add_pair_n(&mut self, x: Symbol, y: Symbol, n: u32) -> bool {
        if n == 0 {
            return false;
        }
        let e = self.pairs.entry((x, y)).or_insert(0);
        let is_new = *e == 0;
        *e = e.saturating_add(n);
        let sup = self.super_totals.entry(x).or_insert(0);
        *sup = sup.saturating_add(n);
        let sub = self.sub_totals.entry(y).or_insert(0);
        *sub = sub.saturating_add(n);
        self.total = self.total.saturating_add(n as u64);
        is_new
    }

    /// Record that `a` and `b` were both extracted as subs of `x` in the
    /// same sentence.
    pub fn add_cooccurrence(&mut self, x: Symbol, a: Symbol, b: Symbol) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        *self.cooccur.entry((x, lo, hi)).or_insert(0) += 1;
    }

    /// Record one occurrence of a comma-bounded segment (pre-pass).
    pub fn add_segment(&mut self, segment: &str) {
        let sym = self.interner.intern(segment);
        *self.segment_freq.entry(sym).or_insert(0) += 1;
    }

    /// Record negative (part-of) evidence for `(x, y)`.
    pub fn add_negative(&mut self, x: Symbol, y: Symbol) {
        *self.negative.entry((x, y)).or_insert(0) += 1;
    }

    /// Bulk [`Knowledge::add_cooccurrence`] for snapshot replay
    /// (saturating; `n == 0` is a no-op).
    pub fn add_cooccurrence_n(&mut self, x: Symbol, a: Symbol, b: Symbol, n: u32) {
        if a == b || n == 0 {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let e = self.cooccur.entry((x, lo, hi)).or_insert(0);
        *e = e.saturating_add(n);
    }

    /// Bulk [`Knowledge::add_segment`] for snapshot replay (saturating;
    /// `n == 0` is a no-op).
    pub fn add_segment_n(&mut self, segment: &str, n: u32) {
        if n == 0 {
            return;
        }
        let sym = self.interner.intern(segment);
        let e = self.segment_freq.entry(sym).or_insert(0);
        *e = e.saturating_add(n);
    }

    /// Bulk [`Knowledge::add_negative`] for snapshot replay (saturating;
    /// `n == 0` is a no-op).
    pub fn add_negative_n(&mut self, x: Symbol, y: Symbol, n: u32) {
        if n == 0 {
            return;
        }
        let e = self.negative.entry((x, y)).or_insert(0);
        *e = e.saturating_add(n);
    }

    // ---- statistics ----------------------------------------------------

    /// `n(x, y)`.
    pub fn count(&self, x: Symbol, y: Symbol) -> u32 {
        self.pairs.get(&(x, y)).copied().unwrap_or(0)
    }

    /// Number of distinct pairs in Γ.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of distinct super-concepts in Γ.
    pub fn concept_count(&self) -> usize {
        self.super_totals.len()
    }

    /// Total evidence mass Σ n(x, y).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Evidence mass of `x` as a super-concept.
    pub fn super_total(&self, x: Symbol) -> u32 {
        self.super_totals.get(&x).copied().unwrap_or(0)
    }

    /// Evidence mass of `y` as a sub-concept.
    pub fn sub_total(&self, y: Symbol) -> u32 {
        self.sub_totals.get(&y).copied().unwrap_or(0)
    }

    /// `p(x)`: share of all evidence with `x` as the super-concept,
    /// ε-smoothed.
    pub fn p_super(&self, x: Symbol, eps: f64) -> f64 {
        if self.total == 0 {
            return eps;
        }
        let n = self.super_total(x);
        if n == 0 {
            eps
        } else {
            n as f64 / self.total as f64
        }
    }

    /// `p(y | x)`: share of `x`'s evidence carrying `y`, ε-smoothed.
    pub fn p_sub_given_super(&self, y: Symbol, x: Symbol, eps: f64) -> f64 {
        let sx = self.super_total(x);
        if sx == 0 {
            return eps;
        }
        let n = self.count(x, y);
        if n == 0 {
            eps
        } else {
            n as f64 / sx as f64
        }
    }

    /// `p(yi | c, x)`: likelihood that `yi` appears as a valid sub in a
    /// sentence with super `x` where `c` is also a valid sub (§2.3.3),
    /// ε-smoothed.
    pub fn p_sub_given_cosub(&self, yi: Symbol, c: Symbol, x: Symbol, eps: f64) -> f64 {
        let denom = self.count(x, c);
        if denom == 0 {
            return eps;
        }
        let (lo, hi) = if yi < c { (yi, c) } else { (c, yi) };
        let n = self.cooccur.get(&(x, lo, hi)).copied().unwrap_or(0);
        if n == 0 {
            eps
        } else {
            (n as f64 / denom as f64).min(1.0)
        }
    }

    /// Corpus-wide frequency of a segment string.
    pub fn segment_frequency(&self, segment: &str) -> u32 {
        self.interner
            .get(segment)
            .and_then(|s| self.segment_freq.get(&s).copied())
            .unwrap_or(0)
    }

    /// Negative evidence count for `(x, y)`.
    pub fn negative_count(&self, x: Symbol, y: Symbol) -> u32 {
        self.negative.get(&(x, y)).copied().unwrap_or(0)
    }

    /// Iterate all pairs as `(x, y, n)`.
    pub fn pairs(&self) -> impl Iterator<Item = (Symbol, Symbol, u32)> + '_ {
        self.pairs.iter().map(|(&(x, y), &n)| (x, y, n))
    }

    /// Iterate negative pairs as `(x, y, n)`.
    pub fn negatives(&self) -> impl Iterator<Item = (Symbol, Symbol, u32)> + '_ {
        self.negative.iter().map(|(&(x, y), &n)| (x, y, n))
    }

    /// Absorb another knowledge store (paper §4.1: "It is easy to
    /// integrate new evidence" — e.g. an encyclopedia extraction merged
    /// into a web extraction). Symbols are re-interned; all counters add.
    pub fn absorb(&mut self, other: &Knowledge) {
        // Pre-translate other's symbols into ours.
        let mut map: Vec<Symbol> = Vec::with_capacity(other.interner.len());
        for (_, s) in other.interner.iter() {
            map.push(self.interner.intern(s));
        }
        let tr = |s: Symbol| map[s.index()];
        for (&(x, y), &n) in &other.pairs {
            let (x, y) = (tr(x), tr(y));
            *self.pairs.entry((x, y)).or_insert(0) += n;
            *self.super_totals.entry(x).or_insert(0) += n;
            *self.sub_totals.entry(y).or_insert(0) += n;
            self.total += n as u64;
        }
        for (&(x, a, b), &n) in &other.cooccur {
            let (x, a, b) = (tr(x), tr(a), tr(b));
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            *self.cooccur.entry((x, lo, hi)).or_insert(0) += n;
        }
        for (&s, &n) in &other.segment_freq {
            *self.segment_freq.entry(tr(s)).or_insert(0) += n;
        }
        for (&(x, y), &n) in &other.negative {
            *self.negative.entry((tr(x), tr(y))).or_insert(0) += n;
        }
    }

    /// Iterate co-occurrence triples as `(x, a, b, n)` with `a < b`.
    pub fn cooccurrences(&self) -> impl Iterator<Item = (Symbol, Symbol, Symbol, u32)> + '_ {
        self.cooccur.iter().map(|(&(x, a, b), &n)| (x, a, b, n))
    }

    /// Iterate segment frequencies as `(symbol, n)`.
    pub fn segment_frequencies(&self) -> impl Iterator<Item = (Symbol, u32)> + '_ {
        self.segment_freq.iter().map(|(&s, &n)| (s, n))
    }

    /// Iterate interned strings in symbol order (for persistence).
    pub fn interner_strings(&self) -> impl Iterator<Item = &str> {
        self.interner.iter().map(|(_, s)| s)
    }

    /// Distinct sub-concepts extracted for `x`, with counts. O(pairs);
    /// intended for reporting, not hot paths.
    pub fn subs_of(&self, x: Symbol) -> Vec<(Symbol, u32)> {
        let mut v: Vec<(Symbol, u32)> = self
            .pairs
            .iter()
            .filter(|(&(px, _), _)| px == x)
            .map(|(&(_, y), &n)| (y, n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> (Knowledge, Symbol, Symbol, Symbol) {
        let mut g = Knowledge::new();
        let animal = g.intern("animal");
        let cat = g.intern("cats");
        let dog = g.intern("dogs");
        for _ in 0..8 {
            g.add_pair(animal, cat);
        }
        for _ in 0..2 {
            g.add_pair(animal, dog);
        }
        (g, animal, cat, dog)
    }

    #[test]
    fn counts_accumulate() {
        let (g, animal, cat, dog) = k();
        assert_eq!(g.count(animal, cat), 8);
        assert_eq!(g.count(animal, dog), 2);
        assert_eq!(g.super_total(animal), 10);
        assert_eq!(g.total(), 10);
        assert_eq!(g.pair_count(), 2);
        assert_eq!(g.concept_count(), 1);
    }

    #[test]
    fn add_pair_reports_novelty() {
        let mut g = Knowledge::new();
        let a = g.intern("a");
        let b = g.intern("b");
        assert!(g.add_pair(a, b));
        assert!(!g.add_pair(a, b));
    }

    #[test]
    fn probabilities_follow_counts() {
        let (g, animal, cat, dog) = k();
        let eps = 1e-6;
        assert!((g.p_sub_given_super(cat, animal, eps) - 0.8).abs() < 1e-12);
        assert!((g.p_sub_given_super(dog, animal, eps) - 0.2).abs() < 1e-12);
        assert!((g.p_super(animal, eps) - 1.0).abs() < 1e-12);
        // unseen pair → eps
        let bird = {
            let mut g2 = g.clone();
            g2.intern("birds")
        };
        assert_eq!(g.p_sub_given_super(bird, animal, eps), eps);
    }

    #[test]
    fn epsilon_when_super_unknown() {
        let (g, _, cat, _) = k();
        let mut g = g;
        let robot = g.intern("robots");
        assert_eq!(g.p_sub_given_super(cat, robot, 1e-4), 1e-4);
        assert_eq!(g.p_super(robot, 1e-4), 1e-4);
    }

    #[test]
    fn cooccurrence_symmetric() {
        let (mut g, animal, cat, dog) = k();
        g.add_cooccurrence(animal, cat, dog);
        g.add_cooccurrence(animal, dog, cat);
        // p(dog | cat, animal) = cooccur / n(animal, cat) = 2/8
        assert!((g.p_sub_given_cosub(dog, cat, animal, 1e-6) - 0.25).abs() < 1e-12);
        // self co-occurrence is ignored
        g.add_cooccurrence(animal, cat, cat);
        assert!((g.p_sub_given_cosub(dog, cat, animal, 1e-6) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn segment_frequencies() {
        let mut g = Knowledge::new();
        g.add_segment("Proctor and Gamble");
        g.add_segment("Proctor and Gamble");
        g.add_segment("IBM");
        assert_eq!(g.segment_frequency("Proctor and Gamble"), 2);
        assert_eq!(g.segment_frequency("IBM"), 1);
        assert_eq!(g.segment_frequency("Proctor"), 0);
    }

    #[test]
    fn negative_evidence_tracked() {
        let mut g = Knowledge::new();
        let car = g.intern("car");
        let wheel = g.intern("wheels");
        g.add_negative(car, wheel);
        g.add_negative(car, wheel);
        assert_eq!(g.negative_count(car, wheel), 2);
        assert_eq!(g.negatives().count(), 1);
    }

    #[test]
    fn absorb_merges_all_counters() {
        let (mut g, animal, cat, _) = k();
        let mut other = Knowledge::new();
        // Different interner order on purpose.
        let o_cat = other.intern("cats");
        let o_bird = other.intern("birds");
        let o_animal = other.intern("animal");
        for _ in 0..4 {
            other.add_pair(o_animal, o_cat);
        }
        other.add_pair(o_animal, o_bird);
        other.add_cooccurrence(o_animal, o_cat, o_bird);
        other.add_segment("Proctor and Gamble");
        other.add_negative(o_animal, o_bird);

        g.absorb(&other);
        assert_eq!(g.count(animal, cat), 12); // 8 + 4
        let bird = g.lookup("birds").unwrap();
        assert_eq!(g.count(animal, bird), 1);
        assert_eq!(g.super_total(animal), 15);
        assert_eq!(g.total(), 15);
        assert_eq!(g.segment_frequency("Proctor and Gamble"), 1);
        assert_eq!(g.negative_count(animal, bird), 1);
        assert!(g.p_sub_given_cosub(bird, cat, animal, 1e-6) > 0.0);
    }

    #[test]
    fn absorb_empty_is_noop() {
        let (mut g, animal, cat, _) = k();
        let before = g.total();
        g.absorb(&Knowledge::new());
        assert_eq!(g.total(), before);
        assert_eq!(g.count(animal, cat), 8);
    }

    #[test]
    fn subs_of_sorted_by_count() {
        let (g, animal, cat, dog) = k();
        let subs = g.subs_of(animal);
        assert_eq!(subs, vec![(cat, 8), (dog, 2)]);
    }
}
