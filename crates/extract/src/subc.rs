//! Procedure `SubConceptDetection` (paper §2.3.3).
//!
//! Given the resolved super-concept `x` and the candidate positions, decide
//! which items are valid sub-concepts:
//!
//! 1. **Scope** (Observations 1–2): find the largest position `k` whose
//!    candidate is already credible under `x` in Γ; positions `1..=k` are
//!    in scope. With no knowledge, fall back to `k = 1` provided the first
//!    position is well formed (contains no conjunction delimiters).
//! 2. **Reading disambiguation**: within the scope, an ambiguous position
//!    ("Proctor and Gamble" vs {"Proctor", "Gamble"}; "Malaysia" vs
//!    "Malaysia in recent years") is resolved by the likelihood ratio
//!
//!    ```text
//!    r(c1, c2) = p(c1|x) ∏ p(yi|c1,x)  /  p(c2|x) ∏ p(yi|c2,x)
//!    ```
//!
//!    over the items chosen at earlier positions, with a Downey-style
//!    segment-frequency tie-break (§2.1, \[10\]) when Γ is silent: a string
//!    that recurs as a whole list segment ("Proctor and Gamble") while its
//!    fragments never stand alone is one instance, not two.

use crate::knowledge::Knowledge;
use crate::syntactic::{contains_conjunction, SegmentCandidates};
use probase_store::Symbol;

/// Configuration of sub-concept detection.
#[derive(Debug, Clone)]
pub struct SubConfig {
    /// ε-smoothing.
    pub eps: f64,
    /// An item is "credible" for scope detection once Γ has seen the pair
    /// at least this many times…
    pub scope_min_count: u32,
    /// …*and* its likelihood `p(y_k | x)` clears this relative threshold
    /// (the paper phrases scope detection in terms of likelihood; the
    /// relative test keeps a handful of corrupt repetitions under a
    /// popular concept from unlocking a drifted list tail).
    pub scope_min_prob: f64,
    /// Likelihood ratio needed to pick one reading over another.
    pub ratio_threshold: f64,
    /// Segment-frequency ratio needed for the bootstrap tie-break.
    pub freq_ratio: f64,
}

impl Default for SubConfig {
    fn default() -> Self {
        Self {
            eps: 1e-5,
            scope_min_count: 2,
            scope_min_prob: 1.5e-3,
            ratio_threshold: 3.0,
            freq_ratio: 3.0,
        }
    }
}

/// One accepted sub-concept item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChosenItem {
    /// Normalized item text.
    pub text: String,
    /// 1-based position (distance rank from the pattern keywords).
    pub position: usize,
}

/// Detect valid sub-concepts of `x`. `stats_label` is the concept whose Γ
/// statistics to consult (it differs from the extraction label when the
/// super-concept was modifier-stripped). `skip_positions` holds positions
/// already extracted in earlier iterations (the driver re-visits sentences
/// as Γ grows).
pub fn detect_subs(
    stats_label: &str,
    segments: &[SegmentCandidates],
    skip_positions: &[usize],
    g: &Knowledge,
    cfg: &SubConfig,
) -> Vec<ChosenItem> {
    if segments.is_empty() {
        return Vec::new();
    }
    let x = g.lookup(stats_label);

    // --- 1. scope ----------------------------------------------------
    let known = |seg: &SegmentCandidates| -> bool {
        let Some(x) = x else { return false };
        seg.readings.iter().flatten().any(|item| {
            g.lookup(item)
                .map(|y| {
                    g.count(x, y) >= cfg.scope_min_count
                        && g.p_sub_given_super(y, x, 0.0) >= cfg.scope_min_prob
                })
                .unwrap_or(false)
        })
    };
    let mut k = 0;
    for (j, seg) in segments.iter().enumerate() {
        if known(seg) {
            k = j + 1;
        }
    }
    if k == 0 {
        // Bootstrap: position 1 only, and only when unambiguous enough.
        let first = &segments[0];
        let unambiguous_first = first.readings.len() == 1
            && first.readings[0].len() == 1
            && !contains_conjunction(&first.readings[0][0]);
        if unambiguous_first {
            k = 1;
        } else {
            // Try the frequency tie-break alone for position 1.
            k = 1; // resolution below may still reject it
        }
    }

    // --- 2. choose readings within scope -----------------------------
    let mut chosen: Vec<ChosenItem> = Vec::new();
    let mut chosen_syms: Vec<Symbol> = Vec::new();
    for (j, seg) in segments.iter().enumerate().take(k) {
        let position = j + 1;
        let accepted = choose_reading(seg, x, &chosen_syms, g, cfg);
        let Some(reading) = accepted else {
            // Unresolved ambiguity: stop here; later iterations may extend.
            break;
        };
        if skip_positions.contains(&position) {
            // Already extracted earlier; still record its items as context
            // for subsequent positions, but do not re-emit.
            for item in &reading {
                if let Some(sym) = g.lookup(item) {
                    chosen_syms.push(sym);
                }
            }
            continue;
        }
        for item in reading {
            if let Some(sym) = g.lookup(&item) {
                chosen_syms.push(sym);
            }
            chosen.push(ChosenItem {
                text: item,
                position,
            });
        }
    }
    chosen
}

/// Pick the winning reading of a segment, or `None` when the ambiguity
/// cannot be resolved yet.
fn choose_reading(
    seg: &SegmentCandidates,
    x: Option<Symbol>,
    prev: &[Symbol],
    g: &Knowledge,
    cfg: &SubConfig,
) -> Option<Vec<String>> {
    if seg.readings.len() == 1 {
        let only = &seg.readings[0];
        // A lone joined reading with an internal conjunction is accepted
        // when Γ already knows the pair or the frequency evidence says the
        // string is one unit.
        if only.len() == 1 && contains_conjunction(&only[0]) {
            let known_pair = x
                .and_then(|x| g.lookup(&only[0]).map(|y| g.count(x, y) > 0))
                .unwrap_or(false);
            if !known_pair && !join_supported(&only[0], g, cfg) {
                return None;
            }
        }
        return Some(only.clone());
    }

    // Score every reading by its first item's likelihood under x.
    let mut scored: Vec<(f64, usize)> = seg
        .readings
        .iter()
        .enumerate()
        .map(|(i, r)| (reading_score(r, x, prev, g, cfg.eps), i))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite score"));
    let (s1, i1) = scored[0];
    let (s2, _i2) = scored[1];
    let ratio = (s1 - s2).exp();
    if ratio >= cfg.ratio_threshold {
        return Some(seg.readings[i1].clone());
    }

    // Γ is silent or torn: fall back to corpus segment frequencies.
    frequency_fallback(seg, g, cfg)
}

/// Likelihood score of a reading: `ln p(c|x) + Σ ln p(y_i | c, x)` for its
/// leading item `c` (paper §2.3.3), ε-smoothed.
fn reading_score(
    reading: &[String],
    x: Option<Symbol>,
    prev: &[Symbol],
    g: &Knowledge,
    eps: f64,
) -> f64 {
    let Some(x) = x else {
        return eps.ln() * (1 + prev.len()) as f64;
    };
    let Some(c) = reading.first().and_then(|i| g.lookup(i)) else {
        return eps.ln() * (1 + prev.len()) as f64;
    };
    let mut s = g.p_sub_given_super(c, x, eps).ln();
    for &y in prev {
        s += g.p_sub_given_cosub(y, c, x, eps).ln();
    }
    s
}

/// Downey-style frequency evidence that a conjunction-bearing string is a
/// single unit: the joined string recurs as a whole segment while its
/// fragments rarely stand alone.
fn join_supported(joined: &str, g: &Knowledge, cfg: &SubConfig) -> bool {
    let joint = g.segment_frequency(joined) as f64;
    if joint <= 0.0 {
        return false;
    }
    let parts: Vec<&str> = joined.split(" and ").chain(joined.split(" or ")).collect();
    let max_part = parts
        .iter()
        .filter(|p| **p != joined)
        .map(|p| g.segment_frequency(p))
        .max()
        .unwrap_or(0) as f64;
    (joint + 1.0) / (max_part + 1.0) >= cfg.freq_ratio
}

/// Pick a reading by raw segment frequency of the leading item. Requires a
/// clear margin; returns `None` otherwise.
fn frequency_fallback(
    seg: &SegmentCandidates,
    g: &Knowledge,
    cfg: &SubConfig,
) -> Option<Vec<String>> {
    let freq_of = |r: &Vec<String>| -> f64 {
        // A split reading is as credible as its rarest fragment.
        r.iter().map(|i| g.segment_frequency(i)).min().unwrap_or(0) as f64
    };
    let mut scored: Vec<(f64, usize)> = seg
        .readings
        .iter()
        .enumerate()
        .map(|(i, r)| (freq_of(r), i))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let (f1, i1) = scored[0];
    let (f2, _) = scored[1];
    if (f1 + 1.0) / (f2 + 1.0) >= cfg.freq_ratio {
        Some(seg.readings[i1].clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg1(readings: &[&[&str]]) -> SegmentCandidates {
        SegmentCandidates {
            raw: readings[0].join(" "),
            readings: readings
                .iter()
                .map(|r| r.iter().map(|s| s.to_string()).collect())
                .collect(),
        }
    }

    fn g_companies() -> Knowledge {
        let mut g = Knowledge::new();
        let company = g.intern("company");
        let ibm = g.intern("IBM");
        let nokia = g.intern("Nokia");
        let pg = g.intern("Proctor and Gamble");
        for _ in 0..10 {
            g.add_pair(company, ibm);
            g.add_pair(company, nokia);
        }
        for _ in 0..4 {
            g.add_pair(company, pg);
        }
        g
    }

    #[test]
    fn unambiguous_items_accepted_in_scope() {
        let g = g_companies();
        let segs = vec![seg1(&[&["IBM"]]), seg1(&[&["Nokia"]])];
        let out = detect_subs("company", &segs, &[], &g, &SubConfig::default());
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            ChosenItem {
                text: "IBM".into(),
                position: 1
            }
        );
        assert_eq!(
            out[1],
            ChosenItem {
                text: "Nokia".into(),
                position: 2
            }
        );
    }

    #[test]
    fn knowledge_resolves_join_vs_split() {
        let g = g_companies();
        let segs = vec![
            seg1(&[&["IBM"]]),
            seg1(&[&["Proctor and Gamble"], &["Proctor", "Gamble"]]),
        ];
        let out = detect_subs("company", &segs, &[], &g, &SubConfig::default());
        assert!(
            out.iter().any(|c| c.text == "Proctor and Gamble"),
            "{out:?}"
        );
        assert!(!out.iter().any(|c| c.text == "Proctor"));
    }

    #[test]
    fn frequency_tiebreak_on_bootstrap() {
        // Γ has no pairs but the pre-pass saw "Proctor and Gamble" often.
        let mut g = Knowledge::new();
        for _ in 0..6 {
            g.add_segment("Proctor and Gamble");
        }
        let segs = vec![seg1(&[&["Proctor and Gamble"], &["Proctor", "Gamble"]])];
        let out = detect_subs("company", &segs, &[], &g, &SubConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].text, "Proctor and Gamble");
    }

    #[test]
    fn unresolvable_ambiguity_stops_extraction() {
        let g = Knowledge::new(); // no pairs, no segment counts
        let segs = vec![seg1(&[&["Proctor and Gamble"], &["Proctor", "Gamble"]])];
        let out = detect_subs("company", &segs, &[], &g, &SubConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn scope_limits_list_drift() {
        // "North America, Europe, China, Japan, and other countries":
        // Γ knows China/Japan as countries but not the continents, so scope
        // must stop before them (positions count from the keywords).
        let mut g = Knowledge::new();
        let country = g.intern("country");
        let china = g.intern("China");
        let japan = g.intern("Japan");
        for _ in 0..5 {
            g.add_pair(country, china);
            g.add_pair(country, japan);
        }
        // positions: 1=Japan, 2=China, 3=Europe, 4=North America
        let segs = vec![
            seg1(&[&["Japan"]]),
            seg1(&[&["China"]]),
            seg1(&[&["Europe"]]),
            seg1(&[&["North America"]]),
        ];
        let out = detect_subs("country", &segs, &[], &g, &SubConfig::default());
        let texts: Vec<&str> = out.iter().map(|c| c.text.as_str()).collect();
        assert_eq!(texts, ["Japan", "China"]);
    }

    #[test]
    fn bootstrap_takes_first_position_only() {
        let g = Knowledge::new();
        let segs = vec![seg1(&[&["cat"]]), seg1(&[&["dog"]]), seg1(&[&["horse"]])];
        let out = detect_subs("animal", &segs, &[], &g, &SubConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].text, "cat");
    }

    #[test]
    fn skip_positions_are_not_reemitted() {
        let g = g_companies();
        let segs = vec![seg1(&[&["IBM"]]), seg1(&[&["Nokia"]])];
        let out = detect_subs("company", &segs, &[1], &g, &SubConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].text, "Nokia");
    }

    #[test]
    fn boundary_cut_resolved_by_knowledge() {
        let mut g = Knowledge::new();
        let country = g.intern("country");
        let malaysia = g.intern("Malaysia");
        for _ in 0..8 {
            g.add_pair(country, malaysia);
        }
        g.intern("Malaysia in recent years");
        let segs = vec![seg1(&[&["Malaysia in recent years"], &["Malaysia"]])];
        let out = detect_subs("country", &segs, &[], &g, &SubConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].text, "Malaysia");
    }
}
