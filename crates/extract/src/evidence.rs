//! Per-extraction evidence records.
//!
//! Every accepted pair occurrence is logged with the features the
//! plausibility model consumes (paper §4.1): the pattern used, the source
//! page's PageRank and credibility, the item's position in the list, and
//! the list length. The `probase-prob` crate trains a Naive Bayes model
//! over exactly these features (Eq. 2) and folds the per-evidence
//! probabilities into a noisy-or plausibility (Eq. 1).

use probase_corpus::sentence::PatternKind;
use serde::{Deserialize, Serialize};

/// Features of one evidence occurrence of an isA pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceRecord {
    /// Normalized super-concept label.
    pub x: String,
    /// Normalized sub-concept item.
    pub y: String,
    /// Sentence the evidence came from.
    pub sentence_id: u64,
    /// Hearst pattern that matched.
    pub pattern: PatternKind,
    /// PageRank of the source page, `[0, 1]`.
    pub page_rank: f64,
    /// Source credibility, `[0, 1]`.
    pub source_quality: f64,
    /// 1-based distance rank of the item from the pattern keywords.
    pub position: u32,
    /// Number of candidate positions in the sentence's list.
    pub list_len: u32,
}

/// Grouped evidence for a single pair.
#[derive(Debug, Clone, Default)]
pub struct PairEvidence {
    pub records: Vec<EvidenceRecord>,
}

impl PairEvidence {
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Group a flat evidence log by `(x, y)`.
pub fn group_by_pair(
    records: &[EvidenceRecord],
) -> std::collections::HashMap<(String, String), PairEvidence> {
    let mut map: std::collections::HashMap<(String, String), PairEvidence> =
        std::collections::HashMap::new();
    for r in records {
        map.entry((r.x.clone(), r.y.clone()))
            .or_default()
            .records
            .push(r.clone());
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(x: &str, y: &str, id: u64) -> EvidenceRecord {
        EvidenceRecord {
            x: x.into(),
            y: y.into(),
            sentence_id: id,
            pattern: PatternKind::SuchAs,
            page_rank: 0.5,
            source_quality: 0.8,
            position: 1,
            list_len: 3,
        }
    }

    #[test]
    fn grouping_collects_per_pair() {
        let recs = vec![
            rec("animal", "cat", 0),
            rec("animal", "cat", 1),
            rec("animal", "dog", 2),
        ];
        let grouped = group_by_pair(&recs);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[&("animal".to_string(), "cat".to_string())].len(), 2);
        assert!(!grouped[&("animal".to_string(), "dog".to_string())].is_empty());
    }
}
