//! Metric-counter contracts of the two extraction drivers.
//!
//! The serial and frozen-Γ parallel drivers may commit different rounds'
//! worth of work on an ambiguous corpus, but on a corpus where every
//! sentence eventually resolves fully, both must arrive at the same
//! fixpoint — and their `extract.*` counters must agree exactly.

use probase_corpus::sentence::{SentenceRecord, SentenceTruth, SourceMeta};
use probase_extract::{extract_observed, extract_parallel_observed, ExtractorConfig};
use probase_obs::{Json, Registry};
use probase_text::Lexicon;

fn rec(id: u64, text: &str) -> SentenceRecord {
    SentenceRecord {
        id,
        text: text.to_string(),
        meta: SourceMeta {
            page_id: id / 3,
            page_rank: 0.4,
            source_quality: 0.8,
        },
        truth: SentenceTruth::default(),
    }
}

/// A corpus where both drivers reach the same full fixpoint: simple
/// single-item sentences bootstrap every concept, and each item of the
/// rotating multi-item lists appears at position 1 somewhere, so list
/// scope eventually covers everything in either driver.
fn fixed_corpus() -> Vec<SentenceRecord> {
    let texts = [
        "animals such as cats.",
        "animals such as dogs.",
        "animals such as horses.",
        "animals such as cats and dogs.",
        "animals such as dogs, horses and cats.",
        "companies such as IBM.",
        "companies such as Nokia.",
        "companies such as Intel.",
        "companies such as IBM, Nokia, Intel.",
        "companies such as Nokia, Intel, IBM.",
        "companies such as Intel, IBM, Nokia.",
        "countries such as China.",
        "countries such as India.",
        "countries such as China and India.",
    ];
    texts
        .iter()
        .enumerate()
        .map(|(i, t)| rec(i as u64, t))
        .collect()
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry
        .snapshot()
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn serial_and_parallel_commit_identical_pair_counters() {
    let corpus = fixed_corpus();
    let cfg = ExtractorConfig::paper();

    let serial_reg = Registry::new();
    let serial = extract_observed(&corpus, &Lexicon::default(), &cfg, &serial_reg);

    let parallel_reg = Registry::new();
    let parallel = extract_parallel_observed(&corpus, &Lexicon::default(), &cfg, 4, &parallel_reg);

    // Both drivers reached the same fixpoint.
    assert_eq!(
        serial.knowledge.pair_count(),
        parallel.knowledge.pair_count()
    );
    assert_eq!(serial.evidence.len(), parallel.evidence.len());

    for name in ["extract.sentences_parsed", "extract.pairs_committed"] {
        assert_eq!(
            counter(&serial_reg, name),
            counter(&parallel_reg, name),
            "counter {name} must agree between drivers"
        );
    }

    // The committed counter is the evidence log, exactly.
    assert_eq!(
        counter(&serial_reg, "extract.pairs_committed"),
        serial.evidence.len() as u64
    );
    assert_eq!(
        counter(&parallel_reg, "extract.pairs_committed"),
        parallel.evidence.len() as u64
    );
    assert_eq!(
        counter(&serial_reg, "extract.sentences_parsed"),
        corpus.len() as u64
    );
}

#[test]
fn rounds_counter_matches_iteration_stats() {
    let corpus = fixed_corpus();
    let cfg = ExtractorConfig::paper();
    let registry = Registry::new();
    let out = extract_observed(&corpus, &Lexicon::default(), &cfg, &registry);
    assert_eq!(
        counter(&registry, "extract.rounds"),
        out.iterations.len() as u64
    );
    // Every round recorded a wall-time span.
    let snap = registry.snapshot();
    let calls = snap
        .get("stages")
        .and_then(|s| s.get("extract.iteration"))
        .and_then(|s| s.get("calls"))
        .and_then(Json::as_u64);
    assert_eq!(calls, Some(out.iterations.len() as u64));
}

#[test]
fn proposed_is_at_least_committed() {
    let corpus = fixed_corpus();
    let registry = Registry::new();
    let _ = extract_observed(
        &corpus,
        &Lexicon::default(),
        &ExtractorConfig::paper(),
        &registry,
    );
    let proposed = counter(&registry, "extract.pairs_proposed");
    let committed = counter(&registry, "extract.pairs_committed");
    assert!(committed > 0);
    assert!(
        proposed >= committed,
        "proposed {proposed} < committed {committed}"
    );
}
