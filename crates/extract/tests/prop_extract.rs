//! Property tests for the extraction pipeline invariants.

use probase_corpus::{generate, CorpusConfig, CorpusGenerator, WorldConfig};
use probase_extract::{
    extract, knowledge_from_bytes, knowledge_to_bytes, ExtractorConfig, Knowledge,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end extraction invariants hold for any seed:
    /// * counts in Γ equal the evidence log exactly,
    /// * no self pairs,
    /// * per-iteration distinct-pair counts are monotone,
    /// * the run terminates at a fixpoint,
    /// * per-sentence groups only contain committed pairs.
    #[test]
    fn extraction_invariants(seed in 0u64..1_000) {
        let world = generate(&WorldConfig::small(seed));
        let corpus = CorpusGenerator::new(
            &world,
            CorpusConfig { seed, sentences: 600, ..CorpusConfig::default() },
        )
        .generate_all();
        let out = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
        let g = &out.knowledge;

        // Evidence log and Γ agree on total mass.
        prop_assert_eq!(out.evidence.len() as u64, g.total());

        // Each evidence record's pair exists with a positive count; never
        // a self pair.
        for e in &out.evidence {
            prop_assert_ne!(&e.x, &e.y);
            let x = g.lookup(&e.x).expect("x interned");
            let y = g.lookup(&e.y).expect("y interned");
            prop_assert!(g.count(x, y) > 0);
            prop_assert!(e.position >= 1);
            prop_assert!(e.list_len >= 1);
        }

        // Iterations are monotone and end at a fixpoint.
        for w in out.iterations.windows(2) {
            prop_assert!(w[1].distinct_pairs >= w[0].distinct_pairs);
            prop_assert!(w[1].evidence_len >= w[0].evidence_len);
        }
        prop_assert_eq!(out.iterations.last().unwrap().new_occurrences, 0);

        // Sentence groups reference committed pairs only.
        for s in &out.sentences {
            let x = g.lookup(&s.super_label).expect("super interned");
            for item in &s.items {
                let y = g.lookup(item).expect("item interned");
                prop_assert!(g.count(x, y) > 0, "({}, {item}) missing from Γ", s.super_label);
            }
        }
    }

    /// Extraction is a pure function of its input corpus.
    #[test]
    fn extraction_deterministic(seed in 0u64..500) {
        let world = generate(&WorldConfig::small(seed));
        let corpus = CorpusGenerator::new(
            &world,
            CorpusConfig { seed, sentences: 300, ..CorpusConfig::default() },
        )
        .generate_all();
        let a = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
        let b = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
        prop_assert_eq!(a.knowledge.pair_count(), b.knowledge.pair_count());
        prop_assert_eq!(a.evidence.len(), b.evidence.len());
        prop_assert_eq!(a.sentences, b.sentences);
    }

    /// Arbitrary garbage never panics the Γ decoder: every failure mode
    /// surfaces as a structured `PersistError`.
    #[test]
    fn persist_decoder_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = knowledge_from_bytes(bytes.as_slice());
    }

    /// A real extraction's Γ round-trips byte-identically; every strict
    /// prefix is rejected; and flipping one byte never panics the
    /// decoder (anything that still decodes re-encodes cleanly).
    #[test]
    fn persist_decoder_is_robust(
        seed in 0u64..200,
        cut in any::<proptest::sample::Index>(),
        xor in 1u8..,
    ) {
        let world = generate(&WorldConfig::small(seed));
        let corpus = CorpusGenerator::new(
            &world,
            CorpusConfig { seed, sentences: 200, ..CorpusConfig::default() },
        )
        .generate_all();
        let out = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
        let bytes = knowledge_to_bytes(&out.knowledge).expect("encode");

        // Round-trip: decode then re-encode is byte-identical (both the
        // interner order and the table sort are deterministic).
        let decoded: Knowledge = knowledge_from_bytes(bytes.clone()).expect("roundtrip decodes");
        prop_assert_eq!(decoded.pair_count(), out.knowledge.pair_count());
        prop_assert_eq!(decoded.total(), out.knowledge.total());
        prop_assert_eq!(knowledge_to_bytes(&decoded).expect("re-encode"), bytes.clone());

        // Truncation is always detected.
        let cut_at = cut.index(bytes.len());
        prop_assert!(knowledge_from_bytes(&bytes[..cut_at]).is_err());

        // Single-byte corruption never panics.
        let mut corrupt = bytes.to_vec();
        corrupt[cut_at] ^= xor;
        if let Ok(g) = knowledge_from_bytes(corrupt.as_slice()) {
            knowledge_to_bytes(&g).expect("decoded Γ re-encodes");
        }
    }
}
