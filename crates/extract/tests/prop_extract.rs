//! Property tests for the extraction pipeline invariants.

use probase_corpus::{generate, CorpusConfig, CorpusGenerator, WorldConfig};
use probase_extract::{extract, ExtractorConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end extraction invariants hold for any seed:
    /// * counts in Γ equal the evidence log exactly,
    /// * no self pairs,
    /// * per-iteration distinct-pair counts are monotone,
    /// * the run terminates at a fixpoint,
    /// * per-sentence groups only contain committed pairs.
    #[test]
    fn extraction_invariants(seed in 0u64..1_000) {
        let world = generate(&WorldConfig::small(seed));
        let corpus = CorpusGenerator::new(
            &world,
            CorpusConfig { seed, sentences: 600, ..CorpusConfig::default() },
        )
        .generate_all();
        let out = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
        let g = &out.knowledge;

        // Evidence log and Γ agree on total mass.
        prop_assert_eq!(out.evidence.len() as u64, g.total());

        // Each evidence record's pair exists with a positive count; never
        // a self pair.
        for e in &out.evidence {
            prop_assert_ne!(&e.x, &e.y);
            let x = g.lookup(&e.x).expect("x interned");
            let y = g.lookup(&e.y).expect("y interned");
            prop_assert!(g.count(x, y) > 0);
            prop_assert!(e.position >= 1);
            prop_assert!(e.list_len >= 1);
        }

        // Iterations are monotone and end at a fixpoint.
        for w in out.iterations.windows(2) {
            prop_assert!(w[1].distinct_pairs >= w[0].distinct_pairs);
            prop_assert!(w[1].evidence_len >= w[0].evidence_len);
        }
        prop_assert_eq!(out.iterations.last().unwrap().new_occurrences, 0);

        // Sentence groups reference committed pairs only.
        for s in &out.sentences {
            let x = g.lookup(&s.super_label).expect("super interned");
            for item in &s.items {
                let y = g.lookup(item).expect("item interned");
                prop_assert!(g.count(x, y) > 0, "({}, {item}) missing from Γ", s.super_label);
            }
        }
    }

    /// Extraction is a pure function of its input corpus.
    #[test]
    fn extraction_deterministic(seed in 0u64..500) {
        let world = generate(&WorldConfig::small(seed));
        let corpus = CorpusGenerator::new(
            &world,
            CorpusConfig { seed, sentences: 300, ..CorpusConfig::default() },
        )
        .generate_all();
        let a = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
        let b = extract(&corpus, &world.lexicon, &ExtractorConfig::paper());
        prop_assert_eq!(a.knowledge.pair_count(), b.knowledge.pair_count());
        prop_assert_eq!(a.evidence.len(), b.evidence.len());
        prop_assert_eq!(a.sentences, b.sentences);
    }
}
