//! Behavioral tests for the baselines on realistic corpora: the failure
//! modes of §2.1 must actually occur, in the direction the paper claims.

use probase_baselines::{
    extract_syntactic, sample_rival, RivalConfig, SyntacticConfig, TaxonomyView,
};
use probase_corpus::{generate, CorpusConfig, CorpusGenerator, WorldConfig};

fn world() -> probase_corpus::World {
    generate(&WorldConfig::small(91))
}

#[test]
fn syntactic_baseline_volume_exceeds_semantic_quality() {
    // The baseline extracts *more* distinct pairs (it never defers), but a
    // larger share of them is junk — measured against truth elsewhere; here
    // we check the volume direction and the drift counter.
    let w = world();
    let corpus = CorpusGenerator::new(
        &w,
        CorpusConfig {
            seed: 91,
            sentences: 3_000,
            ..CorpusConfig::default()
        },
    )
    .generate_all();
    let no_boot = extract_syntactic(
        &corpus,
        &w.lexicon,
        &SyntacticConfig {
            bootstrap_patterns: false,
            ..Default::default()
        },
    );
    let boot = extract_syntactic(&corpus, &w.lexicon, &SyntacticConfig::default());
    assert!(no_boot.distinct_pairs() > 500);
    assert!(
        boot.distinct_pairs() > no_boot.distinct_pairs(),
        "bootstrapping must add (drifted) volume"
    );
    assert!(boot.bootstrapped_pairs > 0);
}

#[test]
fn proper_only_loses_common_noun_recall() {
    let w = world();
    let corpus = CorpusGenerator::new(
        &w,
        CorpusConfig {
            seed: 92,
            sentences: 3_000,
            ..CorpusConfig::default()
        },
    )
    .generate_all();
    let full = extract_syntactic(
        &corpus,
        &w.lexicon,
        &SyntacticConfig {
            bootstrap_patterns: false,
            ..Default::default()
        },
    );
    let proper = extract_syntactic(
        &corpus,
        &w.lexicon,
        &SyntacticConfig {
            proper_only: true,
            bootstrap_patterns: false,
            ..Default::default()
        },
    );
    assert!(proper.distinct_pairs() < full.distinct_pairs());
    // (animal, cat) style pairs vanish under proper-only.
    let has_cat = |out: &probase_baselines::BaselineOutput| {
        out.pairs
            .keys()
            .any(|(x, y)| x == "animal" && (y == "cat" || y == "cats"))
    };
    assert!(has_cat(&full), "full baseline should find (animal, cat)");
    assert!(
        !has_cat(&proper),
        "proper-only cannot find common-noun instances"
    );
}

#[test]
fn head_noun_super_never_yields_multiword_concepts() {
    let w = world();
    let corpus = CorpusGenerator::new(
        &w,
        CorpusConfig {
            seed: 93,
            sentences: 2_000,
            ..CorpusConfig::default()
        },
    )
    .generate_all();
    let out = extract_syntactic(
        &corpus,
        &w.lexicon,
        &SyntacticConfig {
            bootstrap_patterns: false,
            head_noun_super: true,
            ..Default::default()
        },
    );
    assert!(
        out.pairs.keys().all(|(x, _)| !x.contains(' ')),
        "head-noun supers must be single words"
    );
}

#[test]
fn rivals_scale_with_world_size() {
    let small = generate(&WorldConfig::small(94));
    let big = generate(&WorldConfig {
        seed: 94,
        filler_concepts: 400,
        ..WorldConfig::small(94)
    });
    for cfg in [RivalConfig::yago(), RivalConfig::wikitaxonomy()] {
        let a = sample_rival(&small, &cfg);
        let b = sample_rival(&big, &cfg);
        assert!(
            b.concept_count() >= a.concept_count(),
            "{}: {} vs {}",
            cfg.name,
            a.concept_count(),
            b.concept_count()
        );
    }
}

#[test]
fn rival_graphs_are_acyclic() {
    let w = world();
    for cfg in RivalConfig::panel() {
        let r = sample_rival(&w, &cfg);
        // GraphStats panics on cycles; reaching here proves acyclicity.
        let stats = r.stats();
        if cfg.keep_hierarchy {
            assert!(stats.concepts > 0, "{}", cfg.name);
        }
    }
}
