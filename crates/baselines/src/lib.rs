//! # probase-baselines
//!
//! Comparators for the evaluation (SIGMOD 2012 §5):
//!
//! * [`syntactic`] — the syntactic-iteration extraction family
//!   (KnowItAll / TextRunner / NELL style) whose precision Figure 9
//!   compares against Probase's, exhibiting exactly the failure modes §2.1
//!   catalogs: distractor super-concepts, conjunction splitting, list
//!   drift, proper-noun-only recall loss, and bootstrapped-pattern
//!   semantic drift.
//! * [`rivals`] — structural simulators of the rival taxonomies of
//!   Table 1 (WordNet, WikiTaxonomy, YAGO, Freebase), sampled from the
//!   ground-truth world with each rival's documented signature, feeding
//!   Figures 5–8 and Table 4.

pub mod rivals;
pub mod syntactic;

pub use rivals::{sample_rival, GraphView, RivalConfig, RivalTaxonomy, TaxonomyView};
pub use syntactic::{extract_syntactic, BaselineOutput, SyntacticConfig};
