//! Syntactic-iteration extraction baselines (paper §2.1).
//!
//! These reproduce the behavior of the KnowItAll / TextRunner / NELL
//! family that Probase's Figure 9 compares against. They share Probase's
//! Hearst matcher but make every decision *syntactically*:
//!
//! * the super-concept is the **closest** plural NP to the keywords — so
//!   "animals other than **dogs** such as cats" yields `(dog, cat)`;
//! * conjunctions are always delimiters — "Proctor and Gamble" becomes
//!   two companies;
//! * there is no scope detection — drifted list prefixes ("…, Europe, and
//!   other countries") are extracted wholesale;
//! * optionally, instances are restricted to proper nouns (the precision/
//!   recall trade the paper describes: "(cat isA animal)" is lost);
//! * optionally, a **pattern-bootstrapping** iteration learns new
//!   lexical contexts from known instances and harvests from them — the
//!   mechanism behind *semantic drift* ("war with x" ⇒ x = planet Earth).

use probase_corpus::sentence::SentenceRecord;
use probase_extract::pattern::find_pattern;
use probase_extract::syntactic::normalize_sub;
use probase_text::{normalize_concept, tag_tokens, tokenize, Chunker, Lexicon, Tag, TaggedToken};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the syntactic baseline.
#[derive(Debug, Clone)]
pub struct SyntacticConfig {
    /// Restrict extracted instances to proper-noun-looking items.
    pub proper_only: bool,
    /// Strip modifiers off the super-concept ("industrialized countries"
    /// → "countries"), as most baseline systems do (§2.1 third bullet).
    pub head_noun_super: bool,
    /// Run the pattern-bootstrapping iteration (semantic drift source).
    pub bootstrap_patterns: bool,
    /// Minimum support for a learned context pattern.
    pub min_pattern_support: u32,
}

impl Default for SyntacticConfig {
    fn default() -> Self {
        Self {
            proper_only: false,
            head_noun_super: true,
            bootstrap_patterns: true,
            min_pattern_support: 3,
        }
    }
}

/// Output of a baseline run: pair occurrence counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BaselineOutput {
    /// `(super, sub) → occurrences`.
    pub pairs: HashMap<(String, String), u32>,
    /// Pairs produced by learned (non-Hearst) patterns — the drift-prone
    /// portion, reported separately for the ablation.
    pub bootstrapped_pairs: usize,
}

impl BaselineOutput {
    fn add(&mut self, x: String, y: String) {
        if x != y {
            *self.pairs.entry((x, y)).or_insert(0) += 1;
        }
    }

    pub fn distinct_pairs(&self) -> usize {
        self.pairs.len()
    }
}

/// Run the syntactic baseline over a corpus.
pub fn extract_syntactic(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    cfg: &SyntacticConfig,
) -> BaselineOutput {
    let chunker = Chunker::default();
    let mut out = BaselineOutput::default();
    // instance → concept map for bootstrapping, filled during phase 1.
    let mut known: HashMap<String, String> = HashMap::new();

    for rec in records {
        let tagged = tag_tokens(&tokenize(&rec.text), lexicon);
        let Some(pm) = find_pattern(&tagged) else {
            continue;
        };
        // Closest plural NP: last NP of the super region for forward
        // patterns, first for reverse ones.
        let (ss, se) = pm.super_region;
        let mut phrases = chunker.chunk(&tagged[ss..se]);
        phrases.retain(|p| p.head_plural);
        let reverse = matches!(
            pm.kind,
            probase_corpus::sentence::PatternKind::AndOther
                | probase_corpus::sentence::PatternKind::OrOther
        );
        let super_np = if reverse {
            phrases.first()
        } else {
            phrases.last()
        };
        let Some(super_np) = super_np else { continue };
        let super_label = if cfg.head_noun_super {
            normalize_concept(super_np.head())
        } else {
            normalize_concept(&super_np.text())
        };

        // All segments, always splitting at conjunctions.
        let (ls, le) = pm.list_region;
        for item in naive_segments(&tagged[ls..le]) {
            if cfg.proper_only && !looks_proper(&item) {
                continue;
            }
            let norm = normalize_sub(&item);
            known
                .entry(norm.clone())
                .or_insert_with(|| super_label.clone());
            out.add(super_label.clone(), norm);
        }
    }

    if cfg.bootstrap_patterns {
        bootstrap(records, lexicon, &known, cfg, &mut out);
    }
    out
}

/// Naive list segmentation: commas, semicolons, and conjunctions all
/// delimit; the sentence period ends the list; no boundary-cut readings.
fn naive_segments(tokens: &[TaggedToken]) -> Vec<String> {
    let mut out = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    for t in tokens {
        match t.tag {
            Tag::Punct => match t.token.text.as_str() {
                "," | ";" => flush(&mut current, &mut out),
                "." | "!" | "?" => break,
                _ => {}
            },
            Tag::Conj => flush(&mut current, &mut out),
            _ => current.push(&t.token.text),
        }
    }
    flush(&mut current, &mut out);
    out.retain(|s| !s.is_empty() && s.to_lowercase() != "etc");
    out
}

fn flush(current: &mut Vec<&str>, out: &mut Vec<String>) {
    if !current.is_empty() {
        out.push(current.join(" "));
        current.clear();
    }
}

fn looks_proper(item: &str) -> bool {
    item.split_whitespace()
        .next()
        .is_some_and(|w| w.chars().next().is_some_and(|c| c.is_uppercase()))
}

/// Phase 2: learn lexical contexts around known instances from *all*
/// sentences, then harvest whatever else appears in those contexts. This
/// is how syntactic bootstrapping drifts: a context like "the committee
/// discussed {X}" is not specific to any concept.
fn bootstrap(
    records: &[SentenceRecord],
    lexicon: &Lexicon,
    known: &HashMap<String, String>,
    cfg: &SyntacticConfig,
    out: &mut BaselineOutput,
) {
    // context = (previous word, following word) around a proper NP.
    let mut contexts: HashMap<(String, String), HashMap<String, u32>> = HashMap::new();
    let mut occurrences: Vec<((String, String), String)> = Vec::new();
    for rec in records {
        let tagged = tag_tokens(&tokenize(&rec.text), lexicon);
        for (i, t) in tagged.iter().enumerate() {
            if !t.tag.is_noun() {
                continue;
            }
            let prev = if i > 0 {
                tagged[i - 1].token.text.to_lowercase()
            } else {
                "^".into()
            };
            let next = if i + 1 < tagged.len() {
                tagged[i + 1].token.text.to_lowercase()
            } else {
                "$".into()
            };
            let term = normalize_sub(&t.token.text);
            let ctx = (prev, next);
            if let Some(concept) = known.get(&term) {
                *contexts
                    .entry(ctx.clone())
                    .or_default()
                    .entry(concept.clone())
                    .or_insert(0) += 1;
            }
            occurrences.push((ctx, term));
        }
    }
    // A context is adopted for a concept when its support clears the bar.
    let adopted: HashMap<(String, String), String> = contexts
        .into_iter()
        .filter_map(|(ctx, by_concept)| {
            let (concept, n) = by_concept.into_iter().max_by_key(|&(_, n)| n)?;
            (n >= cfg.min_pattern_support).then_some((ctx, concept))
        })
        .collect();
    for (ctx, term) in occurrences {
        if let Some(concept) = adopted.get(&ctx) {
            if known.get(&term) != Some(concept) {
                out.add(concept.clone(), term);
                out.bootstrapped_pairs += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_corpus::sentence::{SentenceTruth, SourceMeta};

    fn rec(id: u64, text: &str) -> SentenceRecord {
        SentenceRecord {
            id,
            text: text.to_string(),
            meta: SourceMeta {
                page_id: 0,
                page_rank: 0.5,
                source_quality: 0.5,
            },
            truth: SentenceTruth::default(),
        }
    }

    fn run(texts: &[&str], cfg: &SyntacticConfig) -> BaselineOutput {
        let records: Vec<SentenceRecord> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| rec(i as u64, t))
            .collect();
        extract_syntactic(&records, &Lexicon::default(), cfg)
    }

    fn no_bootstrap() -> SyntacticConfig {
        SyntacticConfig {
            bootstrap_patterns: false,
            ..Default::default()
        }
    }

    #[test]
    fn falls_for_other_than_distractor() {
        let out = run(&["animals other than dogs such as cats."], &no_bootstrap());
        assert!(
            out.pairs
                .contains_key(&("dog".to_string(), "cat".to_string())),
            "{:?}",
            out.pairs
        );
        assert!(!out
            .pairs
            .contains_key(&("animal".to_string(), "cat".to_string())));
    }

    #[test]
    fn splits_conjunction_names() {
        let out = run(
            &["companies such as IBM, Proctor and Gamble."],
            &no_bootstrap(),
        );
        assert!(out
            .pairs
            .contains_key(&("company".to_string(), "Proctor".to_string())));
        assert!(out
            .pairs
            .contains_key(&("company".to_string(), "Gamble".to_string())));
        assert!(!out.pairs.keys().any(|(_, y)| y == "Proctor and Gamble"));
    }

    #[test]
    fn swallows_drifted_lists() {
        let out = run(
            &["representatives in North America, Europe, China, and other countries."],
            &no_bootstrap(),
        );
        assert!(
            out.pairs
                .contains_key(&("country".to_string(), "Europe".to_string())),
            "{:?}",
            out.pairs
        );
    }

    #[test]
    fn head_noun_super_loses_specific_concept() {
        let out = run(
            &["industrialized countries such as Germany."],
            &no_bootstrap(),
        );
        assert!(out
            .pairs
            .contains_key(&("country".to_string(), "Germany".to_string())));
        assert!(!out.pairs.keys().any(|(x, _)| x == "industrialized country"));
    }

    #[test]
    fn proper_only_drops_common_instances() {
        let cfg = SyntacticConfig {
            proper_only: true,
            bootstrap_patterns: false,
            ..Default::default()
        };
        let out = run(&["animals such as cats and dogs."], &cfg);
        assert_eq!(out.distinct_pairs(), 0);
    }

    #[test]
    fn bootstrapping_drifts() {
        // "the committee discussed {X}" context is learned from countries
        // and then harvests a disease.
        let mut texts = vec![
            "countries such as France.",
            "countries such as Spain.",
            "countries such as Poland.",
        ];
        texts.extend([
            "the committee discussed France .",
            "the committee discussed Spain .",
            "the committee discussed Poland .",
        ]);
        texts.push("the committee discussed Malaria .");
        let out = run(&texts, &SyntacticConfig::default());
        assert!(
            out.pairs
                .contains_key(&("country".to_string(), "Malaria".to_string())),
            "expected drift pair: {:?}",
            out.pairs
        );
        assert!(out.bootstrapped_pairs >= 1);
    }
}
