//! Rival taxonomy simulators (paper Table 1, Figures 5–8).
//!
//! The paper compares Probase to WordNet, WikiTaxonomy, YAGO, and
//! Freebase. Those artifacts are external data we do not ship; what the
//! experiments actually consume is each rival's *structural signature* —
//! how many concepts it knows, how deep its hierarchy is, how its
//! instances distribute. Each simulator samples the ground-truth world
//! with its rival's documented signature (scaled to our world size):
//!
//! | rival | signature |
//! |---|---|
//! | WordNet | small, curated, deep; common nouns; few proper instances |
//! | WikiTaxonomy | mid-size; topic-like concepts; moderate instances |
//! | YAGO | larger concept set; many proper instances; shallow |
//! | Freebase | **tiny** concept set, **zero** concept-subconcept edges, enormous instance sets concentrated in a few concepts |

use probase_corpus::{World, WorldIndex};
use probase_store::{ConceptGraph, GraphHandle, GraphStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Anything the coverage experiments can interrogate.
pub trait TaxonomyView {
    /// Display name ("YAGO", "Probase", …).
    fn name(&self) -> &str;
    /// Does the taxonomy contain this concept label?
    fn has_concept(&self, label: &str) -> bool;
    /// Does it contain this term at all (concept or instance)?
    fn has_term(&self, term: &str) -> bool;
    /// Number of concepts.
    fn concept_count(&self) -> usize;
    /// Instance-set sizes per concept (Figure 8's histogram input).
    fn concept_sizes(&self) -> Vec<usize>;
}

/// A sampled rival taxonomy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RivalTaxonomy {
    pub name: String,
    concepts: HashSet<String>,
    /// lowercase term → present
    terms: HashSet<String>,
    /// instance count per concept
    sizes: HashMap<String, usize>,
    pub concept_instance_pairs: usize,
    pub concept_subconcept_pairs: usize,
    /// Hierarchy edges retained (empty for Freebase).
    edges: Vec<(String, String)>,
}

impl TaxonomyView for RivalTaxonomy {
    fn name(&self) -> &str {
        &self.name
    }
    fn has_concept(&self, label: &str) -> bool {
        self.concepts.contains(label)
    }
    fn has_term(&self, term: &str) -> bool {
        self.terms.contains(&term.to_lowercase())
    }
    fn concept_count(&self) -> usize {
        self.concepts.len()
    }
    fn concept_sizes(&self) -> Vec<usize> {
        self.sizes.values().copied().collect()
    }
}

impl RivalTaxonomy {
    /// Build a [`ConceptGraph`] of the rival for Table 4 statistics.
    pub fn to_graph(&self) -> ConceptGraph {
        let mut g = ConceptGraph::new();
        for (parent, child) in &self.edges {
            let p = g.ensure_node(parent, 0);
            let c = g.ensure_node(child, 0);
            if p != c {
                g.add_evidence(p, c, 1);
            }
        }
        g
    }

    /// Table 4 statistics for the rival.
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(&self.to_graph())
    }
}

/// Sampling knobs for one rival.
#[derive(Debug, Clone)]
pub struct RivalConfig {
    pub name: &'static str,
    /// Fraction of world concepts included.
    pub concept_fraction: f64,
    /// Curated concepts always included?
    pub include_curated: bool,
    /// Per-concept cap on instances (None = all).
    pub max_instances: Option<usize>,
    /// Fraction of each concept's instances included.
    pub instance_fraction: f64,
    /// Keep concept-subconcept edges?
    pub keep_hierarchy: bool,
    pub seed: u64,
}

impl RivalConfig {
    pub fn wordnet() -> Self {
        Self {
            name: "WordNet",
            concept_fraction: 0.02,
            include_curated: true,
            max_instances: Some(6),
            instance_fraction: 0.3,
            keep_hierarchy: true,
            seed: 101,
        }
    }

    pub fn wikitaxonomy() -> Self {
        Self {
            name: "WikiTaxonomy",
            concept_fraction: 0.08,
            include_curated: true,
            max_instances: Some(10),
            instance_fraction: 0.35,
            keep_hierarchy: true,
            seed: 102,
        }
    }

    pub fn yago() -> Self {
        Self {
            name: "YAGO",
            concept_fraction: 0.13,
            include_curated: true,
            max_instances: Some(40),
            instance_fraction: 0.6,
            keep_hierarchy: true,
            seed: 103,
        }
    }

    pub fn freebase() -> Self {
        Self {
            name: "Freebase",
            concept_fraction: 0.002,
            include_curated: false,
            max_instances: None,
            instance_fraction: 1.0,
            keep_hierarchy: false,
            seed: 104,
        }
    }

    /// The standard panel compared throughout §5.
    pub fn panel() -> Vec<RivalConfig> {
        vec![
            Self::wordnet(),
            Self::wikitaxonomy(),
            Self::yago(),
            Self::freebase(),
        ]
    }
}

/// Sample a rival taxonomy from the world.
pub fn sample_rival(world: &World, cfg: &RivalConfig) -> RivalTaxonomy {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let idx = WorldIndex::new(world);
    let mut concepts: HashSet<String> = HashSet::new();
    let mut chosen_ids = Vec::new();

    // Freebase concentrates on the most popular concepts; others sample.
    if cfg.name == "Freebase" {
        let mut by_pop: Vec<_> = world
            .concepts
            .iter()
            .filter(|c| !c.instances.is_empty())
            .collect();
        by_pop.sort_by(|a, b| b.popularity.partial_cmp(&a.popularity).expect("finite"));
        let take = ((world.concepts.len() as f64 * cfg.concept_fraction).ceil() as usize).max(8);
        for c in by_pop.into_iter().take(take) {
            concepts.insert(c.label.clone());
            chosen_ids.push(c.id);
        }
    } else {
        for c in &world.concepts {
            let take = (cfg.include_curated && c.curated) || rng.gen_bool(cfg.concept_fraction);
            if take && !c.instances.is_empty() {
                concepts.insert(c.label.clone());
                chosen_ids.push(c.id);
            }
        }
    }

    let mut terms: HashSet<String> = concepts.iter().map(|c| c.to_lowercase()).collect();
    let mut sizes: HashMap<String, usize> = HashMap::new();
    let mut concept_instance_pairs = 0;
    for &cid in &chosen_ids {
        let c = world.concept(cid);
        let mut n = 0;
        for m in &c.instances {
            if !rng.gen_bool(cfg.instance_fraction.clamp(0.0, 1.0)) {
                continue;
            }
            if let Some(cap) = cfg.max_instances {
                if n >= cap {
                    break;
                }
            }
            let inst = world.instance(m.instance);
            terms.insert(inst.surface.to_lowercase());
            n += 1;
        }
        // Freebase inflates head concepts: every transitive instance is
        // listed directly under the concept (flat, huge sets).
        if cfg.name == "Freebase" {
            n = idx.world().closure_instances(cid).len().max(n);
        }
        concept_instance_pairs += n;
        *sizes.entry(c.label.clone()).or_insert(0) += n;
    }

    let mut edges = Vec::new();
    if cfg.keep_hierarchy {
        for &cid in &chosen_ids {
            let c = world.concept(cid);
            for &ch in &c.children {
                let child = world.concept(ch);
                if concepts.contains(&child.label) {
                    edges.push((c.label.clone(), child.label.clone()));
                }
            }
            // Leaf instances as graph leaves (sampled small set).
            for m in c
                .instances
                .iter()
                .take(cfg.max_instances.unwrap_or(5).min(5))
            {
                edges.push((c.label.clone(), world.instance(m.instance).surface.clone()));
            }
        }
    } else {
        for &cid in &chosen_ids {
            let c = world.concept(cid);
            for m in c.instances.iter().take(50) {
                edges.push((c.label.clone(), world.instance(m.instance).surface.clone()));
            }
        }
    }

    let concept_subconcept_pairs = if cfg.keep_hierarchy {
        edges.iter().filter(|(_, c)| concepts.contains(c)).count()
    } else {
        0
    };
    RivalTaxonomy {
        name: cfg.name.to_string(),
        concepts,
        terms,
        sizes,
        concept_instance_pairs,
        concept_subconcept_pairs,
        edges,
    }
}

/// A [`TaxonomyView`] over a built Probase graph.
pub struct GraphView<'g> {
    pub name: String,
    pub graph: &'g GraphHandle,
}

impl TaxonomyView for GraphView<'_> {
    fn name(&self) -> &str {
        &self.name
    }
    fn has_concept(&self, label: &str) -> bool {
        self.graph
            .senses_of(label)
            .iter()
            .any(|&n| !self.graph.is_instance(n))
    }
    fn has_term(&self, term: &str) -> bool {
        !self.graph.senses_of(term).is_empty()
    }
    fn concept_count(&self) -> usize {
        self.graph.concepts().count()
    }
    fn concept_sizes(&self) -> Vec<usize> {
        self.graph
            .concepts()
            .map(|c| {
                self.graph
                    .children(c)
                    .filter(|(n, _)| self.graph.is_instance(*n))
                    .count()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probase_corpus::{generate, WorldConfig};

    fn world() -> World {
        generate(&WorldConfig::small(31))
    }

    #[test]
    fn panel_has_expected_scale_ordering() {
        let w = world();
        let rivals: Vec<RivalTaxonomy> = RivalConfig::panel()
            .iter()
            .map(|c| sample_rival(&w, c))
            .collect();
        let by_name: HashMap<&str, &RivalTaxonomy> =
            rivals.iter().map(|r| (r.name.as_str(), r)).collect();
        // Freebase has very few concepts, WordNet few, YAGO most.
        assert!(by_name["Freebase"].concept_count() < by_name["WordNet"].concept_count());
        assert!(by_name["WordNet"].concept_count() <= by_name["YAGO"].concept_count());
    }

    #[test]
    fn freebase_has_no_hierarchy_but_big_sets() {
        let w = world();
        let fb = sample_rival(&w, &RivalConfig::freebase());
        assert_eq!(fb.concept_subconcept_pairs, 0);
        assert_eq!(fb.stats().concept_subconcept_pairs, 0);
        let max_size = fb.concept_sizes().into_iter().max().unwrap_or(0);
        let wn = sample_rival(&w, &RivalConfig::wordnet());
        let wn_max = wn.concept_sizes().into_iter().max().unwrap_or(0);
        assert!(max_size > wn_max, "freebase {max_size} vs wordnet {wn_max}");
    }

    #[test]
    fn wordnet_keeps_hierarchy() {
        let w = world();
        let wn = sample_rival(&w, &RivalConfig::wordnet());
        assert!(wn.concept_subconcept_pairs > 0);
        let stats = wn.stats();
        assert!(stats.max_level >= 2, "{stats:?}");
    }

    #[test]
    fn term_lookup_case_insensitive() {
        let w = world();
        let yago = sample_rival(&w, &RivalConfig::yago());
        assert!(yago.has_concept("country"));
        assert!(yago.has_term("country"));
        // Some curated instance should be present.
        assert!(yago.has_term("china") || yago.has_term("india") || yago.has_term("usa"));
    }

    #[test]
    fn sampling_is_deterministic() {
        let w = world();
        let a = sample_rival(&w, &RivalConfig::yago());
        let b = sample_rival(&w, &RivalConfig::yago());
        assert_eq!(a.concept_count(), b.concept_count());
        assert_eq!(a.concept_instance_pairs, b.concept_instance_pairs);
    }
}
