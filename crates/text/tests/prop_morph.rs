//! Property tests for the morphology and tokenizer invariants.

use probase_text::{is_plural, normalize_concept, pluralize, singularize, tokenize};
use proptest::prelude::*;

/// Generator for regular lowercase nouns. Endings that are genuinely
/// ambiguous in English are excluded: a final "i"/"u" yields plurals in
/// "-is"/"-us" that collide with Latinate singulars ("skis" vs "basis",
/// "menus" vs "virus") — no suffix heuristic can have both. The corpus
/// simulator's coined nouns avoid those endings for the same reason.
fn word() -> impl Strategy<Value = String> {
    // Words whose regular plural collides with a lexical exception
    // ("ga"+s = "gas", "len"+s = "lens") are excluded too.
    const EXCEPTION_PLURALS: &[&str] = &[
        "gas", "bus", "lens", "iris", "virus", "campus", "status", "bonus", "census", "corpus",
        "genius", "chaos", "atlas", "canvas", "tennis", "physics", "news", "species", "series",
        "means", "broccoli", "spinach", "sushi", "beef", "dairy", "rice", "milk", "cheese",
        "bread", "butter", "tobacco", "alcohol", "water", "diabetes", "rabies", "measles",
    ];
    "[a-z]{2,10}".prop_filter("regular plural spelling", |w| {
        // "ic" excluded: "ic"+s = "ics", which the -ics rule treats as singular.
        let bad_end = [
            "s", "x", "z", "i", "u", "oe", "he", "xe", "ze", "se", "ie", "ic",
        ];
        !bad_end.iter().any(|e| w.ends_with(e))
            && !EXCEPTION_PLURALS.contains(&pluralize(w).as_str())
            && !EXCEPTION_PLURALS.contains(&w.as_str())
    })
}

proptest! {
    /// pluralize → is_plural holds for any regular noun.
    #[test]
    fn pluralize_is_detected(w in word()) {
        let p = pluralize(&w);
        prop_assert!(is_plural(&p), "{w} -> {p}");
    }

    /// singularize(pluralize(w)) == w for regular nouns.
    #[test]
    fn plural_roundtrip(w in word()) {
        let p = pluralize(&w);
        prop_assert_eq!(singularize(&p), w);
    }

    /// singularize is idempotent.
    #[test]
    fn singularize_idempotent(w in "[a-z]{2,12}") {
        let once = singularize(&w);
        prop_assert_eq!(singularize(&once), once.clone());
    }

    /// Tokenizer spans always slice back to the token text, in order,
    /// without overlap.
    #[test]
    fn token_spans_are_consistent(s in "[ -~]{0,80}") {
        let tokens = tokenize(&s);
        let mut last_end = 0;
        for t in &tokens {
            prop_assert!(t.start >= last_end);
            prop_assert!(t.end > t.start);
            prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
            last_end = t.end;
        }
    }

    /// Tokenization never panics on arbitrary unicode.
    #[test]
    fn tokenize_total(s in "\\PC{0,60}") {
        let _ = tokenize(&s);
    }

    /// normalize_concept is idempotent.
    #[test]
    fn normalize_concept_idempotent(s in "[A-Za-z ]{0,40}") {
        let once = normalize_concept(&s);
        prop_assert_eq!(normalize_concept(&once), once.clone());
    }
}
