//! Edge-case tests for the NLP substrate beyond the per-module units.

use probase_text::{
    chunk_noun_phrases, normalize_concept, split_sentences, tag_tokens, tokenize, Chunker,
    LexEntry, Lexicon, Tag,
};

#[test]
fn lexicon_noun_override_controls_plurality() {
    let mut lex = Lexicon::new();
    lex.insert("grepins", LexEntry::Noun);
    let tagged = tag_tokens(&tokenize("grepins such as things"), &lex);
    assert_eq!(
        tagged[0].tag,
        Tag::Noun {
            plural: true,
            proper: false
        }
    );
}

#[test]
fn lexicon_proper_override_beats_capitalization_rule() {
    let mut lex = Lexicon::new();
    lex.insert("ebay", LexEntry::ProperNoun);
    // lowercase "ebay" is still a proper noun with the override.
    let tagged = tag_tokens(&tokenize("sites like ebay grow"), &lex);
    let ebay = tagged.iter().find(|t| t.token.text == "ebay").unwrap();
    assert!(ebay.tag.is_proper_noun());
}

#[test]
fn chunker_handles_alphanumeric_model_names() {
    // "A320" reads as an acronym-like noun, so it heads a phrase; a pure
    // number ("747") cannot head an NP, so "Boeing 747" chunks to its
    // noun prefix. (List-side extraction uses raw segments, so instance
    // surfaces like "Boeing 747" are still captured verbatim there.)
    let phrases = chunk_noun_phrases("models such as Airbus A320 and Boeing 747", &Lexicon::new());
    let texts: Vec<String> = phrases.iter().map(|p| p.text()).collect();
    assert!(texts.contains(&"Airbus A320".to_string()), "{texts:?}");
    assert!(texts.contains(&"Boeing".to_string()), "{texts:?}");
}

#[test]
fn chunker_empty_input() {
    let tagged = tag_tokens(&tokenize(""), &Lexicon::new());
    assert!(Chunker::default().chunk(&tagged).is_empty());
}

#[test]
fn normalize_concept_handles_multiword_modifiers() {
    assert_eq!(
        normalize_concept("Very Large IT Companies"),
        "very large it companies".replace("companies", "company")
    );
    assert_eq!(
        normalize_concept("renewable energy technologies"),
        "renewable energy technology"
    );
}

#[test]
fn sentence_splitter_handles_exclamations_and_questions() {
    let s = split_sentences("Really? Yes! Animals such as cats.");
    assert_eq!(s.len(), 3, "{s:?}");
}

#[test]
fn sentence_splitter_mixed_abbreviation_density() {
    let text = "Companies, e.g. IBM, Inc. and others, grew 3.5 percent. Dr. Smith disagreed. End.";
    let s = split_sentences(text);
    assert_eq!(s.len(), 3, "{s:?}");
    assert!(s[0].contains("e.g. IBM"));
    assert!(s[1].starts_with("Dr. Smith"));
}

#[test]
fn tokenizer_handles_punctuation_runs() {
    let toks = tokenize("wait... what?!");
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(texts, ["wait", ".", ".", ".", "what", "?", "!"]);
}

#[test]
fn uncountable_nouns_do_not_pluralize() {
    use probase_text::{is_plural, pluralize, singularize};
    for w in ["broccoli", "sushi", "diabetes", "athletics"] {
        assert_eq!(pluralize(w), w, "{w}");
        assert_eq!(singularize(w), w, "{w}");
        assert!(!is_plural(w), "{w}");
    }
}

#[test]
fn ics_suffix_rule_is_general() {
    use probase_text::{is_plural, pluralize};
    // Not in any list, still treated as invariant by the -ics rule.
    assert_eq!(pluralize("bioinformatics"), "bioinformatics");
    assert!(!is_plural("bioinformatics"));
}
