//! Tokenizer.
//!
//! Splits raw sentence text into word, number, and punctuation tokens while
//! retaining byte spans into the original string. The tokenizer is
//! intentionally simple — Hearst-pattern sentences are ordinary prose — but
//! it must handle the few things extraction depends on:
//!
//! * commas and other punctuation become their own tokens (list splitting),
//! * hyphenated words stay together (`"Airbus A320-200"`),
//! * apostrophes stay inside words (`"O'Reilly"`),
//! * everything else splits on whitespace.

use serde::{Deserialize, Serialize};

/// Classification of a token produced by [`tokenize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Alphabetic word, possibly with internal hyphens/apostrophes/digits.
    Word,
    /// Purely numeric token (`"1881"`, `"3.5"`).
    Number,
    /// Single punctuation character (`","`, `"."`, `";"`, …).
    Punct,
}

/// A single token with its byte span in the source sentence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The token text, exactly as it appears in the source.
    pub text: String,
    /// Byte offset of the first byte of the token in the source string.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// Token classification.
    pub kind: TokenKind,
}

impl Token {
    /// True if the token's first character is an ASCII uppercase letter.
    /// Used by the tagger's proper-noun heuristic.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// True if every alphabetic character in the token is uppercase and the
    /// token has at least two characters (`"IBM"`, `"HTTP"`). Acronyms are
    /// always treated as proper nouns.
    pub fn is_acronym(&self) -> bool {
        self.text.chars().count() >= 2
            && self.text.chars().any(|c| c.is_alphabetic())
            && self
                .text
                .chars()
                .filter(|c| c.is_alphabetic())
                .all(|c| c.is_uppercase())
    }
}

/// Is `c` a character that may appear *inside* a word without splitting it?
fn is_word_internal(c: char) -> bool {
    c.is_alphanumeric() || c == '-' || c == '\'' || c == '_'
}

/// Tokenize a sentence into [`Token`]s.
///
/// The returned tokens cover all non-whitespace content of the input in
/// order; whitespace is discarded. Punctuation characters each form their
/// own token, except hyphens and apostrophes inside words.
///
/// ```
/// use probase_text::token::{tokenize, TokenKind};
/// let toks = tokenize("animals such as cats, dogs");
/// let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(texts, ["animals", "such", "as", "cats", ",", "dogs"]);
/// assert_eq!(toks[4].kind, TokenKind::Punct);
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut tokens = Vec::new();
    let mut i = 0;

    while i < chars.len() {
        let (start, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() {
            // Word or number. A hyphen/apostrophe/underscore is consumed
            // only when the *next* character is alphanumeric, so "cats'"
            // ends before the apostrophe while "A320-200" stays whole.
            let mut j = i + 1;
            while j < chars.len() {
                let ch = chars[j].1;
                if ch.is_alphanumeric() {
                    j += 1;
                } else if is_word_internal(ch)
                    && j + 1 < chars.len()
                    && chars[j + 1].1.is_alphanumeric()
                {
                    j += 2;
                } else {
                    break;
                }
            }
            let end = if j < chars.len() {
                chars[j].0
            } else {
                input.len()
            };
            let text = &input[start..end];
            let kind = if text
                .chars()
                .all(|ch| ch.is_ascii_digit() || ch == '-' || ch == '.')
            {
                TokenKind::Number
            } else {
                TokenKind::Word
            };
            tokens.push(Token {
                text: text.to_string(),
                start,
                end,
                kind,
            });
            i = j;
        } else {
            let end = start + c.len_utf8();
            tokens.push(Token {
                text: c.to_string(),
                start,
                end,
                kind: TokenKind::Punct,
            });
            i += 1;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<String> {
        tokenize(s).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_on_whitespace_and_punct() {
        assert_eq!(texts("a b, c."), ["a", "b", ",", "c", "."]);
    }

    #[test]
    fn keeps_hyphenated_words_together() {
        assert_eq!(texts("Airbus A320-200"), ["Airbus", "A320-200"]);
    }

    #[test]
    fn keeps_apostrophes_inside_words() {
        assert_eq!(texts("O'Reilly books"), ["O'Reilly", "books"]);
    }

    #[test]
    fn drops_trailing_apostrophe() {
        assert_eq!(texts("cats' tails"), ["cats", "'", "tails"]);
    }

    #[test]
    fn classifies_numbers() {
        let toks = tokenize("25 Oct 1881");
        assert_eq!(toks[0].kind, TokenKind::Number);
        assert_eq!(toks[1].kind, TokenKind::Word);
        assert_eq!(toks[2].kind, TokenKind::Number);
    }

    #[test]
    fn spans_roundtrip_into_source() {
        let src = "companies such as IBM, Nokia";
        for t in tokenize(src) {
            assert_eq!(&src[t.start..t.end], t.text);
        }
    }

    #[test]
    fn capitalization_helpers() {
        let toks = tokenize("IBM bought Lotus");
        assert!(toks[0].is_acronym());
        assert!(toks[0].is_capitalized());
        assert!(!toks[1].is_capitalized());
        assert!(toks[2].is_capitalized());
        assert!(!toks[2].is_acronym());
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(texts("café au lait"), ["café", "au", "lait"]);
    }
}
