//! English noun morphology: plural detection, pluralization, and
//! singularization.
//!
//! Probase's syntactic extraction (paper §2.3.1) requires every candidate
//! super-concept to be a *plural* noun phrase, and concept labels are stored
//! in singular canonical form. A small irregular table plus suffix rules
//! covers the vocabulary used by both the corpus simulator and realistic
//! English text.
//!
//! The three functions are mutually consistent on the vocabulary they
//! handle: `is_plural(&pluralize(w))` holds for any singular noun `w`, and
//! `singularize(&pluralize(w)) == w` for regular nouns and the irregular
//! table (property-tested in `tests/`).

/// Irregular singular → plural pairs. Both directions are consulted.
const IRREGULARS: &[(&str, &str)] = &[
    ("man", "men"),
    ("woman", "women"),
    ("child", "children"),
    ("person", "people"),
    ("foot", "feet"),
    ("tooth", "teeth"),
    ("goose", "geese"),
    ("mouse", "mice"),
    ("louse", "lice"),
    ("ox", "oxen"),
    ("criterion", "criteria"),
    ("phenomenon", "phenomena"),
    ("datum", "data"),
    ("medium", "media"),
    ("analysis", "analyses"),
    ("basis", "bases"),
    ("crisis", "crises"),
    ("thesis", "theses"),
    ("index", "indices"),
    ("matrix", "matrices"),
    ("vertex", "vertices"),
    ("appendix", "appendices"),
    ("cactus", "cacti"),
    ("focus", "foci"),
    ("fungus", "fungi"),
    ("nucleus", "nuclei"),
    ("stimulus", "stimuli"),
    ("syllabus", "syllabi"),
    ("alumnus", "alumni"),
    ("curriculum", "curricula"),
    ("bacterium", "bacteria"),
    ("leaf", "leaves"),
    ("loaf", "loaves"),
    ("knife", "knives"),
    ("life", "lives"),
    ("wife", "wives"),
    ("wolf", "wolves"),
    ("shelf", "shelves"),
    ("half", "halves"),
    ("calf", "calves"),
    ("thief", "thieves"),
    // Nouns in -ie whose plural would otherwise singularize to "-y".
    ("movie", "movies"),
    ("cookie", "cookies"),
    ("zombie", "zombies"),
    ("calorie", "calories"),
    ("genie", "genies"),
    ("pixie", "pixies"),
    ("prairie", "prairies"),
    ("sortie", "sorties"),
    ("budgie", "budgies"),
    ("selfie", "selfies"),
];

/// Words that are identical in singular and plural (treated as plural by
/// `is_plural` because they commonly head plural NPs in Hearst patterns:
/// "species such as ...").
const INVARIANT_PLURALS: &[&str] = &[
    "species",
    "series",
    "fish",
    "sheep",
    "deer",
    "aircraft",
    "means",
    "offspring",
];

/// Common singular words ending in `s` that the suffix heuristic would
/// otherwise misclassify as plural. Words in "-ics" (athletics, physics)
/// are additionally covered by a suffix rule.
const SINGULAR_S_WORDS: &[&str] = &[
    "bus", "gas", "lens", "iris", "virus", "campus", "status", "bonus", "census", "corpus",
    "genius", "chaos", "atlas", "canvas", "tennis", "news",
];

/// Uncountable (mass) nouns: no plural form at all. They appear among the
/// curated instance inventory ("dishes such as beef and dairy").
const UNCOUNTABLE: &[&str] = &[
    "broccoli",
    "spinach",
    "sushi",
    "beef",
    "dairy",
    "rice",
    "milk",
    "cheese",
    "bread",
    "butter",
    "tobacco",
    "alcohol",
    "caffeine",
    "insulin",
    "heroin",
    "morphine",
    "water",
    "gymnastics",
    "athletics",
    "muesli",
    "diabetes",
    "tuberculosis",
    "rabies",
    "measles",
];

fn irregular_plural_of(word: &str) -> Option<&'static str> {
    IRREGULARS.iter().find(|(s, _)| *s == word).map(|(_, p)| *p)
}

fn irregular_singular_of(word: &str) -> Option<&'static str> {
    IRREGULARS.iter().find(|(_, p)| *p == word).map(|(s, _)| *s)
}

/// Is this (lowercase) word plausibly a plural noun form?
///
/// ```
/// use probase_text::morph::is_plural;
/// assert!(is_plural("animals"));
/// assert!(is_plural("countries"));
/// assert!(is_plural("children"));
/// assert!(!is_plural("animal"));
/// assert!(!is_plural("bus"));
/// assert!(!is_plural("glass"));
/// ```
pub fn is_plural(word: &str) -> bool {
    let w = word.to_lowercase();
    if irregular_singular_of(&w).is_some() {
        return true;
    }
    if irregular_plural_of(&w).is_some() {
        return false; // it's a known singular
    }
    if INVARIANT_PLURALS.contains(&w.as_str()) {
        return true;
    }
    if SINGULAR_S_WORDS.contains(&w.as_str()) || UNCOUNTABLE.contains(&w.as_str()) {
        return false;
    }
    if w.len() < 3 {
        return false;
    }
    if w.ends_with("ss") || w.ends_with("us") || w.ends_with("is") || w.ends_with("ics") {
        return false;
    }
    w.ends_with('s')
}

/// Pluralize a (lowercase) singular noun using standard English rules.
///
/// ```
/// use probase_text::morph::pluralize;
/// assert_eq!(pluralize("country"), "countries");
/// assert_eq!(pluralize("company"), "companies");
/// assert_eq!(pluralize("box"), "boxes");
/// assert_eq!(pluralize("church"), "churches");
/// assert_eq!(pluralize("child"), "children");
/// assert_eq!(pluralize("cat"), "cats");
/// ```
pub fn pluralize(word: &str) -> String {
    if word.is_empty() {
        return String::new();
    }
    if let Some(p) = irregular_plural_of(word) {
        return p.to_string();
    }
    if INVARIANT_PLURALS.contains(&word) || UNCOUNTABLE.contains(&word) || word.ends_with("ics") {
        return word.to_string();
    }
    let bytes = word.as_bytes();
    let last = bytes[bytes.len() - 1];
    if last == b'y' && bytes.len() >= 2 && !is_vowel(bytes[bytes.len() - 2]) {
        return format!("{}ies", &word[..word.len() - 1]);
    }
    if word.ends_with('s')
        || word.ends_with('x')
        || word.ends_with('z')
        || word.ends_with("ch")
        || word.ends_with("sh")
    {
        return format!("{word}es");
    }
    if word.ends_with('o') && bytes.len() >= 2 && !is_vowel(bytes[bytes.len() - 2]) {
        // tomato → tomatoes; but piano/photo are exceptions we accept.
        return format!("{word}es");
    }
    format!("{word}s")
}

/// Singularize a (lowercase) noun. Inverse of [`pluralize`] on regular nouns
/// and the irregular table; words already singular are returned unchanged
/// whenever the heuristics can tell.
///
/// ```
/// use probase_text::morph::singularize;
/// assert_eq!(singularize("countries"), "country");
/// assert_eq!(singularize("boxes"), "box");
/// assert_eq!(singularize("children"), "child");
/// assert_eq!(singularize("animals"), "animal");
/// assert_eq!(singularize("animal"), "animal");
/// ```
pub fn singularize(word: &str) -> String {
    if let Some(s) = irregular_singular_of(word) {
        return s.to_string();
    }
    if irregular_plural_of(word).is_some() {
        return word.to_string(); // already singular (irregular)
    }
    if INVARIANT_PLURALS.contains(&word)
        || SINGULAR_S_WORDS.contains(&word)
        || UNCOUNTABLE.contains(&word)
    {
        return word.to_string();
    }
    if !is_plural(word) {
        return word.to_string();
    }
    if let Some(stem) = word.strip_suffix("ies") {
        if !stem.is_empty() {
            return format!("{stem}y");
        }
    }
    if word.ends_with("xes")
        || word.ends_with("zes")
        || word.ends_with("ches")
        || word.ends_with("shes")
        || word.ends_with("sses")
        || word.ends_with("oes")
    {
        return word[..word.len() - 2].to_string();
    }
    if let Some(stem) = word.strip_suffix('s') {
        return stem.to_string();
    }
    word.to_string()
}

fn is_vowel(b: u8) -> bool {
    matches!(b, b'a' | b'e' | b'i' | b'o' | b'u')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregulars_roundtrip() {
        for (s, p) in IRREGULARS {
            assert_eq!(pluralize(s), *p, "pluralize({s})");
            assert_eq!(singularize(p), *s, "singularize({p})");
            assert!(is_plural(p), "is_plural({p})");
            assert!(!is_plural(s), "!is_plural({s})");
        }
    }

    #[test]
    fn regular_roundtrip() {
        for w in [
            "cat", "country", "company", "box", "church", "bush", "city", "hero", "table",
        ] {
            let p = pluralize(w);
            assert!(is_plural(&p), "is_plural({p})");
            assert_eq!(singularize(&p), w, "singularize({p})");
        }
    }

    #[test]
    fn invariant_plurals_stay_put() {
        assert_eq!(pluralize("species"), "species");
        assert_eq!(singularize("species"), "species");
        assert!(is_plural("species"));
    }

    #[test]
    fn singular_s_words_not_plural() {
        for w in SINGULAR_S_WORDS {
            assert!(!is_plural(w), "{w} misdetected as plural");
            assert_eq!(singularize(w), *w);
        }
    }

    #[test]
    fn short_words_not_plural() {
        assert!(!is_plural("is"));
        assert!(!is_plural("as"));
        assert!(!is_plural("us"));
    }

    #[test]
    fn singularize_idempotent_on_singular() {
        for w in ["animal", "country", "child", "bus", "species"] {
            assert_eq!(singularize(&singularize(w)), singularize(w));
        }
    }

    #[test]
    fn case_insensitive_plural_detection() {
        assert!(is_plural("Animals"));
        assert!(is_plural("COUNTRIES"));
    }
}
