//! Noun phrases and modifier stripping.
//!
//! A [`NounPhrase`] is the unit Hearst extraction reasons about: candidate
//! super-concepts are plural noun phrases, and super-concept detection
//! (paper §2.3.2) may *strip the modifier* of an unseen candidate
//! ("domestic animals" → "animals") to consult the knowledge Γ about the
//! more general concept.

use serde::{Deserialize, Serialize};

/// A chunked noun phrase: one or more words, the last of which is the head.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NounPhrase {
    /// Words of the phrase in order, surface form.
    pub words: Vec<String>,
    /// Index of the first token of the phrase in the tagged-token sequence.
    pub start: usize,
    /// One past the index of the last token of the phrase.
    pub end: usize,
    /// Whether the head noun is plural.
    pub head_plural: bool,
    /// Whether any word is a proper noun.
    pub proper: bool,
}

impl NounPhrase {
    /// The head word (always present; chunker never emits empty phrases).
    pub fn head(&self) -> &str {
        self.words
            .last()
            .expect("noun phrase has at least one word")
    }

    /// Surface text with single spaces.
    pub fn text(&self) -> String {
        self.words.join(" ")
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the phrase has no words (never produced by the chunker,
    /// but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Strip the leading modifier: `"domestic animals"` → `"animals"`,
    /// `"large IT companies"` → `"IT companies"`. Returns `None` when the
    /// phrase is a bare head already.
    ///
    /// Used by super-concept detection: if a multiword candidate is unknown
    /// to Γ, the more general concept obtained by dropping one modifier is
    /// consulted instead (paper §2.3.2, "we strip the modifier of x and
    /// check the remaining (more general) concept in Γ again").
    pub fn strip_modifier(&self) -> Option<NounPhrase> {
        if self.words.len() < 2 {
            return None;
        }
        Some(NounPhrase {
            words: self.words[1..].to_vec(),
            start: self.start + 1,
            end: self.end,
            head_plural: self.head_plural,
            proper: self.proper,
        })
    }

    /// Iterate over successively more general phrases: the phrase itself,
    /// then with one modifier stripped, and so on down to the bare head.
    pub fn generalizations(&self) -> impl Iterator<Item = NounPhrase> + '_ {
        let mut current = Some(self.clone());
        std::iter::from_fn(move || {
            let out = current.take()?;
            current = out.strip_modifier();
            Some(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn np(words: &[&str]) -> NounPhrase {
        NounPhrase {
            words: words.iter().map(|w| w.to_string()).collect(),
            start: 0,
            end: words.len(),
            head_plural: true,
            proper: false,
        }
    }

    #[test]
    fn head_and_text() {
        let p = np(&["domestic", "animals"]);
        assert_eq!(p.head(), "animals");
        assert_eq!(p.text(), "domestic animals");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn strip_modifier_steps_toward_head() {
        let p = np(&["large", "IT", "companies"]);
        let s1 = p.strip_modifier().unwrap();
        assert_eq!(s1.text(), "IT companies");
        let s2 = s1.strip_modifier().unwrap();
        assert_eq!(s2.text(), "companies");
        assert!(s2.strip_modifier().is_none());
    }

    #[test]
    fn generalizations_enumerates_all() {
        let p = np(&["large", "IT", "companies"]);
        let all: Vec<String> = p.generalizations().map(|g| g.text()).collect();
        assert_eq!(all, ["large IT companies", "IT companies", "companies"]);
    }

    #[test]
    fn generalizations_of_bare_head_is_self_only() {
        let p = np(&["companies"]);
        assert_eq!(p.generalizations().count(), 1);
    }
}
