//! Noun-phrase chunking.
//!
//! Finds maximal noun phrases in a tagged token sequence. The grammar is
//! the classic base-NP pattern:
//!
//! ```text
//! NP := Det? (Adj | Noun | Num)* Noun
//! ```
//!
//! The chunker is greedy and non-overlapping, scanning left to right. A
//! determiner is consumed but not included in the phrase words (Probase
//! concept labels never carry articles). Conjunctions terminate phrases —
//! splitting or joining around "and"/"or" is the extractor's decision, not
//! the chunker's, because that is exactly the ambiguity Probase resolves
//! semantically (paper §2.3.3, "Proctor and Gamble").

use crate::lexicon::Lexicon;
use crate::phrase::NounPhrase;
use crate::tag::{tag_tokens, Tag, TaggedToken};
use crate::token::tokenize;

/// Configurable noun-phrase chunker.
///
/// The default configuration matches the paper's requirements; the knobs
/// exist for the ablation experiments (e.g. the proper-noun-only baseline).
#[derive(Debug, Clone)]
pub struct Chunker {
    /// Maximum number of words in a phrase (guards against run-on chunks).
    pub max_words: usize,
    /// If set, only phrases whose head is a proper noun are emitted
    /// (KnowItAll-style restriction, paper §2.1 third bullet).
    pub proper_only: bool,
}

impl Default for Chunker {
    fn default() -> Self {
        Self {
            max_words: 6,
            proper_only: false,
        }
    }
}

impl Chunker {
    /// Chunk a tagged token sequence into noun phrases.
    pub fn chunk(&self, tagged: &[TaggedToken]) -> Vec<NounPhrase> {
        let mut phrases = Vec::new();
        let mut i = 0;
        while i < tagged.len() {
            if !potential_np_start(tagged[i].tag) {
                i += 1;
                continue;
            }
            // Optional determiner.
            let mut j = i;
            if tagged[j].tag == Tag::Det {
                j += 1;
            }
            // Collect NP-internal tokens.
            let body_start = j;
            let mut last_noun: Option<usize> = None;
            while j < tagged.len()
                && j - body_start < self.max_words
                && tagged[j].tag.is_np_internal()
            {
                if tagged[j].tag.is_noun() {
                    last_noun = Some(j);
                }
                j += 1;
            }
            match last_noun {
                Some(head_idx) => {
                    let head_tag = tagged[head_idx].tag;
                    let words: Vec<String> = tagged[body_start..=head_idx]
                        .iter()
                        .map(|t| t.token.text.clone())
                        .collect();
                    let proper = tagged[body_start..=head_idx]
                        .iter()
                        .any(|t| t.tag.is_proper_noun());
                    if !self.proper_only || head_tag.is_proper_noun() {
                        phrases.push(NounPhrase {
                            words,
                            start: body_start,
                            end: head_idx + 1,
                            head_plural: head_tag.is_plural_noun(),
                            proper,
                        });
                    }
                    i = head_idx + 1;
                }
                None => {
                    // No noun found: skip past what we scanned.
                    i = j.max(i + 1);
                }
            }
        }
        phrases
    }
}

fn potential_np_start(tag: Tag) -> bool {
    matches!(tag, Tag::Det | Tag::Adj | Tag::Noun { .. })
}

/// Convenience: tokenize, tag (with `lexicon`), and chunk `sentence` using
/// the default chunker.
pub fn chunk_noun_phrases(sentence: &str, lexicon: &Lexicon) -> Vec<NounPhrase> {
    let tokens = tokenize(sentence);
    let tagged = tag_tokens(&tokens, lexicon);
    Chunker::default().chunk(&tagged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(sentence: &str) -> Vec<String> {
        chunk_noun_phrases(sentence, &Lexicon::default())
            .into_iter()
            .map(|p| p.text())
            .collect()
    }

    #[test]
    fn simple_nps() {
        assert_eq!(texts("animals such as cats"), ["animals", "cats"]);
    }

    #[test]
    fn modifier_nps_stay_together() {
        // "such" is consumed as an adjective but "as" (Prep) splits phrases.
        let t = texts("domestic animals other than dogs");
        assert!(t.contains(&"domestic animals".to_string()), "{t:?}");
        assert!(t.contains(&"dogs".to_string()));
    }

    #[test]
    fn determiner_excluded_from_phrase() {
        assert_eq!(texts("the largest companies"), ["largest companies"]);
    }

    #[test]
    fn conjunctions_split_phrases() {
        let t = texts("cats and dogs");
        assert_eq!(t, ["cats", "dogs"]);
    }

    #[test]
    fn head_plurality_flag() {
        let ps = chunk_noun_phrases("tropical countries such as Singapore", &Lexicon::default());
        assert!(ps[0].head_plural);
        assert!(!ps[1].head_plural);
        assert!(ps[1].proper);
    }

    #[test]
    fn proper_only_mode() {
        let toks = tokenize("companies such as IBM");
        let tagged = tag_tokens(&toks, &Lexicon::default());
        let chunker = Chunker {
            proper_only: true,
            ..Chunker::default()
        };
        let ps = chunker.chunk(&tagged);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].text(), "IBM");
    }

    #[test]
    fn max_words_caps_phrase_length() {
        let toks = tokenize("big big big big big big big cats");
        let tagged = tag_tokens(&toks, &Lexicon::default());
        let chunker = Chunker {
            max_words: 3,
            ..Chunker::default()
        };
        let ps = chunker.chunk(&tagged);
        // The window never reaches the head noun in the first chunk attempt,
        // but a later attempt starting further right does.
        assert!(ps.iter().any(|p| p.head() == "cats"));
    }

    #[test]
    fn no_phrases_in_verb_only_sentence() {
        assert!(texts("is was were being").is_empty());
    }

    #[test]
    fn phrase_spans_index_tagged_tokens() {
        let toks = tokenize("large companies such as IBM");
        let tagged = tag_tokens(&toks, &Lexicon::default());
        let ps = Chunker::default().chunk(&tagged);
        let first = &ps[0];
        assert_eq!(tagged[first.start].token.text, "large");
        assert_eq!(tagged[first.end - 1].token.text, "companies");
    }
}
