//! Heuristic part-of-speech tagging.
//!
//! A rule-based tagger sufficient for Hearst-pattern extraction. It
//! distinguishes the word classes the chunker and pattern matcher care
//! about: determiners, conjunctions, prepositions, verbs/auxiliaries (so
//! they terminate noun phrases), adjectives, and nouns (with plural and
//! proper-noun flags). An optional [`crate::Lexicon`] supplies overrides for
//! domain vocabulary the heuristics cannot classify.

use crate::lexicon::{LexEntry, Lexicon};
use crate::morph::is_plural;
use crate::token::{Token, TokenKind};
use serde::{Deserialize, Serialize};

/// Part-of-speech tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tag {
    /// Determiner / article: "the", "a", "these", …
    Det,
    /// Coordinating conjunction: "and", "or", "but".
    Conj,
    /// Preposition or subordinator: "of", "in", "than", …
    Prep,
    /// Pronoun: "we", "they", "it", …
    Pron,
    /// Verb or auxiliary: "is", "compete", "invaded", …
    Verb,
    /// Adverb-ish function word: "not", "very", "too", …
    Adv,
    /// Adjective (or unclassified modifier).
    Adj,
    /// Noun.
    Noun {
        /// Plural surface form ("animals", "children").
        plural: bool,
        /// Proper noun ("IBM", "China").
        proper: bool,
    },
    /// Cardinal number.
    Num,
    /// Punctuation.
    Punct,
}

impl Tag {
    /// Any noun, common or proper, singular or plural.
    pub fn is_noun(self) -> bool {
        matches!(self, Tag::Noun { .. })
    }

    /// A plural noun (the only legal head for a super-concept NP).
    pub fn is_plural_noun(self) -> bool {
        matches!(self, Tag::Noun { plural: true, .. })
    }

    /// A proper noun.
    pub fn is_proper_noun(self) -> bool {
        matches!(self, Tag::Noun { proper: true, .. })
    }

    /// May this tag appear inside a noun phrase (after an optional leading
    /// determiner)?
    pub fn is_np_internal(self) -> bool {
        matches!(self, Tag::Adj | Tag::Noun { .. } | Tag::Num)
    }
}

/// A token together with its assigned tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedToken {
    /// The underlying token.
    pub token: Token,
    /// Its assigned part-of-speech tag.
    pub tag: Tag,
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "some", "any", "all", "both", "each",
    "every", "no", "many", "most", "several", "few", "his", "her", "its", "their", "our", "my",
    "your",
];

const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor"];

const PREPOSITIONS: &[&str] = &[
    "of",
    "in",
    "on",
    "at",
    "by",
    "for",
    "with",
    "from",
    "to",
    "into",
    "onto",
    "over",
    "under",
    "about",
    "after",
    "before",
    "between",
    "during",
    "through",
    "without",
    "within",
    "than",
    "according",
    "as",
    "like",
    "among",
    "across",
    "against",
    "around",
    "near",
    "per",
    "via",
];

const PRONOUNS: &[&str] = &[
    "i", "we", "you", "he", "she", "it", "they", "them", "him", "us", "me", "who", "which", "what",
    "whom", "whose", "there", "here",
];

/// Common verbs and auxiliaries that would otherwise look like nouns. The
/// list needs to cover what appears in corpus-simulator prose plus ordinary
/// web-sentence glue.
const VERBS: &[&str] = &[
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "do",
    "does",
    "did",
    "have",
    "has",
    "had",
    "can",
    "could",
    "will",
    "would",
    "shall",
    "should",
    "may",
    "might",
    "must",
    "include",
    "includes",
    "included",
    "contain",
    "contains",
    "contained",
    "offer",
    "offers",
    "offered",
    "provide",
    "provides",
    "provided",
    "sell",
    "sells",
    "sold",
    "make",
    "makes",
    "made",
    "use",
    "uses",
    "used",
    "see",
    "saw",
    "seen",
    "find",
    "found",
    "visit",
    "visited",
    "feature",
    "features",
    "featured",
    "know",
    "known",
    "knows",
    "love",
    "loves",
    "loved",
    "prefer",
    "prefers",
    "buy",
    "buys",
    "bought",
    "study",
    "studied",
    "studies",
    "compete",
    "competes",
    "work",
    "works",
    "worked",
    "grow",
    "grows",
    "grew",
    "become",
    "becomes",
    "became",
    "recommend",
    "recommends",
    "recommended",
    "mention",
    "mentions",
    "mentioned",
    "track",
    "tracks",
    "tracked",
    "cover",
    "covers",
    "covered",
    "list",
    "lists",
    "listed",
    "discuss",
    "discussed",
    "realize",
    "realizes",
    "realized",
    "remain",
    "remains",
    "remained",
    "rose",
    "rise",
    "rises",
    "keep",
    "keeps",
    "kept",
    "ask",
    "asks",
    "asked",
    "change",
    "changes",
    "changed",
];

const ADVERBS: &[&str] = &[
    "not",
    "very",
    "too",
    "also",
    "just",
    "only",
    "often",
    "always",
    "never",
    "sometimes",
    "usually",
    "typically",
    "generally",
    "especially",
    "particularly",
    "notably",
    "mostly",
    "mainly",
    "even",
    "still",
    "already",
    "again",
    "together",
    "etc",
];

/// Adjective-like suffixes. Deliberately short: ambiguous suffixes like
/// `-al` (which also ends "animal", "hospital") are excluded; the lexicon
/// handles those.
const ADJ_SUFFIXES: &[&str] = &["ous", "ive", "able", "ible", "ful", "less", "ish", "ile"];

/// A small built-in adjective list covering modifiers that appear in the
/// paper's examples and in the corpus simulator's modifier inventory.
const ADJECTIVES: &[&str] = &[
    "large",
    "largest",
    "big",
    "biggest",
    "small",
    "smallest",
    "best",
    "worst",
    "good",
    "great",
    "new",
    "old",
    "young",
    "major",
    "minor",
    "common",
    "rare",
    "popular",
    "famous",
    "typical",
    "classic",
    "modern",
    "ancient",
    "domestic",
    "wild",
    "tropical",
    "industrialized",
    "developing",
    "developed",
    "emerging",
    "renewable",
    "beautiful",
    "important",
    "other",
    "such",
    "same",
    "different",
    "various",
    "certain",
    "local",
    "global",
    "national",
    "international",
    "public",
    "private",
    "top",
    "leading",
    "key",
    "main",
];

fn lookup(word: &str, list: &[&str]) -> bool {
    list.contains(&word)
}

/// Tag a token sequence.
///
/// `lexicon` may be empty ([`Lexicon::default`]); entries in it override the
/// heuristics. The tagger never looks at more than one token of context: the
/// only contextual rule is that sentence-initial capitalization alone does
/// not make a proper noun.
pub fn tag_tokens(tokens: &[Token], lexicon: &Lexicon) -> Vec<TaggedToken> {
    tokens
        .iter()
        .enumerate()
        .map(|(i, tok)| TaggedToken {
            token: tok.clone(),
            tag: tag_one(tok, i == 0, lexicon),
        })
        .collect()
}

fn tag_one(tok: &Token, sentence_initial: bool, lexicon: &Lexicon) -> Tag {
    match tok.kind {
        TokenKind::Punct => return Tag::Punct,
        TokenKind::Number => return Tag::Num,
        TokenKind::Word => {}
    }
    let lower = tok.text.to_lowercase();

    if let Some(entry) = lexicon.get(&lower) {
        return match entry {
            LexEntry::Noun => Tag::Noun {
                plural: is_plural(&lower),
                proper: false,
            },
            LexEntry::ProperNoun => Tag::Noun {
                plural: false,
                proper: true,
            },
            LexEntry::Adjective => Tag::Adj,
            LexEntry::Verb => Tag::Verb,
        };
    }

    if lookup(&lower, DETERMINERS) {
        return Tag::Det;
    }
    if lookup(&lower, CONJUNCTIONS) {
        return Tag::Conj;
    }
    if lookup(&lower, PREPOSITIONS) {
        return Tag::Prep;
    }
    if lookup(&lower, PRONOUNS) {
        return Tag::Pron;
    }
    if lookup(&lower, VERBS) {
        return Tag::Verb;
    }
    if lookup(&lower, ADVERBS) {
        return Tag::Adv;
    }
    if tok.is_acronym() || (tok.is_capitalized() && !sentence_initial) {
        return Tag::Noun {
            plural: false,
            proper: true,
        };
    }
    if lookup(&lower, ADJECTIVES) || ADJ_SUFFIXES.iter().any(|s| lower.ends_with(s)) {
        return Tag::Adj;
    }
    // Default: common noun; plurality from morphology.
    Tag::Noun {
        plural: is_plural(&lower),
        proper: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tags(s: &str) -> Vec<Tag> {
        tag_tokens(&tokenize(s), &Lexicon::default())
            .into_iter()
            .map(|t| t.tag)
            .collect()
    }

    #[test]
    fn tags_hearst_sentence() {
        let t = tags("animals such as cats and dogs");
        assert_eq!(
            t[0],
            Tag::Noun {
                plural: true,
                proper: false
            }
        ); // animals
        assert_eq!(t[1], Tag::Adj); // such
        assert_eq!(t[2], Tag::Prep); // as
        assert_eq!(
            t[3],
            Tag::Noun {
                plural: true,
                proper: false
            }
        ); // cats
        assert_eq!(t[4], Tag::Conj); // and
        assert_eq!(
            t[5],
            Tag::Noun {
                plural: true,
                proper: false
            }
        ); // dogs
    }

    #[test]
    fn proper_nouns_by_capitalization() {
        let t = tags("companies such as IBM and Nokia");
        assert!(t[3].is_proper_noun()); // IBM (acronym)
        assert!(t[5].is_proper_noun()); // Nokia (capitalized, non-initial)
    }

    #[test]
    fn sentence_initial_capital_is_not_proper() {
        let t = tags("Animals such as cats");
        assert_eq!(
            t[0],
            Tag::Noun {
                plural: true,
                proper: false
            }
        );
    }

    #[test]
    fn sentence_initial_acronym_is_proper() {
        let t = tags("IBM sells computers");
        assert!(t[0].is_proper_noun());
    }

    #[test]
    fn determiners_and_verbs() {
        let t = tags("the company is large");
        assert_eq!(t[0], Tag::Det);
        assert_eq!(t[2], Tag::Verb);
        assert_eq!(t[3], Tag::Adj);
    }

    #[test]
    fn lexicon_overrides_heuristics() {
        let mut lex = Lexicon::default();
        lex.insert("frobs", LexEntry::Adjective);
        let toks = tokenize("frobs such as things");
        let tagged = tag_tokens(&toks, &lex);
        assert_eq!(tagged[0].tag, Tag::Adj);
    }

    #[test]
    fn numbers_are_num() {
        assert_eq!(tags("25 cats")[0], Tag::Num);
    }

    #[test]
    fn adjective_suffixes() {
        let t = tags("famous renewable beautiful");
        assert!(t.iter().all(|t| *t == Tag::Adj));
    }
}
