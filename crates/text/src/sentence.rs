//! Sentence segmentation.
//!
//! Downstream users bring *documents*, not pre-split sentences; the paper's
//! pipeline starts from 1.68 B pages of raw text. This splitter covers the
//! cases Hearst extraction cares about:
//!
//! * `.` / `!` / `?` end a sentence,
//! * but not inside common abbreviations ("e.g.", "Dr.", "U.S."),
//! * and not when the period is part of a decimal number or an
//!   initialism ("3.5", "J. K. Rowling").

/// Abbreviations whose trailing period does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "etc", "vs", "dr", "mr", "mrs", "ms", "prof", "inc", "ltd", "co", "corp", "st",
    "no", "fig", "vol", "jr", "sr", "dept", "est", "approx",
];

/// Split raw text into sentences. Whitespace is normalized per sentence;
/// empty sentences are dropped.
///
/// ```
/// use probase_text::split_sentences;
/// let s = split_sentences("Fruits, e.g. apples, are sweet. Prices rose 3.5 percent.");
/// assert_eq!(s.len(), 2);
/// ```
pub fn split_sentences(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut sentences = Vec::new();
    let mut current = String::new();

    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        current.push(c);
        let is_terminator = matches!(c, '.' | '!' | '?');
        if is_terminator {
            let ends_here = match c {
                '!' | '?' => true,
                '.' => {
                    !is_decimal_point(&chars, i)
                        && !is_initial(&chars, i)
                        && !ends_with_abbreviation(&current)
                }
                _ => unreachable!(),
            };
            // A terminator only ends the sentence when followed by
            // whitespace-then-capital/digit or end of input.
            let followed_ok = next_nonspace(&chars, i + 1)
                .map(|ch| ch.is_uppercase() || ch.is_ascii_digit())
                .unwrap_or(true);
            if ends_here && followed_ok {
                push_sentence(&mut sentences, &current);
                current.clear();
            }
        }
        i += 1;
    }
    push_sentence(&mut sentences, &current);
    sentences
}

fn push_sentence(out: &mut Vec<String>, raw: &str) {
    let normalized = raw.split_whitespace().collect::<Vec<_>>().join(" ");
    if !normalized.is_empty() {
        out.push(normalized);
    }
}

fn next_nonspace(chars: &[char], from: usize) -> Option<char> {
    chars[from..].iter().copied().find(|c| !c.is_whitespace())
}

/// `3.5` — digit on both sides of the period.
fn is_decimal_point(chars: &[char], dot: usize) -> bool {
    dot > 0
        && chars[dot - 1].is_ascii_digit()
        && chars
            .get(dot + 1)
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
}

/// `J.` in "J. K. Rowling" — single capital letter before the period.
fn is_initial(chars: &[char], dot: usize) -> bool {
    if dot == 0 || !chars[dot - 1].is_uppercase() {
        return false;
    }
    dot == 1 || !chars[dot - 2].is_alphanumeric()
}

fn ends_with_abbreviation(current: &str) -> bool {
    let trimmed = current.trim_end_matches('.');
    let last_word = trimmed
        .rsplit(|c: char| c.is_whitespace() || c == '(')
        .next()
        .unwrap_or("");
    let lower = last_word.to_lowercase();
    ABBREVIATIONS.contains(&lower.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_plain_sentences() {
        let s = split_sentences("Animals such as cats. Companies such as IBM!");
        assert_eq!(s, ["Animals such as cats.", "Companies such as IBM!"]);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split_sentences("Fruits, e.g. apples, are sweet. Next sentence.");
        assert_eq!(s.len(), 2, "{s:?}");
        assert!(s[0].contains("e.g. apples"));
    }

    #[test]
    fn decimals_do_not_split() {
        let s = split_sentences("The price rose 3.5 percent. It fell later.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("3.5 percent"));
    }

    #[test]
    fn initials_do_not_split() {
        let s = split_sentences("Books by J. K. Rowling sold well. Others did not.");
        assert_eq!(s.len(), 2, "{s:?}");
        assert!(s[0].contains("J. K. Rowling"));
    }

    #[test]
    fn lowercase_continuation_does_not_split() {
        // A period followed by a lowercase word is treated as internal
        // (common with abbreviation-like tokens we do not know).
        let s = split_sentences("It cost approx. twenty dollars. Done.");
        assert_eq!(s.len(), 2, "{s:?}");
    }

    #[test]
    fn whitespace_normalized() {
        let s = split_sentences("  spaced   out\n\ttext.  ");
        assert_eq!(s, ["spaced out text."]);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   \n ").is_empty());
    }

    #[test]
    fn trailing_text_without_terminator_kept() {
        let s = split_sentences("First one. Second half without end");
        assert_eq!(s.len(), 2, "{s:?}");
        // Lowercase after a period reads as a continuation, not a split.
        let s = split_sentences("First one. second half without end");
        assert_eq!(s.len(), 1, "{s:?}");
    }
}
