//! # probase-text
//!
//! Lightweight, deterministic natural-language substrate for the Probase
//! pipeline.
//!
//! The Probase paper (SIGMOD 2012) extracts *isA* pairs from sentences that
//! match Hearst patterns. Doing so requires a handful of shallow NLP
//! capabilities: tokenization, plural detection, singularization, a
//! heuristic part-of-speech tagger, and noun-phrase chunking. The original
//! system used Microsoft-internal NLP components; this crate provides a
//! self-contained, rule-based equivalent that exercises the identical
//! interfaces (see DESIGN.md, substitution table).
//!
//! Everything here is deterministic: the same input string always produces
//! the same tokens, tags, and chunks, which keeps the whole reproduction
//! reproducible under a fixed RNG seed.
//!
//! ## Layout
//!
//! * [`token`] — tokenizer producing [`token::Token`]s with byte spans.
//! * [`morph`] — plural detection, pluralization and singularization.
//! * [`tag`] — heuristic part-of-speech tagging over tokens.
//! * [`lexicon`] — optional word → tag overrides (stand-in for a trained
//!   tagger's dictionary).
//! * [`sentence`] — sentence segmentation for raw documents.
//! * [`chunk`] — noun-phrase chunking on top of tagged tokens.
//! * [`phrase`] — the [`phrase::NounPhrase`] type plus modifier stripping,
//!   used by super-concept detection (paper §2.3.2).

#![warn(missing_docs)]

pub mod chunk;
pub mod lexicon;
pub mod morph;
pub mod phrase;
pub mod sentence;
pub mod tag;
pub mod token;

pub use chunk::{chunk_noun_phrases, Chunker};
pub use lexicon::{LexEntry, Lexicon};
pub use morph::{is_plural, pluralize, singularize};
pub use phrase::NounPhrase;
pub use sentence::split_sentences;
pub use tag::{tag_tokens, Tag, TaggedToken};
pub use token::{tokenize, Token, TokenKind};

/// Normalize a concept label: lowercase every word and singularize the head
/// (final) word. `"Industrialized Countries"` becomes
/// `"industrialized country"`.
///
/// Probase stores concepts in this canonical form so that `"animals"` in one
/// sentence and `"Animals"` in another land on the same node.
pub fn normalize_concept(label: &str) -> String {
    let words: Vec<&str> = label.split_whitespace().collect();
    let mut out = String::with_capacity(label.len());
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let lower = w.to_lowercase();
        if i + 1 == words.len() {
            out.push_str(&singularize(&lower));
        } else {
            out.push_str(&lower);
        }
    }
    out
}

/// Normalize an instance surface form: trim surrounding whitespace and
/// collapse internal runs of whitespace. Case is preserved because instances
/// are frequently proper names (`"Proctor and Gamble"`).
pub fn normalize_instance(surface: &str) -> String {
    let mut out = String::with_capacity(surface.len());
    for (i, w) in surface.split_whitespace().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_concept_lowercases_and_singularizes_head() {
        assert_eq!(
            normalize_concept("Industrialized Countries"),
            "industrialized country"
        );
        assert_eq!(normalize_concept("animals"), "animal");
        assert_eq!(normalize_concept("BRIC countries"), "bric country");
    }

    #[test]
    fn normalize_concept_only_touches_head_word() {
        // "sports cars": the modifier keeps its surface plural form.
        assert_eq!(normalize_concept("sports cars"), "sports car");
    }

    #[test]
    fn normalize_instance_collapses_whitespace() {
        assert_eq!(
            normalize_instance("  Proctor   and  Gamble "),
            "Proctor and Gamble"
        );
        assert_eq!(normalize_instance("IBM"), "IBM");
    }

    #[test]
    fn normalize_concept_empty_is_empty() {
        assert_eq!(normalize_concept(""), "");
        assert_eq!(normalize_instance(""), "");
    }
}
