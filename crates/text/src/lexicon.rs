//! Word → tag override table.
//!
//! The heuristic tagger in [`crate::tag`] covers ordinary English, but any
//! real deployment carries a dictionary for domain vocabulary. `Lexicon` is
//! that dictionary: a map from lowercase word to a coarse lexical class.
//! The corpus simulator emits a lexicon alongside its corpus so the tagger
//! can classify coined modifier words the same way a trained tagger would.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Coarse lexical class for a lexicon entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LexEntry {
    /// Common noun; plurality still decided by morphology.
    Noun,
    /// Proper noun regardless of capitalization.
    ProperNoun,
    /// Adjective.
    Adjective,
    /// Verb.
    Verb,
}

/// A dictionary of word-class overrides consulted before the tagger's
/// heuristics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lexicon {
    entries: HashMap<String, LexEntry>,
}

impl Lexicon {
    /// Empty lexicon (heuristics only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `word` (stored lowercase) with class `entry`. Later inserts
    /// overwrite earlier ones.
    pub fn insert(&mut self, word: &str, entry: LexEntry) {
        self.entries.insert(word.to_lowercase(), entry);
    }

    /// Look up a lowercase word.
    pub fn get(&self, word: &str) -> Option<LexEntry> {
        self.entries.get(word).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the lexicon has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another lexicon into this one; `other` wins on conflicts.
    pub fn extend(&mut self, other: &Lexicon) {
        for (w, e) in &other.entries {
            self.entries.insert(w.clone(), *e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_case_insensitive() {
        let mut lex = Lexicon::new();
        lex.insert("Tropical", LexEntry::Adjective);
        assert_eq!(lex.get("tropical"), Some(LexEntry::Adjective));
        assert_eq!(lex.get("unknown"), None);
    }

    #[test]
    fn extend_overwrites() {
        let mut a = Lexicon::new();
        a.insert("x", LexEntry::Noun);
        let mut b = Lexicon::new();
        b.insert("x", LexEntry::Verb);
        a.extend(&b);
        assert_eq!(a.get("x"), Some(LexEntry::Verb));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn empty_lexicon() {
        let lex = Lexicon::new();
        assert!(lex.is_empty());
        assert_eq!(lex.len(), 0);
    }
}
