//! # probase-testkit
//!
//! Deterministic fault injection for the serving path. CN-Probase's
//! deployment experience (Chen et al., 2019) is blunt about it: a
//! taxonomy service lives or dies on serving robustness, not extraction
//! quality. This crate is how the workspace *proves* robustness instead
//! of asserting it — every later scaling PR (sharding, async) regression
//! tests against the same replayable fault schedules.
//!
//! Three pieces, all dependency-free:
//!
//! * **PRNG** ([`prng::XorShift`]) — a seedable xorshift64* generator
//!   (no `rand`, per the workspace dependency policy) whose streams are
//!   stable across platforms and releases, so a failing seed printed by
//!   CI reproduces the exact same byte-for-byte fault schedule locally.
//! * **Fault plans** ([`plan::FaultPlan`]) — a seed-driven mapping from
//!   connection index to [`plan::Fault`]: drop the socket mid-request,
//!   truncate a response, inject garbage bytes, slow-loris the reads, or
//!   blackhole the writes. Plans can also be scripted explicitly when a
//!   scenario needs one precise failure.
//! * **Chaos proxy** ([`proxy::FaultProxy`]) — a TCP proxy that sits
//!   between a client and a real server and applies the planned fault to
//!   each connection it relays, so production code is exercised over
//!   real sockets, not mocks.
//!
//! The serve crate's `tests/chaos.rs` is the primary consumer; see
//! `DESIGN.md` §11 for the fault taxonomy and the seed/replay workflow.
//! For sharded deployments, [`fleet::ProxyFleet`] runs one proxy per
//! shard off a single master seed so router chaos replays the same way.

#![warn(missing_docs)]

pub mod fleet;
pub mod plan;
pub mod prng;
pub mod proxy;

pub use fleet::ProxyFleet;
pub use plan::{Fault, FaultPlan};
pub use prng::XorShift;
pub use proxy::FaultProxy;
