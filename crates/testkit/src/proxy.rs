//! The chaos TCP proxy.
//!
//! [`FaultProxy`] binds an ephemeral local port, relays every accepted
//! connection to a fixed upstream address, and applies the
//! [`Fault`](crate::plan::Fault) its [`FaultPlan`](crate::plan::FaultPlan)
//! assigns to that connection's accept index. Production code under test
//! talks to the proxy exactly as it would to the real server — real
//! sockets, real partial writes, real resets — which is the point: the
//! faults exercised are the ones the kernel can actually deliver.
//!
//! Threading mirrors the server's shape (plain std::net + threads): an
//! accept loop, and per connection one relay thread per direction. All
//! threads poll a shutdown flag through short read timeouts, so
//! [`FaultProxy::shutdown`] (or drop) joins everything promptly even
//! with live connections mid-fault.

use crate::plan::{Fault, FaultPlan};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often relay reads wake up to check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// A running fault-injecting proxy. See the module docs.
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    accept_handle: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Bind `127.0.0.1:0` and start relaying to `upstream`, faulting
    /// each connection per `plan`.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let accept_handle = {
            let shutdown = shutdown.clone();
            let accepted = accepted.clone();
            std::thread::Builder::new()
                .name("testkit-proxy-accept".to_string())
                .spawn(move || accept_loop(listener, upstream, plan, shutdown, accepted))?
        };
        Ok(FaultProxy {
            addr,
            shutdown,
            accepted,
            accept_handle: Some(accept_handle),
        })
    }

    /// The proxy's listening address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (== the next connection's plan index).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stop accepting, sever all relayed connections, join all threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept(); the dummy connection is never relayed.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
) {
    let mut relays: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((client, _peer)) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn = accepted.fetch_add(1, Ordering::SeqCst);
                let fault = plan.fault_for(conn);
                let garbage: Vec<Vec<u8>> = match &fault {
                    Fault::GarbageResponse { lines } => (0..*lines as u64)
                        .map(|l| plan.garbage_line(conn, l))
                        .collect(),
                    _ => Vec::new(),
                };
                let shutdown = shutdown.clone();
                relays.retain(|h| !h.is_finished());
                let spawned = std::thread::Builder::new()
                    .name(format!("testkit-proxy-conn-{conn}"))
                    .spawn(move || relay(client, upstream, fault, garbage, shutdown));
                if let Ok(h) = spawned {
                    relays.push(h);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    for h in relays {
        let _ = h.join();
    }
}

/// Relay one client connection to the upstream, applying `fault`.
fn relay(
    client: TcpStream,
    upstream: SocketAddr,
    fault: Fault,
    garbage: Vec<Vec<u8>>,
    shutdown: Arc<AtomicBool>,
) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);

    // The request (client → server) pump, possibly faulted.
    let c2s = {
        let (Ok(client_r), Ok(server_w)) = (client.try_clone(), server.try_clone()) else {
            return;
        };
        let fault = fault.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || match fault {
            Fault::DropMidRequest { after_bytes } => {
                pump_limited(client_r, server_w, after_bytes, &shutdown);
            }
            Fault::BlackholeRequest => {
                pump_discard(client_r, &shutdown);
            }
            _ => {
                pump(client_r, server_w, usize::MAX, 0, &shutdown);
            }
        })
    };

    // The response (server → client) pump, possibly faulted.
    let s2c = {
        let (Ok(server_r), Ok(mut client_w)) = (server.try_clone(), client.try_clone()) else {
            return;
        };
        std::thread::spawn(move || match fault {
            Fault::TruncateResponse { after_bytes } => {
                pump_limited(server_r, client_w, after_bytes, &shutdown);
            }
            Fault::GarbageResponse { .. } => {
                for line in &garbage {
                    if client_w.write_all(line).is_err() {
                        break;
                    }
                }
                let _ = client_w.flush();
                pump(server_r, client_w, usize::MAX, 0, &shutdown);
            }
            Fault::SlowLoris { chunk, delay_ms } => {
                pump(server_r, client_w, chunk.max(1), delay_ms, &shutdown);
            }
            _ => {
                pump(server_r, client_w, usize::MAX, 0, &shutdown);
            }
        })
    };

    let _ = c2s.join();
    let _ = s2c.join();
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
}

/// Copy bytes `from` → `to` until EOF, error, or shutdown; forward at
/// most `chunk` bytes per write, sleeping `delay_ms` between writes
/// (chunk = `usize::MAX`, delay 0 ⇒ plain fast relay). On EOF, propagate
/// the half-close so line protocols see it promptly.
fn pump(mut from: TcpStream, mut to: TcpStream, chunk: usize, delay_ms: u64, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let mut sent = 0;
                while sent < n {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let end = sent.saturating_add(chunk).min(n);
                    if to.write_all(&buf[sent..end]).is_err() || to.flush().is_err() {
                        let _ = from.shutdown(Shutdown::Read);
                        return;
                    }
                    sent = end;
                    if delay_ms > 0 && sent < n {
                        std::thread::sleep(Duration::from_millis(delay_ms));
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Copy at most `limit` bytes `from` → `to`, then kill both sockets
/// entirely (not a polite half-close — the point is an abrupt failure).
fn pump_limited(mut from: TcpStream, mut to: TcpStream, limit: usize, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut remaining = limit;
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let want = remaining.min(buf.len());
        match from.read(&mut buf[..want]) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                    break;
                }
                remaining -= n;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Read and discard until EOF or shutdown (the blackhole).
fn pump_discard(mut from: TcpStream, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            _ => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial upstream echo server: answers each line with
    /// `echo:<line>`.
    fn echo_server() -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let stop3 = stop2.clone();
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().expect("clone");
                    let _ = stream.set_read_timeout(Some(POLL));
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) => break,
                            Ok(_) => {
                                let reply = format!("echo:{line}");
                                if writer.write_all(reply.as_bytes()).is_err() {
                                    break;
                                }
                            }
                            Err(e)
                                if e.kind() == ErrorKind::WouldBlock
                                    || e.kind() == ErrorKind::TimedOut =>
                            {
                                if stop3.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        (addr, stop, handle)
    }

    fn stop_echo(addr: SocketAddr, stop: &Arc<AtomicBool>, handle: JoinHandle<()>) {
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        let _ = handle.join();
    }

    #[test]
    fn clean_connections_pass_through() {
        let (upstream, stop, handle) = echo_server();
        let proxy = FaultProxy::start(upstream, FaultPlan::scripted(vec![])).expect("proxy");
        let mut conn = TcpStream::connect(proxy.local_addr()).expect("connect");
        conn.write_all(b"hello\n").expect("write");
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "echo:hello\n");
        assert_eq!(proxy.accepted(), 1);
        proxy.shutdown();
        stop_echo(upstream, &stop, handle);
    }

    #[test]
    fn truncate_fault_cuts_the_response() {
        let (upstream, stop, handle) = echo_server();
        let plan = FaultPlan::scripted(vec![Fault::TruncateResponse { after_bytes: 3 }]);
        let proxy = FaultProxy::start(upstream, plan).expect("proxy");
        let mut conn = TcpStream::connect(proxy.local_addr()).expect("connect");
        conn.write_all(b"hello\n").expect("write");
        let mut got = Vec::new();
        let n = conn.read_to_end(&mut got).unwrap_or(0);
        assert!(n <= 3, "truncated to at most 3 bytes, got {got:?}");
        proxy.shutdown();
        stop_echo(upstream, &stop, handle);
    }

    #[test]
    fn garbage_fault_prepends_junk_then_relays() {
        let (upstream, stop, handle) = echo_server();
        let plan = FaultPlan::scripted(vec![Fault::GarbageResponse { lines: 2 }]);
        let proxy = FaultProxy::start(upstream, plan).expect("proxy");
        let conn = TcpStream::connect(proxy.local_addr()).expect("connect");
        let mut writer = conn.try_clone().unwrap();
        writer.write_all(b"hi\n").expect("write");
        let mut reader = BufReader::new(conn);
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            lines.push(line);
        }
        assert!(lines[0].starts_with("!!chaos-"), "{lines:?}");
        assert!(lines[1].starts_with("!!chaos-"), "{lines:?}");
        assert_eq!(lines[2], "echo:hi\n");
        proxy.shutdown();
        stop_echo(upstream, &stop, handle);
    }
}
