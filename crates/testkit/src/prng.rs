//! Seedable xorshift64* PRNG.
//!
//! The workspace carries no `rand` in the test harness on purpose: a
//! fault schedule must be a pure function of its seed across platforms,
//! rustc versions, and crate upgrades, so a failing seed printed by CI
//! replays the identical byte stream locally years later. xorshift64*
//! (Vigna 2016) is 4 lines of arithmetic with well-understood quality —
//! more than enough to diversify fault schedules — and trivially stable.
//!
//! Seeding and stream-splitting go through SplitMix64, the standard
//! recipe for turning arbitrary (possibly zero, possibly correlated)
//! user seeds into well-mixed nonzero xorshift states.

/// A deterministic xorshift64* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift {
    state: u64,
}

/// One round of SplitMix64: mixes `x` into a decorrelated 64-bit value.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl XorShift {
    /// A generator seeded from `seed`. Any seed is fine (including 0):
    /// the state is mixed through SplitMix64 and forced nonzero.
    pub fn new(seed: u64) -> XorShift {
        XorShift {
            state: splitmix64(seed).max(1),
        }
    }

    /// An independent substream for `stream` — used to give every
    /// connection index its own generator so fault parameters for
    /// connection `n` do not depend on how many values connection `n-1`
    /// consumed.
    pub fn fork(&self, stream: u64) -> XorShift {
        XorShift {
            state: splitmix64(self.state ^ splitmix64(stream)).max(1),
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)` (`lo` when the range is empty).
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw value.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fill `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "streams from different seeds should diverge");
    }

    #[test]
    fn zero_seed_works() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let root = XorShift::new(7);
        let mut a = root.fork(3);
        let mut b = root.fork(3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(root.fork(3).next_u64(), root.fork(4).next_u64());
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut r = XorShift::new(99);
        for _ in 0..1000 {
            let v = r.next_range(10, 20);
            assert!((10..20).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.next_range(5, 5), 5);
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = XorShift::new(5);
        let mut b = XorShift::new(5);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert_ne!(ba, [0u8; 13]);
    }
}
