//! A chaos proxy per shard: one [`FaultProxy`] in front of each upstream
//! of a sharded deployment, so router chaos tests can degrade or kill
//! individual shards while the rest of the fleet keeps serving.
//!
//! The fleet derives each shard's [`FaultPlan`] from one master seed
//! (`splitmix`-style stream split), so a single `PROBASE_CHAOS_SEED`
//! value replays the fault schedule of the *whole* deployment.

use std::net::SocketAddr;

use crate::plan::FaultPlan;
use crate::proxy::FaultProxy;

/// One chaos proxy per shard of a sharded deployment.
pub struct ProxyFleet {
    proxies: Vec<Option<FaultProxy>>,
    addrs: Vec<SocketAddr>,
}

impl ProxyFleet {
    /// Start one seeded [`FaultProxy`] in front of each upstream. Shard
    /// `i` gets a plan seeded from `seed` and `i`, so schedules differ
    /// per shard but the whole fleet replays from one seed.
    pub fn start(upstreams: &[SocketAddr], seed: u64) -> std::io::Result<ProxyFleet> {
        let mut proxies = Vec::with_capacity(upstreams.len());
        let mut addrs = Vec::with_capacity(upstreams.len());
        for (i, &up) in upstreams.iter().enumerate() {
            let plan = FaultPlan::seeded(shard_seed(seed, i));
            let proxy = FaultProxy::start(up, plan)?;
            addrs.push(proxy.local_addr());
            proxies.push(Some(proxy));
        }
        Ok(ProxyFleet { proxies, addrs })
    }

    /// Start a fleet with an explicit plan per upstream (scenario
    /// scripting). Panics if the lengths differ.
    pub fn start_scripted(
        upstreams: &[SocketAddr],
        plans: Vec<FaultPlan>,
    ) -> std::io::Result<ProxyFleet> {
        assert_eq!(
            upstreams.len(),
            plans.len(),
            "one FaultPlan per upstream required"
        );
        let mut proxies = Vec::with_capacity(upstreams.len());
        let mut addrs = Vec::with_capacity(upstreams.len());
        for (&up, plan) in upstreams.iter().zip(plans) {
            let proxy = FaultProxy::start(up, plan)?;
            addrs.push(proxy.local_addr());
            proxies.push(Some(proxy));
        }
        Ok(ProxyFleet { proxies, addrs })
    }

    /// Number of shards fronted by this fleet.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the fleet fronts no shards.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The proxy-side addresses, in shard order — hand these to the
    /// router as its shard address list.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The proxy address fronting shard `i`.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// Kill shard `i`'s proxy: every connection to it is torn down and
    /// new ones are refused, exactly what a crashed shard looks like to
    /// the router. Idempotent.
    pub fn kill(&mut self, i: usize) {
        if let Some(proxy) = self.proxies[i].take() {
            proxy.shutdown();
        }
    }

    /// Whether shard `i`'s proxy is still alive.
    pub fn alive(&self, i: usize) -> bool {
        self.proxies[i].is_some()
    }

    /// Shut the whole fleet down.
    pub fn shutdown(mut self) {
        for i in 0..self.proxies.len() {
            self.kill(i);
        }
    }
}

/// Derive shard `i`'s plan seed from the master seed. SplitMix64-style
/// mixing so adjacent shards get unrelated streams; `+ 1` keeps shard 0
/// off the master seed itself.
fn shard_seed(seed: u64, i: usize) -> u64 {
    let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A trivial echo upstream for proxy tests.
    fn echo_upstream() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    while reader.read_line(&mut line).unwrap_or(0) > 0 {
                        let mut w = &stream;
                        if w.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn shard_seeds_differ_and_replay() {
        let a: Vec<u64> = (0..4).map(|i| shard_seed(7, i)).collect();
        let b: Vec<u64> = (0..4).map(|i| shard_seed(7, i)).collect();
        assert_eq!(a, b, "same master seed replays the same plan seeds");
        for i in 0..4 {
            for j in 0..i {
                assert_ne!(a[i], a[j], "shards {i} and {j} share a stream");
            }
        }
    }

    #[test]
    fn kill_takes_down_one_shard_only() {
        use crate::plan::{Fault, FaultPlan};
        let ups: Vec<SocketAddr> = (0..3).map(|_| echo_upstream()).collect();
        let plans = vec![FaultPlan::scripted(vec![Fault::None]); 3];
        let mut fleet = ProxyFleet::start_scripted(&ups, plans).unwrap();
        assert_eq!(fleet.len(), 3);

        fleet.kill(1);
        assert!(!fleet.alive(1));
        assert!(fleet.alive(0) && fleet.alive(2));

        // Survivors still relay; the killed shard refuses.
        for i in [0usize, 2] {
            let stream = std::net::TcpStream::connect(fleet.addr(i)).unwrap();
            let mut w = &stream;
            writeln!(w, "hello").unwrap();
            let mut reader = BufReader::new(&stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "hello", "shard {i} should still echo");
        }
        let dead = std::net::TcpStream::connect(fleet.addr(1));
        assert!(
            dead.is_err() || {
                // Accept-then-reset also counts as dead: a write or read
                // must fail quickly.
                let s = dead.unwrap();
                let mut w = &s;
                writeln!(w, "x").is_err() || {
                    let mut r = BufReader::new(&s);
                    let mut l = String::new();
                    r.read_line(&mut l).map(|n| n == 0).unwrap_or(true)
                }
            },
            "killed shard must not serve"
        );
        fleet.shutdown();
    }
}
