//! A chaos proxy per shard: one [`FaultProxy`] in front of each upstream
//! of a sharded deployment, so router chaos tests can degrade or kill
//! individual shards while the rest of the fleet keeps serving.
//!
//! The fleet derives each shard's [`FaultPlan`] from one master seed
//! (`splitmix`-style stream split), so a single `PROBASE_CHAOS_SEED`
//! value replays the fault schedule of the *whole* deployment.

use std::net::SocketAddr;

use crate::plan::FaultPlan;
use crate::proxy::FaultProxy;

/// One chaos proxy per shard of a sharded deployment — and, for
/// replicated fleets, one per replica group member.
pub struct ProxyFleet {
    proxies: Vec<Option<FaultProxy>>,
    addrs: Vec<SocketAddr>,
    /// `replicas[i][j-1]` fronts replica `j` of shard `i` (the primary
    /// is member 0 and lives in `proxies`). Empty for unreplicated
    /// fleets, so the historical constructors are unchanged.
    replicas: Vec<Vec<Option<FaultProxy>>>,
    replica_addrs: Vec<Vec<SocketAddr>>,
}

impl ProxyFleet {
    /// Start one seeded [`FaultProxy`] in front of each upstream. Shard
    /// `i` gets a plan seeded from `seed` and `i`, so schedules differ
    /// per shard but the whole fleet replays from one seed.
    pub fn start(upstreams: &[SocketAddr], seed: u64) -> std::io::Result<ProxyFleet> {
        let mut proxies = Vec::with_capacity(upstreams.len());
        let mut addrs = Vec::with_capacity(upstreams.len());
        for (i, &up) in upstreams.iter().enumerate() {
            let plan = FaultPlan::seeded(shard_seed(seed, i));
            let proxy = FaultProxy::start(up, plan)?;
            addrs.push(proxy.local_addr());
            proxies.push(Some(proxy));
        }
        Ok(ProxyFleet {
            proxies,
            addrs,
            replicas: Vec::new(),
            replica_addrs: Vec::new(),
        })
    }

    /// Start a proxy in front of every member of every replica group
    /// (`upstream_groups[i][0]` = shard `i`'s primary, the rest its
    /// replicas). Member `(i, j)` gets a plan seeded from `seed`, `i`
    /// and `j`, so one master seed still replays the whole fleet's
    /// fault schedule. Hand [`ProxyFleet::addrs`] to the router as the
    /// primaries and [`ProxyFleet::replica_addrs`] as the groups.
    pub fn start_groups(
        upstream_groups: &[Vec<SocketAddr>],
        seed: u64,
    ) -> std::io::Result<ProxyFleet> {
        let mut proxies = Vec::with_capacity(upstream_groups.len());
        let mut addrs = Vec::with_capacity(upstream_groups.len());
        let mut replicas = Vec::with_capacity(upstream_groups.len());
        let mut replica_addrs = Vec::with_capacity(upstream_groups.len());
        for (i, group) in upstream_groups.iter().enumerate() {
            assert!(!group.is_empty(), "shard {i} needs at least a primary");
            let group_seed = shard_seed(seed, i);
            let primary =
                FaultProxy::start(group[0], FaultPlan::seeded(shard_seed(group_seed, 0)))?;
            addrs.push(primary.local_addr());
            proxies.push(Some(primary));
            let mut member_proxies = Vec::with_capacity(group.len() - 1);
            let mut member_addrs = Vec::with_capacity(group.len() - 1);
            for (j, &up) in group.iter().enumerate().skip(1) {
                let proxy = FaultProxy::start(up, FaultPlan::seeded(shard_seed(group_seed, j)))?;
                member_addrs.push(proxy.local_addr());
                member_proxies.push(Some(proxy));
            }
            replica_addrs.push(member_addrs);
            replicas.push(member_proxies);
        }
        Ok(ProxyFleet {
            proxies,
            addrs,
            replicas,
            replica_addrs,
        })
    }

    /// Start a fleet with an explicit plan per upstream (scenario
    /// scripting). Panics if the lengths differ.
    pub fn start_scripted(
        upstreams: &[SocketAddr],
        plans: Vec<FaultPlan>,
    ) -> std::io::Result<ProxyFleet> {
        assert_eq!(
            upstreams.len(),
            plans.len(),
            "one FaultPlan per upstream required"
        );
        let mut proxies = Vec::with_capacity(upstreams.len());
        let mut addrs = Vec::with_capacity(upstreams.len());
        for (&up, plan) in upstreams.iter().zip(plans) {
            let proxy = FaultProxy::start(up, plan)?;
            addrs.push(proxy.local_addr());
            proxies.push(Some(proxy));
        }
        Ok(ProxyFleet {
            proxies,
            addrs,
            replicas: Vec::new(),
            replica_addrs: Vec::new(),
        })
    }

    /// Number of shards fronted by this fleet.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the fleet fronts no shards.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The proxy-side addresses, in shard order — hand these to the
    /// router as its shard address list.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The proxy address fronting shard `i`.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// The proxy-side replica addresses per shard (primaries excluded)
    /// — hand these to the router as its replica groups. Empty for
    /// fleets started without groups.
    pub fn replica_addrs(&self) -> Vec<Vec<SocketAddr>> {
        self.replica_addrs.clone()
    }

    /// Kill shard `i`'s primary proxy: every connection to it is torn
    /// down and new ones are refused, exactly what a crashed shard
    /// looks like to the router. Idempotent.
    pub fn kill(&mut self, i: usize) {
        if let Some(proxy) = self.proxies[i].take() {
            proxy.shutdown();
        }
    }

    /// Kill member `j` of shard `i`'s replica group: `j == 0` is the
    /// primary, `j >= 1` the `j`-th replica. Idempotent.
    pub fn kill_member(&mut self, i: usize, j: usize) {
        if j == 0 {
            self.kill(i);
        } else if let Some(proxy) = self.replicas[i][j - 1].take() {
            proxy.shutdown();
        }
    }

    /// Whether shard `i`'s primary proxy is still alive.
    pub fn alive(&self, i: usize) -> bool {
        self.proxies[i].is_some()
    }

    /// Whether member `j` of shard `i`'s group is still alive.
    pub fn alive_member(&self, i: usize, j: usize) -> bool {
        if j == 0 {
            self.alive(i)
        } else {
            self.replicas[i][j - 1].is_some()
        }
    }

    /// Shut the whole fleet down, replicas included.
    pub fn shutdown(mut self) {
        for i in 0..self.proxies.len() {
            self.kill(i);
        }
        for group in &mut self.replicas {
            for slot in group.iter_mut() {
                if let Some(proxy) = slot.take() {
                    proxy.shutdown();
                }
            }
        }
    }
}

/// Derive shard `i`'s plan seed from the master seed. SplitMix64-style
/// mixing so adjacent shards get unrelated streams; `+ 1` keeps shard 0
/// off the master seed itself.
fn shard_seed(seed: u64, i: usize) -> u64 {
    let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A trivial echo upstream for proxy tests.
    fn echo_upstream() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    while reader.read_line(&mut line).unwrap_or(0) > 0 {
                        let mut w = &stream;
                        if w.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn shard_seeds_differ_and_replay() {
        let a: Vec<u64> = (0..4).map(|i| shard_seed(7, i)).collect();
        let b: Vec<u64> = (0..4).map(|i| shard_seed(7, i)).collect();
        assert_eq!(a, b, "same master seed replays the same plan seeds");
        for i in 0..4 {
            for j in 0..i {
                assert_ne!(a[i], a[j], "shards {i} and {j} share a stream");
            }
        }
    }

    #[test]
    fn group_fleet_tracks_members_independently() {
        let groups: Vec<Vec<SocketAddr>> = (0..2)
            .map(|_| (0..3).map(|_| echo_upstream()).collect())
            .collect();
        let mut fleet = ProxyFleet::start_groups(&groups, 11).unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.replica_addrs()[0].len(), 2);
        assert_eq!(fleet.replica_addrs()[1].len(), 2);

        // Killing a replica leaves its primary and siblings alive.
        fleet.kill_member(0, 2);
        assert!(!fleet.alive_member(0, 2));
        assert!(fleet.alive_member(0, 0) && fleet.alive_member(0, 1));
        assert!(fleet.alive_member(1, 0) && fleet.alive_member(1, 2));

        // Killing member 0 is killing the primary.
        fleet.kill_member(1, 0);
        assert!(!fleet.alive(1));
        assert!(fleet.alive(0));
        fleet.shutdown();
    }

    #[test]
    fn kill_takes_down_one_shard_only() {
        use crate::plan::{Fault, FaultPlan};
        let ups: Vec<SocketAddr> = (0..3).map(|_| echo_upstream()).collect();
        let plans = vec![FaultPlan::scripted(vec![Fault::None]); 3];
        let mut fleet = ProxyFleet::start_scripted(&ups, plans).unwrap();
        assert_eq!(fleet.len(), 3);

        fleet.kill(1);
        assert!(!fleet.alive(1));
        assert!(fleet.alive(0) && fleet.alive(2));

        // Survivors still relay; the killed shard refuses.
        for i in [0usize, 2] {
            let stream = std::net::TcpStream::connect(fleet.addr(i)).unwrap();
            let mut w = &stream;
            writeln!(w, "hello").unwrap();
            let mut reader = BufReader::new(&stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "hello", "shard {i} should still echo");
        }
        let dead = std::net::TcpStream::connect(fleet.addr(1));
        assert!(
            dead.is_err() || {
                // Accept-then-reset also counts as dead: a write or read
                // must fail quickly.
                let s = dead.unwrap();
                let mut w = &s;
                writeln!(w, "x").is_err() || {
                    let mut r = BufReader::new(&s);
                    let mut l = String::new();
                    r.read_line(&mut l).map(|n| n == 0).unwrap_or(true)
                }
            },
            "killed shard must not serve"
        );
        fleet.shutdown();
    }
}
