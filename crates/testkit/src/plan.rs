//! Seedable fault plans: which fault hits which connection.
//!
//! A [`FaultPlan`] maps a connection index (the order in which the
//! [`FaultProxy`](crate::proxy::FaultProxy) accepted the connection) to a
//! [`Fault`]. Two constructions:
//!
//! * **Seeded** ([`FaultPlan::seeded`]) — the fault and all its
//!   parameters are a pure function of `(seed, connection index)`, so an
//!   entire chaos run replays byte-for-byte from one `u64`. CI pins the
//!   seed and prints it on failure; `PROBASE_CHAOS_SEED=<n>` replays it.
//! * **Scripted** ([`FaultPlan::scripted`]) — an explicit fault per
//!   connection, for scenarios that need one precise failure (e.g. "kill
//!   exactly the first connection mid-request, then behave"). Past the
//!   end of the script, connections pass through unharmed.

use crate::prng::XorShift;

/// One fault applied to one proxied connection. Directions are named
/// from the proxy's perspective: *request* flows client → server,
/// *response* flows server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Relay faithfully in both directions.
    None,
    /// Forward only the first `after_bytes` bytes of the client's
    /// request stream to the server, then kill both sockets — the server
    /// sees a partial line and an abrupt close.
    DropMidRequest {
        /// Bytes of the request stream forwarded before the kill.
        after_bytes: usize,
    },
    /// Forward only the first `after_bytes` bytes of the server's
    /// response stream to the client, then kill both sockets — the
    /// client sees a truncated line.
    TruncateResponse {
        /// Bytes of the response stream forwarded before the kill.
        after_bytes: usize,
    },
    /// Inject `lines` newline-terminated garbage lines into the
    /// response stream before relaying faithfully — the client must
    /// reject them without desyncing or crashing.
    GarbageResponse {
        /// Number of garbage lines injected.
        lines: u32,
    },
    /// Slow-loris the response stream: relay it in `chunk`-byte pieces
    /// with `delay_ms` milliseconds between pieces.
    SlowLoris {
        /// Bytes forwarded per piece (≥ 1).
        chunk: usize,
        /// Pause between pieces, in milliseconds.
        delay_ms: u64,
    },
    /// Read and discard the client's request stream without ever
    /// forwarding it — the client's write succeeds but no response will
    /// ever come (it must time out, not hang forever).
    BlackholeRequest,
}

impl Fault {
    /// Short stable name, used in assertion messages and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::DropMidRequest { .. } => "drop-mid-request",
            Fault::TruncateResponse { .. } => "truncate-response",
            Fault::GarbageResponse { .. } => "garbage-response",
            Fault::SlowLoris { .. } => "slow-loris",
            Fault::BlackholeRequest => "blackhole-request",
        }
    }
}

/// A deterministic mapping from connection index to [`Fault`]. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    script: Option<Vec<Fault>>,
}

impl FaultPlan {
    /// A plan fully determined by `seed`: connection `n` always gets the
    /// same fault with the same parameters.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { seed, script: None }
    }

    /// An explicit per-connection script; connections past the end of
    /// the script get [`Fault::None`].
    pub fn scripted(faults: Vec<Fault>) -> FaultPlan {
        FaultPlan {
            seed: 0,
            script: Some(faults),
        }
    }

    /// A seeded plan whose seed comes from the environment variable
    /// `var` (decimal or `0x`-prefixed hex), falling back to
    /// `default_seed`. This is the CI replay hook.
    pub fn from_env(var: &str, default_seed: u64) -> FaultPlan {
        let seed = std::env::var(var)
            .ok()
            .and_then(|s| {
                let s = s.trim();
                if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    s.parse().ok()
                }
            })
            .unwrap_or(default_seed);
        FaultPlan::seeded(seed)
    }

    /// The seed (0 for scripted plans — print it in every assertion so a
    /// CI failure is replayable).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault assigned to connection `conn` (0-based accept order).
    pub fn fault_for(&self, conn: u64) -> Fault {
        if let Some(script) = &self.script {
            return script.get(conn as usize).cloned().unwrap_or(Fault::None);
        }
        // One substream per connection: parameters for connection n are
        // independent of how many values connection n-1 consumed.
        let mut rng = XorShift::new(self.seed).fork(conn);
        match rng.next_range(0, 6) {
            0 => Fault::None,
            1 => Fault::DropMidRequest {
                after_bytes: rng.next_range(1, 48) as usize,
            },
            2 => Fault::TruncateResponse {
                after_bytes: rng.next_range(1, 32) as usize,
            },
            3 => Fault::GarbageResponse {
                lines: rng.next_range(1, 4) as u32,
            },
            4 => Fault::SlowLoris {
                chunk: rng.next_range(1, 8) as usize,
                delay_ms: rng.next_range(2, 15),
            },
            _ => Fault::BlackholeRequest,
        }
    }

    /// The first `n` faults of the plan — the replayable schedule. Two
    /// plans with the same seed produce identical schedules.
    pub fn schedule(&self, n: usize) -> Vec<Fault> {
        (0..n as u64).map(|c| self.fault_for(c)).collect()
    }

    /// Deterministic garbage line for injection: ASCII junk that no JSON
    /// parser accepts, newline-terminated, derived from `(seed, conn,
    /// line index)`.
    pub fn garbage_line(&self, conn: u64, line: u64) -> Vec<u8> {
        let mut rng = XorShift::new(self.seed).fork(conn).fork(0xBAD0_0000 ^ line);
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(b"!!chaos-");
        for _ in 0..rng.next_range(2, 6) {
            let v = rng.next_u64();
            out.extend_from_slice(format!("{v:08x}").as_bytes());
        }
        out.push(b'\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_identical_schedule() {
        let a = FaultPlan::seeded(0xC0FFEE).schedule(128);
        let b = FaultPlan::seeded(0xC0FFEE).schedule(128);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1).schedule(64);
        let b = FaultPlan::seeded(2).schedule(64);
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_plans_cover_every_fault_kind() {
        let schedule = FaultPlan::seeded(0xC0FFEE).schedule(256);
        let mut names: Vec<&str> = schedule.iter().map(Fault::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            6,
            "256 connections should see all 6 fault kinds: {names:?}"
        );
    }

    #[test]
    fn scripted_plans_run_then_pass_through() {
        let plan = FaultPlan::scripted(vec![Fault::BlackholeRequest]);
        assert_eq!(plan.fault_for(0), Fault::BlackholeRequest);
        assert_eq!(plan.fault_for(1), Fault::None);
        assert_eq!(plan.fault_for(99), Fault::None);
    }

    #[test]
    fn env_seed_parses_decimal_and_hex() {
        // Touch only test-unique variable names; tests run concurrently.
        std::env::set_var("PROBASE_TESTKIT_SEED_DEC", "123");
        assert_eq!(
            FaultPlan::from_env("PROBASE_TESTKIT_SEED_DEC", 9).seed(),
            123
        );
        std::env::set_var("PROBASE_TESTKIT_SEED_HEX", "0xff");
        assert_eq!(
            FaultPlan::from_env("PROBASE_TESTKIT_SEED_HEX", 9).seed(),
            255
        );
        assert_eq!(
            FaultPlan::from_env("PROBASE_TESTKIT_SEED_UNSET", 9).seed(),
            9
        );
    }

    #[test]
    fn garbage_lines_are_deterministic_and_unparseable() {
        let plan = FaultPlan::seeded(7);
        let a = plan.garbage_line(0, 0);
        let b = plan.garbage_line(0, 0);
        assert_eq!(a, b);
        assert_ne!(plan.garbage_line(0, 1), a);
        assert_eq!(*a.last().unwrap(), b'\n');
        assert!(a.starts_with(b"!!chaos-"));
    }
}
