//! Representation-equivalence sweep: a [`ServeState`] over the packed
//! zero-copy graph must answer every one of the 11 protocol endpoints
//! byte-identically to one over the pointer-rich mutable graph — the
//! acceptance bar for serving straight off an mmap'd checkpoint.
//!
//! The sweep runs over several seeded random DAGs (no fixed fixture
//! bias) and also drives a write through both states, verifying the
//! packed side thaws and converges to the same post-write answers.

use probase_serve::{Direction, LabelKind, Request, ServeState};
use probase_store::{pack, ConceptGraph, GraphHandle, NodeId, PackedGraph, SharedStore};

/// Deterministic LCG so the sweep needs no RNG dependency and replays
/// identically on every run.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A random DAG with multi-sense labels; edges go from lower to higher
/// index so acyclicity holds by construction.
fn random_graph(seed: u64) -> ConceptGraph {
    let mut rng = Lcg(seed);
    let mut g = ConceptGraph::new();
    let n = 8 + (rng.next() % 16) as usize;
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| g.ensure_node(&format!("term{i}"), (i % 3) as u32))
        .collect();
    for _ in 0..(n * 3) {
        let i = (rng.next() as usize) % n;
        let j = (rng.next() as usize) % n;
        if i < j {
            g.add_evidence(nodes[i], nodes[j], 1 + (rng.next() % 9) as u32);
            g.set_plausibility(nodes[i], nodes[j], 0.25 + (rng.next() % 70) as f64 / 100.0);
        }
    }
    g.rebuild_indexes();
    g
}

/// One request per protocol endpoint, parameterized over labels that
/// exist in the sweep graphs (plus unknown terms for the empty paths).
fn endpoint_battery() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Isa {
            parent: "term0".into(),
            child: "term7".into(),
        },
        Request::Typicality {
            term: "term0".into(),
            direction: Direction::Instances,
            k: 10,
        },
        Request::Typicality {
            term: "term7".into(),
            direction: Direction::Concepts,
            k: 10,
        },
        Request::Plausibility {
            parent: "term0".into(),
            child: "term3".into(),
        },
        Request::Conceptualize {
            terms: vec!["term5".into(), "term7".into()],
            k: 5,
        },
        Request::SearchRewrite {
            query: "term0 exports".into(),
            k: 4,
        },
        Request::Stats,
        Request::Levels { term: None },
        Request::Levels {
            term: Some("term1".into()),
        },
        Request::Labels {
            kind: LabelKind::Concepts,
            k: 32,
        },
        Request::Labels {
            kind: LabelKind::Instances,
            k: 32,
        },
        Request::Isa {
            parent: "wombat".into(),
            child: "term0".into(),
        },
        Request::SnapshotLoad {
            path: "x.pb".into(),
        },
    ]
}

fn states(g: &ConceptGraph) -> (ServeState, ServeState) {
    let mutable = ServeState::new(SharedStore::new(g.clone()), 64, 2);
    let p = PackedGraph::from_bytes(pack(g).expect("encode")).expect("validate");
    let packed = ServeState::new(SharedStore::new(GraphHandle::Packed(p)), 64, 2);
    assert!(packed.store().is_packed());
    (mutable, packed)
}

/// Serialize a handler outcome (success or error envelope) so error
/// paths are compared byte-for-byte too.
fn rendered(state: &ServeState, req: &Request) -> String {
    match state.handle(req) {
        (v, Ok(json)) => format!("v{v} ok {json}"),
        (v, Err((code, detail))) => format!("v{v} err {code:?} {detail}"),
    }
}

#[test]
fn all_endpoints_answer_byte_identically() {
    for seed in [3, 17, 42, 101, 2024] {
        let g = random_graph(seed);
        let (mutable, packed) = states(&g);
        for req in endpoint_battery() {
            let a = rendered(&mutable, &req);
            let b = rendered(&packed, &req);
            if matches!(req, Request::Stats) {
                // Stats mixes graph-derived numbers with server-local
                // telemetry (cache occupancy, uptime); only the graph
                // section is a function of the representation.
                let a = a.split("\"serve\"").next().unwrap();
                let b = b.split("\"serve\"").next().unwrap();
                assert_eq!(a, b, "stats graph section diverged (seed {seed})");
            } else {
                assert_eq!(a, b, "endpoint diverged (seed {seed}): {req:?}");
            }
        }
    }
}

#[test]
fn writes_thaw_the_packed_store_and_converge() {
    let g = random_graph(7);
    let (mutable, packed) = states(&g);
    let write = Request::AddEvidence {
        parent: "term0".into(),
        child: "brand-new".into(),
        count: 6,
    };
    assert_eq!(rendered(&mutable, &write), rendered(&packed, &write));
    assert!(
        !packed.store().is_packed(),
        "first write thaws the packed representation"
    );
    // Post-write reads agree again, including the typicality tables
    // derived from the rebuilt model.
    for req in endpoint_battery() {
        if matches!(req, Request::Stats) {
            continue;
        }
        assert_eq!(
            rendered(&mutable, &req),
            rendered(&packed, &req),
            "post-write divergence: {req:?}"
        );
    }
}
